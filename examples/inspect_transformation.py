"""Inspect what the HELIX transformation does to a loop.

Compiles an irregular loop (data-dependent control flow, a shared
accumulator, a conditionally-updated table), parallelizes it explicitly,
and dumps the parallel version's IR so the inserted ``wait``/``signal``/
``next_iter``/``xfer`` operations and the dual-version guard are visible.

Run:  python examples/inspect_transformation.py
"""

from repro import MachineConfig, compile_minic
from repro.analysis.loops import find_loops
from repro.core import parallelize_module
from repro.ir import Opcode

SOURCE = """
int table[64];
int best;

void main() {
    int i;
    for (i = 0; i < 50; i++) {
        // Irregular control flow: data-dependent walk length.
        int v = (i * 2654435761) % 64;
        int hops = 0;
        while (v > 3 && hops < 10) {
            v = table[v] % 64;
            hops++;
        }
        // Conditionally updated maximum: a loop-carried dependence with
        // an infrequent producer (cheap data forwarding, Figure 2).
        int score = v * 8 - hops;
        if (score > best) {
            best = score;
        }
        // Private update: affine subscript, no synchronization needed.
        table[i % 64] = score;
    }
    print(best);
}
"""


def main() -> None:
    module = compile_minic(SOURCE, name="inspect")
    loop = next(
        l for l in find_loops(module.functions["main"]) if l.parent is None
    )
    transformed, infos = parallelize_module(
        module, [loop.id], MachineConfig(cores=4)
    )
    info = infos[0]
    func = transformed.functions["main"]

    print("HELIX transformation report")
    print("=" * 64)
    print(f"loop: {info.loop_id}  counted={info.counted}")
    print(f"dependences found: {len(info.deps)}")
    for sync in info.deps:
        status = (
            "synchronized"
            if sync.synchronized
            else f"covered by d{sync.covered_by}"
        )
        print(
            f"  d{sync.dep.index}: {sync.dep.kind.value:>8} on "
            f"{sync.dep.location:<12} region={len(sync.region)} blocks "
            f"[{status}]"
        )
    print(
        f"sync ops: {info.naive_waits + info.naive_signals} inserted, "
        f"{info.final_waits + info.final_signals} after Step 6 "
        f"({info.segments_per_iteration} sequential segment(s)/iteration)"
    )
    print(f"helper thread wait order: {info.helper_order}")
    print()

    print("guard block (Step 9 -- picks sequential vs parallel version):")
    for instr in func.blocks[info.guard_block]:
        print(f"    {instr}")
    print()

    print("parallel version blocks (prologue marked P, body marked B):")
    for name in sorted(info.par_blocks):
        tag = "P" if name in info.prologue_blocks else "B"
        print(f"  [{tag}] {name}:")
        for instr in func.blocks[name]:
            marker = ""
            if instr.opcode in (Opcode.WAIT, Opcode.SIGNAL):
                marker = "   <-- synchronization"
            elif instr.opcode is Opcode.NEXT_ITER:
                marker = "   <-- unblocks the next iteration's core"
            elif instr.opcode is Opcode.XFER:
                marker = "   <-- data-forwarding mark"
            print(f"        {instr}{marker}")


if __name__ == "__main__":
    main()
