"""Loop selection on 179.art -- the paper's Figure 8 walk.

Builds the dynamic loop nesting graph of the art benchmark (whose
``reset_nodes`` is called from two different loops, making the graph a
DAG rather than a tree), annotates every node with the model's saved time
T and the propagated maxT, and shows which loops the two-phase search
selects.

Run:  python examples/loop_selection_demo.py
"""

from repro.bench import compile_benchmark
from repro.core.selection import SelectionConfig, choose_loops
from repro.runtime import profile_module
from repro.runtime.machine import MachineConfig


def main() -> None:
    machine = MachineConfig(cores=6)
    module = compile_benchmark("art", "train")
    profile = profile_module(module, machine)
    selection = choose_loops(
        module, profile, SelectionConfig(machine=machine, cores=6)
    )

    graph = selection.dynamic_graph
    chosen = set(selection.chosen)

    print("Dynamic loop nesting graph of art (training input)")
    print("=" * 64)

    def describe(loop_id, depth):
        t = selection.saved_time.get(loop_id, 0.0)
        max_t = selection.max_saved_time.get(loop_id, 0.0)
        mark = "  <= chosen" if loop_id in chosen else ""
        indent = "    " * depth
        print(
            f"{indent}{loop_id[0]}:{loop_id[1]:<10} "
            f"T={t:>10.0f}  maxT={max_t:>10.0f}{mark}"
        )
        for child in graph.children(loop_id):
            describe(child, depth + 1)

    for root in graph.roots():
        describe(root, 0)

    print()
    print(
        "Phase 2 stops descending at nodes where maxT == T: parallelizing"
    )
    print(
        "that loop beats any combination of its subloops.  Note the chosen"
    )
    print("loops sit at different nesting levels (the Figure 8/11 point).")
    print()
    print(f"chosen: {selection.chosen}")
    print(f"candidates considered: {selection.candidate_count}")
    print(f"model-predicted speedup at 6 cores: "
          f"{selection.predicted_speedup(6):.2f}x")


if __name__ == "__main__":
    main()
