"""Walk one benchmark through the paper's ablations (Figure 10 / S3.3).

Runs the twolf benchmark (annealing placement: an RNG-carried segment
plus a long parallel cost evaluation) under every combination the paper
studies: Steps 6 and 8 disabled, prefetching variants, and core counts.

Run:  python examples/ablation_walkthrough.py
"""

from repro import MachineConfig, parallelize_and_run
from repro.bench import compile_benchmark
from repro.core.loopinfo import HelixOptions
from repro.runtime.machine import PrefetchMode


def run(label, machine, options=None):
    ref = compile_benchmark("twolf", "ref")
    train = compile_benchmark("twolf", "train")
    result = parallelize_and_run(
        ref, machine, options=options, train_module=train, record_traces=True
    )
    assert result.output_matches
    signals = sum(s.signals for s in result.loop_stats().values())
    stalls = sum(s.wait_stall_cycles for s in result.loop_stats().values())
    print(
        f"{label:<28} speedup={result.speedup:5.2f}x  "
        f"signals={signals:>7,}  stall cycles={stalls:>10,}"
    )
    return result


def main() -> None:
    print("twolf under the paper's ablations (6 cores)")
    print("=" * 72)

    base = MachineConfig(cores=6)
    run("full HELIX", base)
    run(
        "no Figure-6 balancing",
        base,
        HelixOptions(enable_prefetch_balancing=False),
    )
    run("no Step 8 (no prefetching)", base.with_prefetch(PrefetchMode.NONE))
    run(
        "no Step 6 (naive signals)",
        base,
        HelixOptions(enable_signal_optimization=False),
    )
    run(
        "neither step",
        base.with_prefetch(PrefetchMode.NONE),
        HelixOptions(
            enable_signal_optimization=False,
            enable_prefetch_balancing=False,
        ),
    )

    print()
    print("prefetching variants (Section 3.3), from recorded traces:")
    result = run("helix prefetching", base)
    executor = result.executor
    for mode in (PrefetchMode.MATCHED, PrefetchMode.IDEAL):
        replay = executor.replay(base.with_prefetch(mode))
        speedup = result.sequential.cycles / replay.cycles
        print(f"{mode.value + ' prefetching':<28} speedup={speedup:5.2f}x")

    print()
    print("core scaling, from the same traces:")
    for cores in (1, 2, 4, 6, 8, 12):
        replay = executor.replay(base.with_cores(cores))
        speedup = result.sequential.cycles / replay.cycles
        print(f"{cores:>2} cores: {speedup:5.2f}x")


if __name__ == "__main__":
    main()
