"""Quickstart: parallelize a MiniC program with HELIX and measure it.

Run:  python examples/quickstart.py
"""

from repro import MachineConfig, compile_minic, parallelize_and_run

SOURCE = """
int histogram[32];
int data[256];
int checksum;

void main() {
    // Fill the input deterministically.
    int i;
    for (i = 0; i < 256; i++) {
        data[i] = (i * 2654435761) % 97;
    }

    // Hot loop: per-element feature extraction (parallel) feeding a
    // shared checksum (a short sequential segment HELIX synchronizes).
    for (i = 0; i < 256; i++) {
        int v = data[i];
        int k = 0;
        int feature = 0;
        while (k < 40) {
            feature = feature + ((v + k) ^ (k * 3));
            k++;
        }
        data[i] = feature % 1009;
        checksum = (checksum + feature) % 65521;
    }

    print(checksum);
}
"""


def main() -> None:
    module = compile_minic(SOURCE, name="quickstart")
    machine = MachineConfig(cores=6)

    result = parallelize_and_run(module, machine)

    print("HELIX quickstart")
    print("=" * 50)
    print(f"machine: {machine.cores} cores, SMT helper threads on")
    print(f"loops chosen automatically: {result.chosen_loops}")
    print(f"sequential cycles: {result.sequential.cycles:>12,}")
    print(f"parallel cycles:   {result.parallel.cycles:>12,}")
    print(f"speedup:           {result.speedup:>12.2f}x")
    print(f"output identical:  {result.output_matches}")
    print()
    for loop_id, stats in result.loop_stats().items():
        print(
            f"loop {loop_id}: {stats.iterations} iterations, "
            f"{stats.signals} signals, {stats.transfer_words} words "
            f"forwarded, loop speedup {stats.loop_speedup:.2f}x"
        )


if __name__ == "__main__":
    main()
