"""Ablations of this reproduction's own design choices (DESIGN.md §4).

Beyond the paper's Figure 10 (Steps 6/8), two implementation choices
carry weight here and get their own ablation:

* **Step 5 intra-block scheduling** (signal hoisting / wait sinking /
  moving independent code out of segments) -- without it, segments span
  whole blocks and chain-bound loops serialize.
* **Step 5 dependence-driven inlining** -- without it, dependences whose
  endpoints are calls keep whole call bodies inside segments.

Run on the subset of benchmarks whose chosen loops exercise each
mechanism.
"""

from repro.core.loopinfo import HelixOptions
from repro.evaluation.reporting import format_table, geomean


#: Benchmarks whose profitable loops carry synchronized dependences.
SCHEDULING_SENSITIVE = ["mesa", "twolf", "vpr", "parser", "ammp", "vortex"]
#: Benchmarks with dependence endpoints inside calls.
INLINE_SENSITIVE = ["vortex", "twolf", "mcf"]


def run_config(runner, bench, label, options):
    return runner.pipeline(
        bench, options=options, cache_key=f"design-ablation:{label}"
    )


def test_step5_scheduling_ablation(benchmark, runner, report):
    def experiment():
        rows = []
        for bench in SCHEDULING_SENSITIVE:
            full = runner.helix_run(bench)
            unscheduled = run_config(
                runner,
                bench,
                "no-sched",
                HelixOptions(enable_segment_scheduling=False),
            )
            assert unscheduled.output_matches
            rows.append([bench, unscheduled.speedup, full.speedup])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        ["benchmark", "no Step 5 scheduling", "full HELIX"],
        rows,
        title="Design ablation: Step 5 intra-block scheduling",
    )
    report("ablation_step5_scheduling", text)

    without = geomean([r[1] for r in rows])
    full = geomean([r[2] for r in rows])
    # Scheduling never hurts and helps overall on this subset.
    assert full >= without - 0.02
    for bench_name, off, on in rows:
        assert on >= off - 0.05, f"{bench_name}: scheduling regressed"


def test_inlining_ablation(benchmark, runner, report):
    def experiment():
        rows = []
        for bench in INLINE_SENSITIVE:
            full = runner.helix_run(bench)
            uninlined = run_config(
                runner,
                bench,
                "no-inline",
                HelixOptions(enable_inlining=False),
            )
            assert uninlined.output_matches
            rows.append([bench, uninlined.speedup, full.speedup])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        ["benchmark", "no inlining", "full HELIX"],
        rows,
        title="Design ablation: Step 5 dependence-driven inlining",
    )
    report("ablation_inlining", text)

    for bench_name, off, on in rows:
        assert on >= off - 0.05, f"{bench_name}: inlining regressed"
