"""Figure 10: speedups with Steps 6 and 8 selectively disabled (6 cores).

Paper result: with neither step HELIX still avoids slowdown (selection
backs off to cheap loops); either step alone recovers only part of the
speedup; both together (the last bar) approach the full result.  The
balancing scheduler of Figure 6 is off in all four configurations.
"""

from repro.evaluation import figures
from repro.evaluation.reporting import geomean


def test_figure10_ablation(benchmark, runner, report):
    result = benchmark.pedantic(
        figures.figure10, args=(runner,), rounds=1, iterations=1
    )
    report("figure10", result.render())

    means = {label: result.geomean(label) for label in result.labels}
    # No configuration may produce a meaningful slowdown: the selection
    # algorithm refuses unprofitable loops per configuration.
    for bench, row in result.speedups.items():
        for label, speedup in row.items():
            assert speedup >= 0.9, f"{bench}/{label} regressed: {speedup:.2f}"
    # Full HELIX (minus balancing) must beat the crippled configurations.
    assert means["helix-nobalance"] >= means["neither"]
    assert means["helix-nobalance"] >= means["no-step8"] - 0.05
    assert means["helix-nobalance"] >= means["no-step6"] - 0.05
