"""Shared fixtures for the experiment benchmarks.

One :class:`EvaluationRunner` is shared across all benchmark modules in a
session, so the expensive pipeline stages (profiling, transformation,
execution) are paid once and reused by every figure that needs them.
"""

import pathlib

import pytest

from repro.evaluation.runner import EvaluationRunner
from repro.runtime.machine import MachineConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner():
    return EvaluationRunner(MachineConfig(cores=6))


@pytest.fixture()
def report():
    """Write a rendered experiment to benchmarks/results/ and echo it."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return write
