"""Figure 12: impact of misestimating signal latency during selection.

Paper result: assuming 0-cycle signals during loop selection picks deep,
tightly-coupled loops and produces slowdowns on the real machine;
assuming 110 cycles everywhere is safe but leaves speedup on the table.
"""

from repro.evaluation import figures
from repro.evaluation.reporting import geomean


def test_figure12_latency_misestimate(benchmark, runner, report):
    result = benchmark.pedantic(
        figures.figure12, args=(runner,), rounds=1, iterations=1
    )
    report("figure12", result.render())

    under = result.underestimated
    over = result.overestimated

    # Underestimation hurts: at least a few benchmarks slow down, and the
    # geomean sits clearly below the honest Figure 9 result.
    slowdowns = [b for b, s in under.items() if s < 1.0]
    assert len(slowdowns) >= 3, f"expected slowdowns, got {under}"

    # Overestimation is safe but conservative.
    for bench, speedup in over.items():
        assert speedup >= 0.9, f"{bench} regressed under overestimation"
    assert geomean(list(over.values())) >= geomean(list(under.values()))
