"""Future-work study: speedups under fast hardware signaling.

The paper's conclusion anticipates "fast hardware implementations of
signaling".  The recorded traces are replayed with the inter-core
signal/transfer latency swept from 4 cycles (register-file-speed
signaling) to 220 (twice the testbed); loops stay as selected for the
real machine, isolating the hardware effect.
"""

from repro.evaluation import figures


def test_latency_sweep(benchmark, runner, report):
    result = benchmark.pedantic(
        figures.latency_sweep, args=(runner,), rounds=1, iterations=1
    )
    report("future_fast_signaling", result.render())

    # Monotone: cheaper signaling never hurts.
    latencies = sorted(result.speedups)
    means = [result.geomean(l) for l in latencies]
    for faster, slower in zip(means, means[1:]):
        assert faster >= slower - 1e-6

    # Fast signaling delivers real headroom over the 110-cycle testbed --
    # the paper's closing claim.
    assert result.geomean(4) > result.geomean(110) * 1.1
