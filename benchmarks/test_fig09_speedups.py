"""Figure 9: whole-program speedups at 2/4/6 cores over 13 benchmarks.

Paper result: geometric mean 2.25x and maximum 4.12x (art) at six cores;
speedups grow with core count for every benchmark that speeds up at all.
"""

from repro.evaluation import figures


def test_figure9_speedups(benchmark, runner, report):
    result = benchmark.pedantic(
        figures.figure9, args=(runner,), rounds=1, iterations=1
    )
    report("figure9", result.render())

    six = {bench: row[6] for bench, row in result.speedups.items()}
    # Shape checks against the paper.
    assert result.geomean(6) > 1.7, "six-core geomean far below paper's 2.25"
    assert max(six, key=six.get) == "art", "art must be the best benchmark"
    assert six["art"] > 3.5
    for low in ("mcf", "parser", "crafty"):
        assert six[low] < 2.0, f"{low} should be near the bottom"
    # More cores never hurt by much, and generally help.
    for bench, row in result.speedups.items():
        assert row[6] >= row[2] * 0.9
    assert result.geomean(6) > result.geomean(4) > result.geomean(2)
