"""Figure 13: nesting-level distribution of the chosen loops.

Paper result: with prefetched (4-cycle) signals the selection picks loops
across several nesting levels; raising the assumed latency to 110 cycles
pushes the choice toward outermost loops (and drops some benchmarks'
loops entirely).
"""

from repro.evaluation import figures


def _mean_level(per_bench):
    total = weight = 0.0
    for dist in per_bench.values():
        for level, pct in dist.items():
            total += level * pct
            weight += pct
    return total / weight if weight else 0.0


def test_figure13_nesting_levels(benchmark, runner, report):
    result = benchmark.pedantic(
        figures.figure13, args=(runner,), rounds=1, iterations=1
    )
    report("figure13", result.render())

    fast = result.distributions["4 (prefetched)"]
    slow = result.distributions["110"]

    # The cheap-signal selection uses multiple nesting levels somewhere.
    levels_used = set()
    for dist in fast.values():
        levels_used.update(dist)
    assert len(levels_used) >= 2

    # Expensive signals push selection outward (lower mean level) or keep
    # it unchanged; never deeper.
    assert _mean_level(slow) <= _mean_level(fast) + 1e-9

    # With 110-cycle signals some benchmarks stop choosing loops at depth.
    chosen_fast = sum(len(d) > 0 for d in fast.values())
    chosen_slow = sum(len(d) > 0 for d in slow.values())
    assert chosen_slow <= chosen_fast
