"""Table 1: characteristics of the parallelized loops.

Paper result: tens of parallelized loops out of hundreds of candidates;
a low fraction of loop-carried dependences; 80-98% of naive signals
removed by Step 6; data transfers a small fraction (0.1-12%) of the data
consumed; negligible per-loop code size.
"""

from repro.evaluation import figures


def test_table1(benchmark, runner, report):
    result = benchmark.pedantic(
        figures.table1, args=(runner,), rounds=1, iterations=1
    )
    report("table1", result.render())

    for row in result.rows:
        assert 1 <= row.parallelized_loops <= row.candidate_loops
        assert 0.0 <= row.carried_dep_pct <= 100.0
        # Data transfers stay a small fraction of data consumed -- the
        # paper's central Figure 2 observation.
        assert row.data_transfer_pct < 20.0
        assert row.max_code_kb < 64.0  # fits any L1 instruction cache

    with_sync = [r for r in result.rows if r.signals_removed_pct > 0]
    assert with_sync, "Step 6 must remove signals somewhere in the suite"
    best = max(r.signals_removed_pct for r in result.rows)
    assert best >= 40.0
