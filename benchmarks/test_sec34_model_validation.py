"""Section 3.4: validating the speedup model against measurements.

Paper result: model-vs-measured error below 4% for every benchmark (the
residual attributed to false cache sharing).  Our simulator has no false
sharing but the model sees only training-input profiles; we hold the mean
error under 10% and every benchmark under 25%.
"""

from repro.evaluation import figures


def test_model_validation(benchmark, runner, report):
    result = benchmark.pedantic(
        figures.model_validation, args=(runner,), rounds=1, iterations=1
    )
    report("sec34_model_validation", result.render())

    assert result.mean_error_pct < 10.0
    for bench in result.measured:
        assert result.error_pct(bench) < 25.0, (
            f"{bench}: model {result.predicted[bench]:.2f} vs "
            f"measured {result.measured[bench]:.2f}"
        )
