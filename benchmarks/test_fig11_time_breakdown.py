"""Figure 11: time breakdown by loop nesting level (single core).

Paper result: no single fixed nesting level maximizes the parallel-code
fraction across all benchmarks, while HELIX's variable-level selection
consistently does at least as well as the best fixed level (art reaches
almost 100% parallel).
"""

from repro.evaluation import figures


def test_figure11_time_breakdown(benchmark, runner, report):
    result = benchmark.pedantic(
        figures.figure11, args=(runner,), rounds=1, iterations=1
    )
    report("figure11", result.render())

    best_fixed_level = {}
    for bench, per_level in result.breakdown.items():
        for label, parts in per_level.items():
            assert abs(sum(parts) - 100.0) < 1.5, (bench, label)
        fixed = {
            label: parts[0]
            for label, parts in per_level.items()
            if label != "H"
        }
        best_fixed_level[bench] = max(fixed, key=fixed.get)
        helix_parallel = per_level["H"][0]
        # HELIX selection reaches at least ~90% of the best fixed level's
        # parallel fraction (it optimizes saved time, not raw fraction).
        assert helix_parallel >= 0.7 * max(fixed.values())

    # The paper's point: the best fixed level differs across benchmarks.
    assert len(set(best_fixed_level.values())) >= 2, best_fixed_level

    art_parallel = result.breakdown["art"]["H"][0]
    assert art_parallel > 80.0, "art is almost entirely parallel code"
