"""Section 3.3: the signal prefetching study (6 cores).

Paper result: HELIX's generated helper wait order is within 0.1 geomean
of matched prefetching, and ideal prefetching (every signal an L1 hit,
feasibility ignored) is about 0.4 above matched -- headroom a static
scheduler cannot always close.
"""

from repro.evaluation import figures


def test_prefetching_study(benchmark, runner, report):
    result = benchmark.pedantic(
        figures.prefetching_study, args=(runner,), rounds=1, iterations=1
    )
    report("sec33_prefetching", result.render())

    helix = result.geomean("helix")
    matched = result.geomean("matched")
    ideal = result.geomean("ideal")
    none = result.geomean("none")

    # Ordering: no prefetching <= helix ~ matched <= ideal.
    assert none <= helix + 1e-6
    assert abs(matched - helix) <= 0.15, "Step 8's order ~ matched (paper: 0.1)"
    assert ideal >= matched
    assert ideal - matched <= 2.0  # finite headroom, not unbounded
    # Every benchmark individually respects the ordering.
    for bench, row in result.speedups.items():
        assert row["ideal"] >= row["helix"] - 1e-6
        assert row["helix"] >= row["none"] - 1e-6
