"""Infrastructure layer: the ``repro serve`` compile/run daemon.

An asyncio server (Unix socket by default, TCP optional) speaking a
JSON-lines protocol: every request and event is one JSON object per
``\\n``-terminated line.  Clients submit jobs and receive that job's
observer events streamed back as they happen, finishing with a
``job_finished`` event that carries the result payload.

Requests::

    {"op": "compile", "bench": "mcf", "cores": 6, "include_ir": false}
    {"op": "run",     "bench": "mcf", "cores": 6}
    {"op": "suite",   "benches": ["mcf", "vpr"], "cores": 6, "jobs": 1}
    {"op": "trace",   "bench": "mcf", "include_trace": false}
    {"op": "cancel",  "job": "j3"}
    {"op": "stats"}
    {"op": "status"}
    {"op": "ping"}

Any job request may also carry ``"trace": true``: the orchestrator then
runs that job's attempts under a recording tracer, and (when the daemon
was started with ``--trace-dir``) a schema-valid Perfetto trace file is
written per job as it finishes, announced by a ``trace_written`` event
in the job log and a ``trace_path`` on the terminal event.

Any request may carry a client-chosen ``"id"``, echoed on the
``accepted`` event (and every subsequent event of that job also names
the server-side ``"job"`` id).  Events::

    {"event": "accepted",        "id": ..., "job": "j3", "op": "run"}
    {"event": "job_started",     "job": "j3", "op": "run", "retries": 0}
    {"event": "stage_completed", "job": "j3", "bench": "mcf",
     "stage": "compile", "outcome": "compute", "seconds": 0.41}
    {"event": "artifact_stored", "job": "j3", "kind": "pipeline",
     "key": "ab12...", "outcome": "store"}
    {"event": "job_finished",    "job": "j3", "state": "done",
     "retries": 0, "result": {...}, "metrics": {...}}
    {"event": "stats",  ...}   {"event": "pong"}
    {"event": "status", "run": ..., "uptime_seconds": ...,
     "queue": {...}, "in_flight": [...], "workers": {...},
     "metrics": {...}, "artifacts": {...}}
    {"event": "error",  "message": "..."}

Lifecycle: SIGTERM (or SIGINT) triggers a graceful drain -- the
listening socket closes, in-flight jobs run to completion (bounded by
``drain_timeout``), every connected client receives a ``draining``
event, and the process exits 0.  All observer events can additionally
be appended to a JSON-lines job log (``--log``), which is what the CI
``serve-smoke`` job uploads as its artifact.  Every log line is wrapped
with a monotonic ``"seq"`` and the daemon's ``"run"`` id, so
interleaved multi-connection logs are totally ordered and joinable to
:class:`~repro.obs.results.ResultsStore` history; a periodic
``heartbeat`` record (``--heartbeat``) proves liveness between jobs.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs import REGISTRY, validate_chrome_trace, write_chrome_trace
from repro.obs.tracer import SpanEvent
from repro.service.jobs import (
    CompileJob,
    CompositeObserver,
    EvaluationObserver,
    Job,
    RunJob,
    SuiteJob,
    TraceJob,
)
from repro.service.orchestrator import Orchestrator

#: Wire schema generation of the event stream.
PROTOCOL_VERSION = 1

_OPS = {
    "compile": lambda req: CompileJob(
        bench=req["bench"],
        cores=int(req.get("cores", 6)),
        include_ir=bool(req.get("include_ir", False)),
    ),
    "run": lambda req: RunJob(
        bench=req["bench"], cores=int(req.get("cores", 6))
    ),
    "suite": lambda req: SuiteJob(
        benches=tuple(req["benches"]) if req.get("benches") else None,
        cores=int(req.get("cores", 6)),
        jobs=int(req.get("jobs", 1)),
    ),
    "trace": lambda req: TraceJob(
        bench=req["bench"],
        cores=int(req.get("cores", 6)),
        include_trace=bool(req.get("include_trace", False)),
    ),
}


def validate_event(event: Any) -> List[str]:
    """Schema-check one streamed event; returns problems (empty = OK).

    This is the contract the CI ``serve-smoke`` job enforces over a
    live daemon's whole event stream.
    """
    problems: List[str] = []
    if not isinstance(event, dict):
        return ["event is not an object"]
    kind = event.get("event")
    if not isinstance(kind, str) or not kind:
        return ["missing event kind"]
    required: Dict[str, tuple] = {
        "accepted": ("job", "op"),
        "job_started": ("job", "op", "retries"),
        "stage_completed": ("job", "bench", "stage", "outcome", "seconds"),
        "artifact_stored": ("job", "kind", "key", "outcome"),
        "job_finished": ("job", "state", "retries"),
        "stats": ("jobs", "artifacts"),
        "status": ("run", "uptime_seconds", "queue", "workers", "metrics"),
        "heartbeat": ("uptime_seconds", "queue", "workers"),
        "trace_written": ("job", "path"),
        "cancelled": ("job",),
        "error": ("message",),
        "pong": (),
        "draining": (),
    }
    if kind not in required:
        return [f"unknown event kind {kind!r}"]
    for field in required[kind]:
        if field not in event:
            problems.append(f"{kind} event missing {field!r}")
    if kind == "job_finished":
        if event.get("state") == "done" and "result" not in event:
            problems.append("done job_finished missing result")
    return problems


class _TraceWriter(EvaluationObserver):
    """Writes one Perfetto trace file per traced job as it finishes.

    Installed *ahead of* the per-connection observers in the
    orchestrator's observer chain, so ``job.trace_path`` is set before
    the terminal ``job_finished`` event is serialized to the client.
    """

    def __init__(self, daemon: "Daemon") -> None:
        self._daemon = daemon

    def job_finished(self, job: Optional[Job]) -> None:
        daemon = self._daemon
        if job is None or not job.spans or daemon.trace_dir is None:
            return
        directory = Path(daemon.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{job.id}.json"
        spans = [SpanEvent.from_dict(data) for data in job.spans]
        payload = write_chrome_trace(
            str(path),
            spans,
            registry_snapshot=job.metrics,
            process_names={daemon_pid: f"repro job {job.id} ({job.op})"
                           for daemon_pid in {s.pid for s in spans}},
        )
        problems = validate_chrome_trace(payload)
        job.trace_path = str(path)
        daemon._log_event(
            {
                "event": "trace_written",
                "job": job.id,
                "path": str(path),
                "spans": len(spans),
                "problems": problems,
            }
        )


class _ConnectionObserver(EvaluationObserver):
    """Bridges orchestrator-thread observer calls onto one connection.

    Events are appended to the connection's asyncio queue via
    ``call_soon_threadsafe`` -- the observer protocol runs on worker
    threads, the writer coroutine drains on the event loop.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        events: "asyncio.Queue[Optional[dict]]",
        daemon: "Daemon",
    ) -> None:
        self._loop = loop
        self._events = events
        self._daemon = daemon

    def _emit(self, event: dict) -> None:
        self._daemon._log_event(event)
        try:
            self._loop.call_soon_threadsafe(self._events.put_nowait, event)
        except RuntimeError:
            pass  # loop already closed (client vanished during drain)

    def job_started(self, job: Optional[Job]) -> None:
        assert job is not None
        self._emit(
            {
                "event": "job_started",
                "job": job.id,
                "op": job.op,
                "retries": job.retries,
            }
        )

    def stage_completed(
        self,
        job: Optional[Job],
        bench: str,
        stage: str,
        outcome: str,
        seconds: float,
    ) -> None:
        self._emit(
            {
                "event": "stage_completed",
                "job": job.id if job else None,
                "bench": bench,
                "stage": stage,
                "outcome": outcome,
                "seconds": seconds,
            }
        )

    def artifact_stored(
        self, job: Optional[Job], kind: str, key: str, outcome: str
    ) -> None:
        self._emit(
            {
                "event": "artifact_stored",
                "job": job.id if job else None,
                "kind": kind,
                "key": key,
                "outcome": outcome,
            }
        )

    def job_finished(self, job: Optional[Job]) -> None:
        assert job is not None
        event = {
            "event": "job_finished",
            "job": job.id,
            "state": job.state.value,
            "retries": job.retries,
            "error": job.error,
            "metrics": job.metrics,
        }
        if job.result is not None:
            event["result"] = job.result
        if job.trace_path is not None:
            event["trace_path"] = job.trace_path
        self._emit(event)


class Daemon:
    """The ``repro serve`` server: protocol + lifecycle glue."""

    def __init__(
        self,
        orchestrator: Orchestrator,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        drain_timeout: float = 60.0,
        log_path: Optional[str] = None,
        trace_dir: Optional[str] = None,
        heartbeat: float = 0.0,
    ) -> None:
        if socket_path is None and host is None:
            raise ValueError("daemon needs a unix socket path or a TCP host")
        self.orchestrator = orchestrator
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.log_path = log_path
        self.trace_dir = trace_dir
        #: Seconds between heartbeat records in the job log (<= 0 off).
        self.heartbeat = heartbeat
        #: This daemon instance's run id: stamped on every log line so
        #: logs from successive daemon lifetimes never interleave
        #: ambiguously, and joinable to ResultsStore run provenance.
        self.run_id = uuid.uuid4().hex[:12]
        self._started_monotonic = time.monotonic()
        self._log_lock = threading.Lock()
        self._log_seq = 0
        if trace_dir is not None:
            # Trace files are written by the orchestrator-wide observer
            # so they exist before per-connection terminal events.
            orchestrator.observer = CompositeObserver(
                _TraceWriter(self), orchestrator.observer
            )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: "set[asyncio.Queue[Optional[dict]]]" = set()
        #: Filled once the server is listening: ("unix", path) or
        #: ("tcp", host, port) -- tests read the ephemeral port here.
        self.endpoint: Optional[tuple] = None
        self.ready = threading.Event()

    # -- logging -----------------------------------------------------------

    def _log_event(self, event: dict) -> None:
        if self.log_path is None:
            return
        with self._log_lock:
            # Never mutate ``event`` -- the same dict is queued for the
            # client stream; the log line is a stamped copy.  seq is
            # assigned under the lock, so log order == seq order.
            self._log_seq += 1
            record = {"seq": self._log_seq, "run": self.run_id, **event}
            line = json.dumps(record, sort_keys=True, default=str)
            with open(self.log_path, "a") as handle:
                handle.write(line + "\n")

    # -- introspection -----------------------------------------------------

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def status(self) -> dict:
        """The ``status`` RPC payload: daemon + orchestrator + registry.

        Combines the daemon's identity and uptime, the orchestrator's
        live queue/worker view (:meth:`Orchestrator.status`), and the
        full process-wide metrics registry snapshot.
        """
        return {
            "run": self.run_id,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "trace_dir": self.trace_dir,
            "metrics": REGISTRY.snapshot(),
            **self.orchestrator.status(),
        }

    async def _heartbeat_loop(self) -> None:
        """Periodic liveness record in the job log (first beat now)."""
        while True:
            snapshot = self.orchestrator.status()
            self._log_event(
                {
                    "event": "heartbeat",
                    "uptime_seconds": round(self.uptime_seconds(), 3),
                    "queue": snapshot["queue"],
                    "in_flight": len(snapshot["in_flight"]),
                    "workers": snapshot["workers"],
                }
            )
            await asyncio.sleep(self.heartbeat)

    # -- protocol ----------------------------------------------------------

    async def _handle_request(
        self,
        request: dict,
        events: "asyncio.Queue[Optional[dict]]",
        observer: _ConnectionObserver,
    ) -> None:
        op = request.get("op")
        req_id = request.get("id")
        if op == "ping":
            await events.put({"event": "pong", "id": req_id})
            return
        if op == "stats":
            stats = self.orchestrator.stats()
            await events.put({"event": "stats", "id": req_id, **stats})
            return
        if op == "status":
            await events.put(
                {"event": "status", "id": req_id, **self.status()}
            )
            return
        if op == "cancel":
            ok = self.orchestrator.cancel(str(request.get("job")))
            await events.put(
                {
                    "event": "cancelled" if ok else "error",
                    "id": req_id,
                    **(
                        {"job": request.get("job")}
                        if ok
                        else {"message": f"no cancellable job "
                                         f"{request.get('job')!r}"}
                    ),
                }
            )
            return
        builder = _OPS.get(op or "")
        if builder is None:
            await events.put(
                {"event": "error", "id": req_id,
                 "message": f"unknown op {op!r}"}
            )
            return
        try:
            spec = builder(request)
        except (KeyError, TypeError, ValueError) as exc:
            await events.put(
                {"event": "error", "id": req_id,
                 "message": f"bad {op} request: {exc}"}
            )
            return
        timeout = request.get("timeout")
        try:
            job = self.orchestrator.submit(
                spec,
                timeout=float(timeout) if timeout is not None else None,
                observer=observer,
                trace=bool(request.get("trace", False)),
            )
        except RuntimeError as exc:  # draining
            await events.put(
                {"event": "error", "id": req_id, "message": str(exc)}
            )
            return
        accepted = {
            "event": "accepted", "id": req_id, "job": job.id, "op": job.op,
        }
        self._log_event(accepted)
        await events.put(accepted)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        events: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        self._connections.add(events)
        observer = _ConnectionObserver(loop, events, self)

        async def write_events() -> None:
            while True:
                event = await events.get()
                if event is None:
                    break
                try:
                    writer.write(
                        json.dumps(event, default=str).encode() + b"\n"
                    )
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break

        writer_task = asyncio.create_task(write_events())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await events.put(
                        {"event": "error",
                         "message": f"bad JSON: {exc}"}
                    )
                    continue
                await self._handle_request(request, events, observer)
        finally:
            self._connections.discard(events)
            # Flush whatever is queued, then stop the writer.
            await events.put(None)
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # -- lifecycle ---------------------------------------------------------

    def request_stop(self) -> None:
        """Thread-safe graceful-drain trigger (tests, embedders)."""
        if self._loop is not None and self._stopping is not None:
            self._loop.call_soon_threadsafe(self._stopping.set)

    async def serve(self, install_signal_handlers: bool = True) -> None:
        """Listen and serve until SIGTERM/SIGINT, then drain and exit."""
        self._stopping = asyncio.Event()
        loop = asyncio.get_running_loop()
        self._loop = loop
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._stopping.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        if self.socket_path is not None:
            path = Path(self.socket_path)
            if path.exists():
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=str(path)
            )
            self.endpoint = ("unix", str(path))
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=self.host, port=self.port
            )
            sock = self._server.sockets[0].getsockname()
            self.endpoint = ("tcp", sock[0], sock[1])
        self.ready.set()
        beats: Optional[asyncio.Task] = None
        if self.heartbeat > 0 and self.log_path is not None:
            beats = asyncio.ensure_future(self._heartbeat_loop())
        try:
            await self._stopping.wait()
        finally:
            if beats is not None:
                beats.cancel()
                try:
                    await beats
                except asyncio.CancelledError:
                    pass
            await self._drain()

    async def _drain(self) -> None:
        """Graceful shutdown: close intake, finish jobs, notify, exit."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for events in list(self._connections):
            events.put_nowait({"event": "draining"})
        # Let running jobs finish (bounded), then stop the workers.
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.orchestrator.drain(self.drain_timeout)
        )
        self.orchestrator.shutdown(wait=True, timeout=5.0)
        for events in list(self._connections):
            events.put_nowait(None)
        if self.socket_path is not None:
            try:
                Path(self.socket_path).unlink()
            except OSError:
                pass


def serve_forever(
    orchestrator: Orchestrator,
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: int = 0,
    drain_timeout: float = 60.0,
    log_path: Optional[str] = None,
    trace_dir: Optional[str] = None,
    heartbeat: float = 0.0,
    install_signal_handlers: bool = True,
) -> Daemon:
    """Blocking entry point used by ``repro serve``."""
    daemon = Daemon(
        orchestrator,
        socket_path=socket_path,
        host=host,
        port=port,
        drain_timeout=drain_timeout,
        log_path=log_path,
        trace_dir=trace_dir,
        heartbeat=heartbeat,
    )
    asyncio.run(daemon.serve(install_signal_handlers=install_signal_handlers))
    return daemon
