"""Application layer: queue-driven orchestration of evaluation jobs.

The :class:`Orchestrator` owns a FIFO job queue and a pool of worker
threads, each of which executes jobs through per-job
:class:`~repro.evaluation.runner.EvaluationRunner` instances -- all
runners share one :class:`~repro.artifacts.ArtifactStore`, so artifacts
computed for one client warm every later request exactly like the
process-parallel suite runner's shared disk cache.  That includes the
interpreters' generated superblock code (kind ``"codegen"``,
content-addressed on function IR + hook flags, machine shape
deliberately excluded): a job resubmitted at a different core count
recomputes its stage artifacts but instantiates every function's
stored source/bytecode instead of re-deriving it.  Because every stage
artifact is an exact recorded object (never a timing), results are
byte-identical to the one-shot CLI regardless of which worker computed
them or in what order.

Execution discipline:

* **Timeouts.** Each attempt may be bounded (``Job.timeout``); a timed
  out attempt fails the job, and the worker abandons its runner cache
  (the overrun handler may still be mutating those runners from its
  zombie thread -- Python cannot kill it, so the worker simply stops
  sharing state with it).
* **Bounded retry.** A handler signalling :class:`TransientJobError`
  (worker-process death under the suite fan-out, interrupted system
  calls, ...) requeues the job up to ``max_retries`` times; every
  requeue increments ``job.retries``, which is surfaced in observer
  events and the daemon's report JSON.
* **Cancellation.** :meth:`Orchestrator.cancel` finishes a queued job
  immediately; a running job is cancelled cooperatively -- handlers
  call :meth:`JobContext.check` between pipeline stages and raise
  :class:`JobCancelled` at the next checkpoint.
* **Shutdown.** :meth:`drain` stops intake and waits for the queue to
  empty (the daemon's SIGTERM path); :meth:`shutdown` additionally
  cancels whatever is still queued, delivers one poison pill per worker
  and joins them -- KeyboardInterrupt-safe, since only the main thread
  receives the signal.

Progress streams through the domain
:class:`~repro.service.jobs.EvaluationObserver` protocol: the
orchestrator emits ``job_started``/``job_finished``, and binds the
per-attempt observer into each runner so stage and artifact events
arrive attributed to the right job.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Type

from repro.artifacts import ArtifactStore
from repro.obs import REGISTRY, get_tracer, tracing
from repro.runtime.machine import MachineConfig
from repro.service.jobs import (
    NULL_OBSERVER,
    BoundObserver,
    CompileJob,
    CompositeObserver,
    EvaluationObserver,
    Job,
    JobState,
    RunJob,
    SuiteJob,
    TraceJob,
)


class JobCancelled(Exception):
    """Raised inside a handler at a cancellation checkpoint."""


class JobTimeout(Exception):
    """One attempt exceeded its wall-clock budget."""


class TransientJobError(Exception):
    """A failure worth retrying (e.g. worker-process death)."""


#: The process-wide tracer is ambient, so trace-capturing jobs are
#: serialized; concurrent non-trace jobs keep running (their spans may
#: appear in the capture, attributed by their ``job`` span argument).
_TRACE_LOCK = threading.Lock()


@dataclass
class JobContext:
    """What a handler gets to work with during one attempt."""

    job: Job
    observer: EvaluationObserver
    artifacts: ArtifactStore
    #: This attempt's runner cache (keyed by core count).  Runners are
    #: per-job on purpose: cross-job warmth flows through the shared
    #: :class:`ArtifactStore` instead of private memos, so every repeat
    #: request shows up as store hits and results never depend on which
    #: worker thread served the job.
    runners: Dict[int, Any] = field(default_factory=dict)
    interp_backend: str = "auto"

    @property
    def cancelled(self) -> bool:
        return self.job.cancel_requested.is_set()

    def check(self) -> None:
        """Cancellation checkpoint: raise if a cancel was requested."""
        if self.cancelled:
            raise JobCancelled(self.job.id)

    def runner(self, cores: int):
        """This attempt's :class:`EvaluationRunner` for ``cores``."""
        runner = self.runners.get(cores)
        if runner is None:
            from repro.evaluation.runner import EvaluationRunner

            runner = EvaluationRunner(
                MachineConfig(cores=cores),
                artifacts=self.artifacts,
                interp_backend=self.interp_backend,
            )
            self.runners[cores] = runner
        # Rebind progress onto this attempt's job-bound observer.
        runner.observer = self.observer
        return runner


Handler = Callable[[JobContext, Any], dict]


class Orchestrator:
    """Executes evaluation jobs from a queue over shared artifacts."""

    def __init__(
        self,
        cache: Any = None,
        artifacts: Optional[ArtifactStore] = None,
        workers: int = 2,
        observer: Optional[EvaluationObserver] = None,
        default_timeout: Optional[float] = None,
        max_retries: int = 1,
        interp_backend: str = "auto",
    ) -> None:
        self.artifacts = (
            artifacts if artifacts is not None else ArtifactStore(cache)
        )
        self.observer: EvaluationObserver = observer or NULL_OBSERVER
        self.default_timeout = default_timeout
        self.max_retries = max_retries
        self.interp_backend = interp_backend
        self.handlers: Dict[Type[Any], Handler] = {
            CompileJob: self._handle_compile,
            RunJob: self._handle_run,
            SuiteJob: self._handle_suite,
            TraceJob: self._handle_trace,
        }
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._job_observers: Dict[str, EvaluationObserver] = {}
        self._lock = threading.Lock()
        self._accepting = True
        self._threads: List[threading.Thread] = []
        for index in range(max(1, workers)):
            thread = threading.Thread(
                target=self._worker, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    # -- intake ------------------------------------------------------------

    def submit(
        self,
        spec: Any,
        timeout: Optional[float] = None,
        observer: Optional[EvaluationObserver] = None,
        trace: bool = False,
    ) -> Job:
        """Queue one job; returns it immediately (state QUEUED).

        ``observer`` (optional) receives this job's events in addition
        to the orchestrator-wide observer -- the daemon registers the
        submitting connection's stream here.  ``trace`` asks the worker
        to run the job's attempts under a recording tracer and attach
        the captured spans to the job (``Job.spans``).
        """
        if type(spec) not in self.handlers:
            raise TypeError(f"no handler for job spec {type(spec).__name__}")
        with self._lock:
            if not self._accepting:
                raise RuntimeError("orchestrator is draining")
            job = Job(
                spec=spec,
                timeout=self.default_timeout if timeout is None else timeout,
                trace=trace,
            )
            self._jobs[job.id] = job
            if observer is not None:
                self._job_observers[job.id] = observer
        self._queue.put(job)
        return job

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job: Job, timeout: Optional[float] = None) -> Job:
        """Block until ``job`` reaches a terminal state."""
        job.finished.wait(timeout)
        return job

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns whether the job will stop.

        A queued job is finished (CANCELLED) on the spot; a running one
        is flagged and stops at its handler's next checkpoint; terminal
        jobs are left alone (returns False).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state.terminal:
                return False
            job.request_cancel()
            if job.state is JobState.QUEUED:
                job.transition(JobState.CANCELLED)
                observer = self._observer_for(job)
            else:
                return True  # running: cooperative
        observer.job_finished(job)
        return True

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting submissions and wait for in-flight work.

        Returns True when every accepted job reached a terminal state
        within ``timeout`` (None = wait indefinitely).
        """
        with self._lock:
            self._accepting = False
            pending = [j for j in self._jobs.values() if not j.state.terminal]
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in pending:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                return False
            if not job.finished.wait(remaining):
                return False
        return True

    def shutdown(
        self, wait: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Cancel queued jobs, poison the workers, and join them."""
        with self._lock:
            self._accepting = False
            queued = [
                j for j in self._jobs.values() if j.state is JobState.QUEUED
            ]
        for job in queued:
            self.cancel(job.id)
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout)

    def stats(self) -> dict:
        """Job accounting + unified artifact-store counters."""
        with self._lock:
            jobs = list(self._jobs.values())
        states: Dict[str, int] = {}
        for job in jobs:
            states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "jobs": {
                "total": len(jobs),
                "states": states,
                "retries": sum(job.retries for job in jobs),
            },
            "artifacts": self.artifacts.counters(),
        }

    def status(self) -> dict:
        """Runtime introspection: queue depth, in-flight jobs, workers.

        Unlike :meth:`stats` (job accounting for reports), this is the
        live operational view the daemon's ``status`` RPC exposes:
        queue depth by state (every state present, zero or not),
        in-flight jobs with their ages, total retries, and worker
        liveness -- a dead worker thread shows up as ``alive <
        configured``.
        """
        now = time.monotonic()
        with self._lock:
            jobs = list(self._jobs.values())
            accepting = self._accepting
        queue_depth = {state.value: 0 for state in JobState}
        for job in jobs:
            queue_depth[job.state.value] += 1
        in_flight = [
            {
                "job": job.id,
                "op": job.op,
                "bench": getattr(job.spec, "bench", None),
                "retries": job.retries,
                "age_seconds": round(job.age_seconds(now), 3),
            }
            for job in jobs
            if job.state is JobState.RUNNING
        ]
        return {
            "accepting": accepting,
            "queue": queue_depth,
            "in_flight": in_flight,
            "retries": sum(job.retries for job in jobs),
            "workers": {
                "configured": len(self._threads),
                "alive": sum(
                    1 for thread in self._threads if thread.is_alive()
                ),
            },
            "artifacts": self.artifacts.counters(),
        }

    # -- execution ---------------------------------------------------------

    def _observer_for(self, job: Job) -> EvaluationObserver:
        extra = self._job_observers.get(job.id)
        if extra is None:
            return self.observer
        return CompositeObserver(self.observer, extra)

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while queued
                job.transition(JobState.RUNNING)
                observer = self._observer_for(job)
            observer.job_started(job)
            bound = BoundObserver(observer, job)
            ctx = JobContext(
                job=job,
                observer=bound,
                artifacts=self.artifacts,
                interp_backend=self.interp_backend,
            )
            handler = self.handlers[type(job.spec)]
            try:
                with get_tracer().span(
                    f"job.{job.op}", cat="job", job=job.id,
                    retries=job.retries,
                ):
                    result = self._attempt(handler, ctx, job)
            except JobCancelled:
                with self._lock:
                    job.transition(JobState.CANCELLED)
            except JobTimeout as exc:
                # The overrun handler's zombie thread keeps its own
                # per-job runners; only the thread-safe artifact store
                # is shared with it, so nothing to abandon here.
                with self._lock:
                    job.error = str(exc)
                    job.transition(JobState.FAILED)
            except TransientJobError as exc:
                requeued = False
                with self._lock:
                    if (
                        job.retries < self.max_retries
                        and not job.cancel_requested.is_set()
                    ):
                        job.retries += 1
                        job.transition(JobState.QUEUED)
                        requeued = True
                    else:
                        job.error = str(exc)
                        job.transition(JobState.FAILED)
                if requeued:
                    self._queue.put(job)
                    continue  # no job_finished: the next attempt restarts
            except Exception as exc:  # noqa: BLE001 - job isolation barrier
                with self._lock:
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.transition(JobState.FAILED)
            else:
                with self._lock:
                    job.result = result
                    job.transition(JobState.DONE)
            observer.job_finished(job)

    def _attempt(self, handler: Handler, ctx: JobContext, job: Job) -> dict:
        """One attempt, bounded by the job's timeout.

        Python threads cannot be killed, so the budget is enforced by
        running the handler in a disposable thread and abandoning it on
        overrun -- the worker raises :class:`JobTimeout` and never reads
        the late result.
        """
        if not job.timeout:
            return self._execute(handler, ctx, job)
        box: Dict[str, Any] = {}
        done = threading.Event()

        def target() -> None:
            try:
                box["result"] = self._execute(handler, ctx, job)
            except BaseException as exc:  # noqa: BLE001 - crosses threads
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=target, name=f"attempt-{job.id}", daemon=True
        )
        thread.start()
        if not done.wait(job.timeout):
            job.request_cancel()  # tell the zombie to stop at a checkpoint
            raise JobTimeout(
                f"job {job.id} exceeded its {job.timeout:.1f}s budget"
            )
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _execute(self, handler: Handler, ctx: JobContext, job: Job) -> dict:
        """Run one attempt body in the *calling* thread, capturing
        observability onto the job.

        The attempt runs under ``REGISTRY.isolated()``, so ``Job.metrics``
        is exactly this attempt's counter/gauge delta -- work done
        concurrently by other worker threads (or an abandoned zombie of
        a timed-out job) never contaminates it, and the scope's totals
        still fold back into the process-wide registry on exit.  Metrics
        (and spans, for traced jobs) are recorded in whichever thread
        executes the handler -- the worker itself, or the disposable
        timeout thread -- because the registry scope is thread-local.

        A ``trace``-flagged job additionally runs under the ambient
        recording tracer (serialized by ``_TRACE_LOCK``, like the
        dedicated trace op).  Trace-op jobs are excluded here -- their
        handler takes the same non-reentrant lock itself, possibly from
        a different (disposable) thread, and already attaches its spans.

        Late writes from abandoned timeout threads are suppressed: once
        the worker finished the job, the zombie's capture is dropped.
        """
        traced = job.trace and not isinstance(job.spec, TraceJob)
        spans: Optional[List[dict]] = None
        with REGISTRY.isolated() as scope:
            try:
                if traced:
                    with _TRACE_LOCK:
                        with tracing() as tracer:
                            result = handler(ctx, job.spec)
                        spans = [
                            event.as_dict() for event in tracer.finished()
                        ]
                else:
                    result = handler(ctx, job.spec)
            finally:
                if not job.finished.is_set():
                    job.metrics = scope.snapshot()
        if spans is not None and not job.finished.is_set():
            job.spans = spans
        return result

    # -- default handlers --------------------------------------------------

    def _handle_compile(self, ctx: JobContext, spec: CompileJob) -> dict:
        from repro.core.loopinfo import HelixOptions
        from repro.core.parallelizer import parallelize_module
        from repro.ir.printer import module_to_str

        runner = ctx.runner(spec.cores)
        module = runner.module(spec.bench, "ref")
        ctx.check()
        selection = runner.selection(spec.bench)
        ctx.check()
        transformed, infos = parallelize_module(
            module,
            selection.chosen,
            runner.machine,
            HelixOptions(),
            manager=runner.analysis,
        )
        result = {
            "bench": spec.bench,
            "cores": spec.cores,
            "chosen": [list(loop) for loop in selection.chosen],
            "parallelized": len(infos),
        }
        if spec.include_ir:
            result["ir"] = module_to_str(transformed)
        return result

    def _handle_run(self, ctx: JobContext, spec: RunJob) -> dict:
        runner = ctx.runner(spec.cores)
        # Stage-by-stage with checkpoints, so cancellation lands between
        # stages instead of only at the end.
        runner.module(spec.bench, "train")
        ctx.check()
        runner.profile(spec.bench)
        ctx.check()
        runner.sequential(spec.bench)
        ctx.check()
        run = runner.helix_run(spec.bench)
        return {
            "bench": spec.bench,
            "cores": spec.cores,
            "speedup": run.speedup,
            "cycles": run.parallel.cycles,
            "sequential_cycles": run.sequential.cycles,
            "output": list(run.parallel.result.output),
            "output_matches": run.output_matches,
            "chosen": [list(loop) for loop in run.chosen],
        }

    def _handle_suite(self, ctx: JobContext, spec: SuiteJob) -> dict:
        from repro.evaluation.parallel_runner import run_suite

        cache_root = (
            str(self.artifacts.cache.root)
            if self.artifacts.cache is not None
            else None
        )
        try:
            fig9, report, _runner = run_suite(
                machine=MachineConfig(cores=spec.cores),
                jobs=spec.jobs,
                cache_dir=cache_root,
                benches=list(spec.benches) if spec.benches else None,
                observer=ctx.observer,
            )
        except BrokenProcessPool as exc:
            raise TransientJobError(f"suite worker pool died: {exc}") from exc
        return {
            "cores": spec.cores,
            "geomeans": report.geomeans,
            "speedups": report.speedups,
            "wall_seconds": report.wall_seconds,
            "interrupted": report.interrupted,
            "rendered": fig9.render(),
        }

    def _handle_trace(self, ctx: JobContext, spec: TraceJob) -> dict:
        from repro.evaluation.runner import EvaluationRunner
        from repro.obs import chrome_trace

        ctx.check()
        with _TRACE_LOCK:
            # A fresh runner (cold memos, warm disk) so the capture
            # contains the full stage-span taxonomy.
            with tracing() as tracer:
                runner = EvaluationRunner(
                    MachineConfig(cores=spec.cores),
                    artifacts=self.artifacts,
                    observer=ctx.observer,
                    interp_backend=self.interp_backend,
                )
                run = runner.helix_run(spec.bench)
            events = tracer.finished()
        # Attach the capture to the job so the daemon's --trace-dir
        # writer can export a per-job Perfetto file.
        if not ctx.job.finished.is_set():
            ctx.job.spans = [event.as_dict() for event in events]
        result = {
            "bench": spec.bench,
            "cores": spec.cores,
            "spans": len(events),
            "speedup": run.speedup,
            "output_matches": run.output_matches,
        }
        if spec.include_trace:
            result["trace"] = chrome_trace(
                events, registry_snapshot=REGISTRY.snapshot()
            )
        return result
