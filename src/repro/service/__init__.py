"""Layered evaluation service: compile/run jobs as a long-lived daemon.

The one-shot CLI rebuilds orchestration per invocation; this package
restructures it into three explicit layers so the same pipelines can be
served to many concurrent clients from one warm process:

* **Domain** (:mod:`repro.service.jobs`) -- pure job and event
  dataclasses: the four job kinds (compile / run / suite / trace), the
  ``queued -> running -> done/failed/cancelled`` :class:`JobState`
  machine, and the :class:`EvaluationObserver` protocol through which
  every layer above reports progress.  No infrastructure imports.
* **Application** (:mod:`repro.service.orchestrator`, plus
  :mod:`repro.artifacts`) -- a queue-driven orchestrator executing jobs
  through the existing :class:`~repro.evaluation.runner.EvaluationRunner`
  against a shared content-addressed
  :class:`~repro.artifacts.ArtifactStore`, with per-job timeouts,
  bounded retry of transient worker failures, and cooperative
  cancellation.
* **Infrastructure** (:mod:`repro.service.daemon`,
  :mod:`repro.service.client`, and ``repro serve`` in
  :mod:`repro.cli`) -- an asyncio JSON-lines protocol over a Unix or
  TCP socket that streams observer events to each submitting client and
  drains gracefully on SIGTERM.

CLI progress output is *one more observer* -- the suite's ``--stats``
progress, the daemon's event stream and tests' recording observers all
implement the same domain protocol.
"""

from repro.service.jobs import (
    NULL_OBSERVER,
    BoundObserver,
    CompileJob,
    CompositeObserver,
    EvaluationObserver,
    InvalidTransition,
    Job,
    JobState,
    NullObserver,
    RecordingObserver,
    RunJob,
    SuiteJob,
    TraceJob,
)
from repro.service.orchestrator import (
    JobCancelled,
    JobTimeout,
    Orchestrator,
    TransientJobError,
)

__all__ = [
    "NULL_OBSERVER",
    "BoundObserver",
    "CompileJob",
    "CompositeObserver",
    "EvaluationObserver",
    "InvalidTransition",
    "Job",
    "JobCancelled",
    "JobState",
    "JobTimeout",
    "NullObserver",
    "Orchestrator",
    "RecordingObserver",
    "RunJob",
    "SuiteJob",
    "TraceJob",
    "TransientJobError",
]
