"""Domain layer of the evaluation service: jobs, states, observers.

Everything here is a pure data structure or protocol -- no sockets, no
threads, no evaluation imports -- so the orchestration above it stays
testable without infrastructure.  The four job kinds mirror the one-shot
CLI commands they replace:

* :class:`CompileJob` -- profile, select and transform one benchmark
  without executing (``repro compile``).
* :class:`RunJob` -- the full HELIX pipeline of one benchmark
  (``repro bench`` / ``EvaluationRunner.helix_run``).
* :class:`SuiteJob` -- Figure 9 over a benchmark list (``repro suite``).
* :class:`TraceJob` -- one pipeline under the span tracer
  (``repro trace``).

A :class:`Job` wraps a spec with identity and lifecycle: the state
machine is ``queued -> running -> done | failed | cancelled``, with the
single back-edge ``running -> queued`` used by the orchestrator to
requeue a job after a *transient* failure (bounded by its retry budget).

Progress flows through the :class:`EvaluationObserver` protocol.  The
CLI's progress printer, the daemon's per-client event stream and tests'
recording observers are all just observers; :class:`CompositeObserver`
fans one event out to several of them and :class:`BoundObserver` pins
the ``job`` argument so layers that know nothing about jobs (the
evaluation runner's stage accounting) still emit well-attributed events.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union


class JobState(str, Enum):
    """Lifecycle of one job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: Legal state-machine edges.  ``running -> queued`` is the retry edge.
_TRANSITIONS: Dict[JobState, Tuple[JobState, ...]] = {
    JobState.QUEUED: (JobState.RUNNING, JobState.CANCELLED),
    JobState.RUNNING: (
        JobState.DONE,
        JobState.FAILED,
        JobState.CANCELLED,
        JobState.QUEUED,
    ),
    JobState.DONE: (),
    JobState.FAILED: (),
    JobState.CANCELLED: (),
}


class InvalidTransition(Exception):
    """An illegal job state-machine edge was requested."""


# -- job specs ---------------------------------------------------------------


@dataclass(frozen=True)
class CompileJob:
    """Profile, select and transform one benchmark (no execution)."""

    bench: str
    cores: int = 6
    include_ir: bool = False

    op = "compile"


@dataclass(frozen=True)
class RunJob:
    """Full HELIX pipeline of one benchmark: transform + simulate."""

    bench: str
    cores: int = 6

    op = "run"


@dataclass(frozen=True)
class SuiteJob:
    """Figure 9 over a benchmark list (``None`` = the whole suite)."""

    benches: Optional[Tuple[str, ...]] = None
    cores: int = 6
    jobs: int = 1

    op = "suite"


@dataclass(frozen=True)
class TraceJob:
    """One benchmark pipeline under the span tracer."""

    bench: str
    cores: int = 6
    include_trace: bool = False

    op = "trace"


JobSpec = Union[CompileJob, RunJob, SuiteJob, TraceJob]

_job_ids = itertools.count(1)


@dataclass
class Job:
    """One unit of service work: a spec plus identity and lifecycle."""

    spec: Any
    id: str = ""
    state: JobState = JobState.QUEUED
    #: Times this job was requeued after a transient failure.
    retries: int = 0
    #: Upper bound on one attempt's wall-clock (None = unbounded).
    timeout: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    #: ``repro.obs`` counter/gauge delta captured over the attempt that
    #: finished the job (orchestrator-filled).
    metrics: Optional[dict] = None
    #: Capture spans during this job's attempts (``trace: true`` on the
    #: wire); the orchestrator runs traced attempts under ``tracing()``.
    trace: bool = False
    #: Serialized :class:`~repro.obs.tracer.SpanEvent` dicts recorded by
    #: the attempt that finished the job (only when :attr:`trace`, or
    #: always for trace-op jobs).
    spans: Optional[List[dict]] = None
    #: Where the daemon wrote this job's Perfetto trace (``--trace-dir``).
    trace_path: Optional[str] = None
    #: Lifecycle timestamps (``time.monotonic``), for in-flight ages.
    submitted_monotonic: float = 0.0
    started_monotonic: Optional[float] = None
    finished_monotonic: Optional[float] = None
    #: Set by :meth:`request_cancel`; cooperative handlers poll it.
    cancel_requested: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    #: Set exactly once, when the job reaches a terminal state.
    finished: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.id:
            self.id = f"j{next(_job_ids)}"
        if not self.submitted_monotonic:
            self.submitted_monotonic = time.monotonic()

    @property
    def op(self) -> str:
        return getattr(self.spec, "op", type(self.spec).__name__)

    def transition(self, new: JobState) -> None:
        """Move to ``new``, enforcing the state machine."""
        if new not in _TRANSITIONS[self.state]:
            raise InvalidTransition(
                f"job {self.id}: illegal transition "
                f"{self.state.value} -> {new.value}"
            )
        self.state = new
        if new is JobState.RUNNING:
            self.started_monotonic = time.monotonic()
        if new.terminal:
            self.finished_monotonic = time.monotonic()
            self.finished.set()

    def request_cancel(self) -> None:
        self.cancel_requested.set()

    def age_seconds(self, now: Optional[float] = None) -> float:
        """Seconds since the current (or last) attempt started running.

        Falls back to time-since-submission while the job is queued.
        """
        if now is None:
            now = time.monotonic()
        end = self.finished_monotonic if self.finished_monotonic else now
        start = (
            self.started_monotonic
            if self.started_monotonic is not None
            else self.submitted_monotonic
        )
        return max(0.0, end - start)

    def as_dict(self) -> dict:
        """JSON-stable summary (the daemon's wire form of a job)."""
        spec: Dict[str, Any] = {}
        for name in getattr(self.spec, "__dataclass_fields__", {}):
            value = getattr(self.spec, name)
            spec[name] = list(value) if isinstance(value, tuple) else value
        summary = {
            "id": self.id,
            "op": self.op,
            "state": self.state.value,
            "retries": self.retries,
            "error": self.error,
            "spec": spec,
            "metrics": self.metrics,
        }
        if self.trace_path is not None:
            summary["trace_path"] = self.trace_path
        return summary


# -- observer protocol -------------------------------------------------------


class EvaluationObserver:
    """Protocol through which service layers report progress.

    Implementations override any subset; the base class is a usable
    no-op (also exposed as :class:`NullObserver` /
    :data:`NULL_OBSERVER`).  ``job`` may be ``None`` when the emitting
    layer has no job context (a bare :class:`EvaluationRunner` outside
    the service); :class:`BoundObserver` fills it in.
    """

    def job_started(self, job: Optional[Job]) -> None:
        """``job`` entered RUNNING (fires again after each retry)."""

    def stage_completed(
        self,
        job: Optional[Job],
        bench: str,
        stage: str,
        outcome: str,
        seconds: float,
    ) -> None:
        """One pipeline stage finished; ``outcome`` is ``compute``,
        ``memory`` or ``disk`` (or ``bench`` for whole-benchmark rows
        reported by the parallel suite runner)."""

    def artifact_stored(
        self, job: Optional[Job], kind: str, key: str, outcome: str
    ) -> None:
        """Artifact-store traffic: ``outcome`` is ``store`` (newly
        persisted) or ``hit`` (served warm)."""

    def job_finished(self, job: Optional[Job]) -> None:
        """``job`` reached a terminal state (done/failed/cancelled)."""


class NullObserver(EvaluationObserver):
    """Observer that ignores everything (the default)."""


NULL_OBSERVER = NullObserver()


class CompositeObserver(EvaluationObserver):
    """Fans each event out to several observers, in order."""

    def __init__(self, *observers: EvaluationObserver) -> None:
        self.observers: Tuple[EvaluationObserver, ...] = tuple(
            obs for obs in observers if obs is not None
        )

    def job_started(self, job: Optional[Job]) -> None:
        for obs in self.observers:
            obs.job_started(job)

    def stage_completed(
        self,
        job: Optional[Job],
        bench: str,
        stage: str,
        outcome: str,
        seconds: float,
    ) -> None:
        for obs in self.observers:
            obs.stage_completed(job, bench, stage, outcome, seconds)

    def artifact_stored(
        self, job: Optional[Job], kind: str, key: str, outcome: str
    ) -> None:
        for obs in self.observers:
            obs.artifact_stored(job, kind, key, outcome)

    def job_finished(self, job: Optional[Job]) -> None:
        for obs in self.observers:
            obs.job_finished(job)


class BoundObserver(EvaluationObserver):
    """Pins the ``job`` argument of every forwarded event.

    The evaluation runner emits stage/artifact events with ``job=None``
    (it predates jobs and stays job-agnostic); the orchestrator wraps
    the real observer in a bound one per attempt so those events arrive
    attributed to the right job.
    """

    def __init__(self, observer: EvaluationObserver, job: Job) -> None:
        self.observer = observer
        self.job = job

    def job_started(self, job: Optional[Job]) -> None:
        self.observer.job_started(self.job)

    def stage_completed(
        self,
        job: Optional[Job],
        bench: str,
        stage: str,
        outcome: str,
        seconds: float,
    ) -> None:
        self.observer.stage_completed(self.job, bench, stage, outcome, seconds)

    def artifact_stored(
        self, job: Optional[Job], kind: str, key: str, outcome: str
    ) -> None:
        self.observer.artifact_stored(self.job, kind, key, outcome)

    def job_finished(self, job: Optional[Job]) -> None:
        self.observer.job_finished(self.job)


@dataclass
class ObservedEvent:
    """One recorded observer call (test/debug support)."""

    kind: str
    job_id: Optional[str]
    args: Dict[str, Any] = field(default_factory=dict)


class RecordingObserver(EvaluationObserver):
    """Thread-safe observer that records every event, in arrival order.

    Used by the daemon tests and the hypothesis event-ordering test;
    :meth:`for_job` slices one job's event stream back out.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: List[ObservedEvent] = []

    def _record(self, event: str, job: Optional[Job], **args: Any) -> None:
        record = ObservedEvent(
            kind=event, job_id=job.id if job is not None else None, args=args
        )
        with self._lock:
            self.events.append(record)

    def job_started(self, job: Optional[Job]) -> None:
        self._record(
            "job_started", job,
            retries=job.retries if job is not None else 0,
        )

    def stage_completed(
        self,
        job: Optional[Job],
        bench: str,
        stage: str,
        outcome: str,
        seconds: float,
    ) -> None:
        self._record(
            "stage_completed", job,
            bench=bench, stage=stage, outcome=outcome, seconds=seconds,
        )

    def artifact_stored(
        self, job: Optional[Job], kind: str, key: str, outcome: str
    ) -> None:
        self._record(
            "artifact_stored", job, kind=kind, key=key, outcome=outcome
        )

    def job_finished(self, job: Optional[Job]) -> None:
        self._record(
            "job_finished", job,
            state=job.state.value if job is not None else None,
            retries=job.retries if job is not None else 0,
        )

    def for_job(self, job_id: str) -> List[ObservedEvent]:
        with self._lock:
            return [e for e in self.events if e.job_id == job_id]

    def kinds(self, job_id: str) -> List[str]:
        return [e.kind for e in self.for_job(job_id)]


def check_event_ordering(events: Sequence[ObservedEvent]) -> List[str]:
    """Validate one job's event stream against the observer contract.

    Returns a list of violations (empty = well-ordered):

    * the stream starts with ``job_started`` and ends with
      ``job_finished``,
    * ``job_finished`` appears exactly once, at the end,
    * every stage/artifact event falls between a ``job_started`` and the
      final ``job_finished``,
    * ``job_started`` fires once per attempt with strictly increasing
      ``retries`` starting at 0.
    """
    problems: List[str] = []
    if not events:
        return ["empty event stream"]
    if events[0].kind != "job_started":
        problems.append(f"first event is {events[0].kind}, not job_started")
    if events[-1].kind != "job_finished":
        problems.append(f"last event is {events[-1].kind}, not job_finished")
    finishes = [e for e in events if e.kind == "job_finished"]
    if len(finishes) != 1:
        problems.append(f"{len(finishes)} job_finished events (expected 1)")
    starts = [e for e in events if e.kind == "job_started"]
    retries = [e.args.get("retries", 0) for e in starts]
    if retries != sorted(set(retries)) or (retries and retries[0] != 0):
        problems.append(f"job_started retries not 0,1,2,...: {retries}")
    started = False
    for event in events:
        if event.kind == "job_started":
            started = True
        elif event.kind in ("stage_completed", "artifact_stored"):
            if not started:
                problems.append(f"{event.kind} before any job_started")
    return problems
