"""Synchronous client for the ``repro serve`` daemon.

A thin blocking wrapper over the JSON-lines socket protocol of
:mod:`repro.service.daemon`, used by the tests and the CI serve-smoke
job.  One :class:`ServiceClient` holds one connection; requests are
submitted with :meth:`request` and the per-job event stream is consumed
with :meth:`wait` (which returns the terminal ``job_finished`` event and
keeps every intermediate event in order).
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional


class ServiceError(Exception):
    """The daemon answered a request with an ``error`` event."""


class ServiceClient:
    """Blocking JSON-lines client for one daemon connection."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        timeout: Optional[float] = 300.0,
    ) -> None:
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        elif host is not None:
            self._sock = socket.create_connection((host, port), timeout)
        else:
            raise ValueError("client needs a unix socket path or a TCP host")
        self._file = self._sock.makefile("r", encoding="utf-8")
        #: Events read off the wire but not yet claimed by a wait().
        self._pending: List[dict] = []

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- wire primitives ---------------------------------------------------

    def send(self, request: dict) -> None:
        self._sock.sendall(json.dumps(request).encode() + b"\n")

    def _read_wire(self) -> dict:
        """The next event off the socket (never from ``_pending`` --
        callers that stash unclaimed events into ``_pending`` must read
        from the wire only, or they would recycle their own stash)."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def read_event(self) -> dict:
        if self._pending:
            return self._pending.pop(0)
        return self._read_wire()

    # -- protocol helpers --------------------------------------------------

    def request(self, request: dict) -> str:
        """Submit one job request; returns the server-side job id."""
        self.send(request)
        while True:
            event = self._read_wire()
            kind = event.get("event")
            if kind == "accepted":
                return event["job"]
            if kind == "error":
                raise ServiceError(event.get("message", "unknown error"))
            # Event of an earlier job on this connection: keep for its
            # wait() call.
            self._pending.append(event)

    def wait(self, job_id: str) -> dict:
        """Block until ``job_id`` finishes; returns the terminal event.

        Every event of *other* jobs seen along the way stays queued for
        their own ``wait`` calls; this job's intermediate events are
        recorded on the returned dict under ``"events"``.
        """
        events: List[dict] = []
        claimed: List[dict] = []
        for event in self._pending:
            if event.get("job") == job_id:
                events.append(event)
                claimed.append(event)
        for event in claimed:
            self._pending.remove(event)
        for event in events:
            if event.get("event") == "job_finished":
                event = dict(event)
                event["events"] = events[:-1]
                return event
        while True:
            event = self._read_wire()
            if event.get("job") != job_id:
                self._pending.append(event)
                continue
            if event.get("event") == "job_finished":
                event = dict(event)
                event["events"] = events
                return event
            events.append(event)

    def run(self, request: dict) -> dict:
        """Submit and wait in one call; raises on failed jobs."""
        finished = self.wait(self.request(request))
        if finished.get("state") != "done":
            raise ServiceError(
                f"job failed ({finished.get('state')}): "
                f"{finished.get('error')}"
            )
        return finished

    def cancel(self, job_id: str) -> bool:
        self.send({"op": "cancel", "job": job_id})
        while True:
            event = self._read_wire()
            if event.get("event") == "cancelled" and event.get("job") == job_id:
                return True
            if event.get("event") == "error":
                return False
            self._pending.append(event)

    def stats(self) -> Dict[str, dict]:
        self.send({"op": "stats"})
        while True:
            event = self._read_wire()
            if event.get("event") == "stats":
                return event
            self._pending.append(event)

    def status(self) -> Dict[str, dict]:
        """The daemon's live introspection payload (``status`` RPC).

        Queue depth by job state, in-flight jobs with ages, worker
        liveness, uptime, artifact-store counters, and the full
        metrics-registry snapshot.
        """
        self.send({"op": "status"})
        while True:
            event = self._read_wire()
            if event.get("event") == "status":
                return event
            self._pending.append(event)

    def ping(self) -> bool:
        self.send({"op": "ping"})
        while True:
            event = self._read_wire()
            if event.get("event") == "pong":
                return True
            self._pending.append(event)
