"""repro -- a from-scratch reproduction of HELIX (Campanoni et al., CGO 2012).

HELIX parallelizes loops of irregular sequential programs by running
successive iterations on a ring of cores, synchronizing loop-carried
dependences with ``wait``/``signal`` pairs, minimizing the number and cost
of those signals, and picking which loops to parallelize with a
profile-driven analytical model.

The package is organized as the original system was:

* :mod:`repro.ir` -- the compiler IR (ILDJIT's role).
* :mod:`repro.frontend` -- MiniC, a C-subset frontend (GCC4CLI's role).
* :mod:`repro.analysis` -- CFG/dataflow/pointer/dependence analyses.
* :mod:`repro.transform` -- generic transformations (inlining, DCE, ...).
* :mod:`repro.core` -- the HELIX algorithm itself (Steps 1-9 and the
  loop-selection heuristic of Section 2.2).
* :mod:`repro.runtime` -- interpreter, profiler, and the cycle-level chip
  multiprocessor simulator standing in for the Intel i7-980X testbed.
* :mod:`repro.bench` -- 13 SPEC-CPU2000-like benchmark programs.
* :mod:`repro.evaluation` -- harness regenerating every paper table/figure.

Quickstart::

    from repro import compile_minic, parallelize_and_run, MachineConfig

    module = compile_minic(source_text)
    result = parallelize_and_run(module, machine=MachineConfig(cores=6))
    print(result.speedup)
"""

__version__ = "1.0.0"

from repro.api import (
    HelixResult,
    compile_minic,
    parallelize,
    parallelize_and_run,
)
from repro.runtime.machine import MachineConfig

__all__ = [
    "compile_minic",
    "parallelize",
    "parallelize_and_run",
    "HelixResult",
    "MachineConfig",
    "__version__",
]
