"""IRBuilder: ergonomic construction of IR, used by the frontend and tests."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import COMPARE_OPCODES, Instruction, Opcode
from repro.ir.operands import Const, Operand, Symbol, VReg
from repro.ir.types import Type, common_numeric_type


class IRBuilder:
    """Appends instructions to a current insertion block of a function.

    Arithmetic helpers infer result types with C-style promotion and insert
    ``ITOF`` conversions automatically, mirroring what a simple C frontend
    (like GCC4CLI in the original system) would emit.
    """

    def __init__(self, func: Function) -> None:
        self.func = func
        self.block: Optional[BasicBlock] = None

    # -- positioning -----------------------------------------------------------

    def set_block(self, block: BasicBlock) -> BasicBlock:
        """Direct subsequent emissions into ``block``."""
        self.block = block
        return block

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create a block (does not change the insertion point)."""
        return self.func.new_block(hint)

    def start_block(self, hint: str = "bb") -> BasicBlock:
        """Create a block and make it the insertion point."""
        return self.set_block(self.new_block(hint))

    # -- raw emission ------------------------------------------------------------

    def emit(self, instr: Instruction) -> Instruction:
        """Append ``instr`` to the current block."""
        if self.block is None:
            raise ValueError("no insertion block set")
        return self.block.append(instr)

    # -- values ---------------------------------------------------------------

    def coerce(self, value: Operand, to: Type) -> Operand:
        """Convert ``value`` to type ``to``, emitting ITOF/FTOI if needed."""
        from repro.ir.operands import operand_type

        have = operand_type(value)
        if have == to:
            return value
        if have is Type.INT and to is Type.FLOAT:
            if isinstance(value, Const):
                return Const.float(float(value.value))
            dst = self.func.new_vreg(Type.FLOAT)
            self.emit(Instruction(Opcode.ITOF, dest=dst, args=(value,)))
            return dst
        if have is Type.FLOAT and to is Type.INT:
            if isinstance(value, Const):
                return Const.int(int(value.value))
            dst = self.func.new_vreg(Type.INT)
            self.emit(Instruction(Opcode.FTOI, dest=dst, args=(value,)))
            return dst
        raise TypeError(f"cannot coerce {have} to {to}")

    def mov(self, value: Operand, name: str = "") -> VReg:
        """Copy ``value`` into a fresh register."""
        from repro.ir.operands import operand_type

        dst = self.func.new_vreg(operand_type(value), name)
        self.emit(Instruction(Opcode.MOV, dest=dst, args=(value,)))
        return dst

    def binop(self, opcode: Opcode, a: Operand, b: Operand) -> VReg:
        """Emit a binary operation with C-style type promotion."""
        from repro.ir.operands import operand_type

        ta, tb = operand_type(a), operand_type(b)
        if opcode in COMPARE_OPCODES:
            result_type = Type.INT
            if ta != tb:
                promo = common_numeric_type(ta, tb)
                a, b = self.coerce(a, promo), self.coerce(b, promo)
        elif opcode in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.MOD):
            result_type = Type.INT
            a, b = self.coerce(a, Type.INT), self.coerce(b, Type.INT)
        elif ta is Type.PTR or tb is Type.PTR:
            if opcode is not Opcode.ADD and opcode is not Opcode.SUB:
                raise TypeError("only +/- defined on pointers")
            result_type = Type.PTR
        else:
            result_type = common_numeric_type(ta, tb)
            a, b = self.coerce(a, result_type), self.coerce(b, result_type)
        dst = self.func.new_vreg(result_type)
        self.emit(Instruction(opcode, dest=dst, args=(a, b)))
        return dst

    def add(self, a: Operand, b: Operand) -> VReg:
        return self.binop(Opcode.ADD, a, b)

    def sub(self, a: Operand, b: Operand) -> VReg:
        return self.binop(Opcode.SUB, a, b)

    def mul(self, a: Operand, b: Operand) -> VReg:
        return self.binop(Opcode.MUL, a, b)

    def div(self, a: Operand, b: Operand) -> VReg:
        return self.binop(Opcode.DIV, a, b)

    def mod(self, a: Operand, b: Operand) -> VReg:
        return self.binop(Opcode.MOD, a, b)

    def neg(self, a: Operand) -> VReg:
        from repro.ir.operands import operand_type

        dst = self.func.new_vreg(operand_type(a))
        self.emit(Instruction(Opcode.NEG, dest=dst, args=(a,)))
        return dst

    def logical_not(self, a: Operand) -> VReg:
        a = self.coerce(a, Type.INT) if not isinstance(a, VReg) or a.type is not Type.INT else a
        dst = self.func.new_vreg(Type.INT)
        self.emit(Instruction(Opcode.NOT, dest=dst, args=(a,)))
        return dst

    def cmp(self, opcode: Opcode, a: Operand, b: Operand) -> VReg:
        """Emit a comparison producing an int 0/1."""
        if opcode not in COMPARE_OPCODES:
            raise ValueError(f"{opcode} is not a comparison")
        return self.binop(opcode, a, b)

    # -- memory ------------------------------------------------------------------

    def lea(self, sym: Symbol, idx: Operand = Const.int(0)) -> VReg:
        """Take the address of ``sym[idx]``."""
        dst = self.func.new_vreg(Type.PTR)
        self.emit(Instruction(Opcode.LEA, dest=dst, args=(sym, idx)))
        return dst

    def ptradd(self, ptr: Operand, idx: Operand) -> VReg:
        """Pointer arithmetic: ``ptr + idx`` elements."""
        dst = self.func.new_vreg(Type.PTR)
        self.emit(Instruction(Opcode.PTRADD, dest=dst, args=(ptr, idx)))
        return dst

    def loadg(self, sym: Symbol, idx: Operand = Const.int(0)) -> VReg:
        """Direct load ``sym[idx]``."""
        dst = self.func.new_vreg(sym.elem_type)
        self.emit(Instruction(Opcode.LOADG, dest=dst, args=(sym, idx)))
        return dst

    def storeg(self, sym: Symbol, idx: Operand, value: Operand) -> Instruction:
        """Direct store ``sym[idx] = value``."""
        value = self.coerce(value, sym.elem_type)
        return self.emit(Instruction(Opcode.STOREG, args=(sym, idx, value)))

    def loadp(self, ptr: Operand, offset: Operand, elem_type: Type) -> VReg:
        """Indirect load ``*(ptr + offset)``."""
        dst = self.func.new_vreg(elem_type)
        self.emit(Instruction(Opcode.LOADP, dest=dst, args=(ptr, offset)))
        return dst

    def storep(self, ptr: Operand, offset: Operand, value: Operand) -> Instruction:
        """Indirect store ``*(ptr + offset) = value``."""
        return self.emit(Instruction(Opcode.STOREP, args=(ptr, offset, value)))

    # -- calls and control ----------------------------------------------------------

    def call(
        self,
        callee: Function,
        args: Sequence[Operand] = (),
        name: str = "",
    ) -> Optional[VReg]:
        """Call ``callee``; coerces arguments to parameter types."""
        if len(args) != len(callee.params):
            raise TypeError(
                f"call to {callee.name}: {len(args)} args, "
                f"{len(callee.params)} params"
            )
        coerced = tuple(
            self.coerce(a, p.type) for a, p in zip(args, callee.params)
        )
        dest = None
        if callee.return_type is not Type.VOID:
            dest = self.func.new_vreg(callee.return_type, name)
        self.emit(
            Instruction(Opcode.CALL, dest=dest, args=coerced, callee=callee.name)
        )
        return dest

    def ret(self, value: Optional[Operand] = None) -> Instruction:
        """Return (optionally with a value coerced to the return type)."""
        args: tuple = ()
        if value is not None:
            args = (self.coerce(value, self.func.return_type),)
        return self.emit(Instruction(Opcode.RET, args=args))

    def br(self, target: BasicBlock) -> Instruction:
        """Unconditional jump."""
        return self.emit(Instruction(Opcode.BR, targets=(target.name,)))

    def cbr(self, cond: Operand, then: BasicBlock, orelse: BasicBlock) -> Instruction:
        """Conditional branch on a non-zero int condition."""
        cond = self.coerce(cond, Type.INT)
        return self.emit(
            Instruction(Opcode.CBR, args=(cond,), targets=(then.name, orelse.name))
        )

    def print(self, value: Operand) -> Instruction:
        """Emit observable output (the correctness oracle channel)."""
        return self.emit(Instruction(Opcode.PRINT, args=(value,)))
