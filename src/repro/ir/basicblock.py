"""Basic blocks: straight-line instruction sequences with one terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.ir.instructions import Instruction, Opcode


class BasicBlock:
    """A named basic block within a :class:`~repro.ir.function.Function`.

    Successors are derived from the terminator's ``targets`` rather than
    stored, so splicing passes cannot leave the CFG stale.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: List[Instruction] = []

    # -- structural queries -------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's terminator, or None while under construction."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        """Whether the block already ends in BR/CBR/RET."""
        return self.terminator is not None

    def successor_names(self) -> Tuple[str, ...]:
        """Names of successor blocks (empty for RET / unterminated)."""
        term = self.terminator
        if term is None or term.opcode is Opcode.RET:
            return ()
        return term.targets

    def body(self) -> List[Instruction]:
        """Instructions excluding the terminator."""
        if self.is_terminated:
            return self.instructions[:-1]
        return list(self.instructions)

    # -- mutation -----------------------------------------------------------

    def append(self, instr: Instruction) -> Instruction:
        """Append ``instr``; refuses to add past a terminator."""
        if self.is_terminated:
            raise ValueError(f"block {self.name!r} is already terminated")
        self.instructions.append(instr)
        return instr

    def insert_before_terminator(self, instr: Instruction) -> Instruction:
        """Insert ``instr`` just before the terminator (or append)."""
        if self.is_terminated:
            self.instructions.insert(len(self.instructions) - 1, instr)
        else:
            self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        """Insert ``instr`` at ``index`` in the instruction list."""
        self.instructions.insert(index, instr)
        return instr

    def remove(self, instr: Instruction) -> None:
        """Remove ``instr`` from the block (identity match)."""
        for i, existing in enumerate(self.instructions):
            if existing is instr:
                del self.instructions[i]
                return
        raise ValueError(f"instruction not in block {self.name!r}")

    def retarget(self, old: str, new: str) -> None:
        """Rewrite branch targets equal to ``old`` to ``new``."""
        term = self.terminator
        if term is not None and old in term.targets:
            term.targets = tuple(new if t == old else t for t in term.targets)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} instrs)>"
