"""Scalar type system for the IR.

MiniC (the frontend language) and the IR share this type universe: machine
integers, floats, pointers into array regions, and ``void`` for functions
that return nothing.  Word size mirrors the paper's testbed (64-bit Intel),
which matters only for the ``Bytes_i / CPU_word`` term of the speedup model
(Equation 1 in the paper).
"""

from __future__ import annotations

import enum

#: Bytes per CPU word on the modelled machine (Intel i7-980X, 64-bit).
CPU_WORD_BYTES = 8


class Type(enum.Enum):
    """The IR's scalar value types."""

    INT = "int"
    FLOAT = "float"
    PTR = "ptr"
    VOID = "void"

    @property
    def is_numeric(self) -> bool:
        """Whether arithmetic is defined on this type."""
        return self in (Type.INT, Type.FLOAT)

    @property
    def size_bytes(self) -> int:
        """Storage size of a value of this type, in bytes."""
        if self is Type.VOID:
            return 0
        return CPU_WORD_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Type.{self.name}"


def common_numeric_type(a: Type, b: Type) -> Type:
    """Return the result type of a binary arithmetic op on ``a`` and ``b``.

    Follows C's usual arithmetic conversions restricted to our universe:
    float dominates int.  Raises :class:`TypeError` for non-numeric inputs.
    """
    if not (a.is_numeric and b.is_numeric):
        raise TypeError(f"no common numeric type for {a} and {b}")
    if Type.FLOAT in (a, b):
        return Type.FLOAT
    return Type.INT
