"""Parser for the textual IR format emitted by :mod:`repro.ir.printer`.

Round-tripping (``parse_module(module_to_str(m))``) gives tests and tools
a stable way to author IR directly, without going through MiniC.  The
grammar is exactly what the printer produces::

    module NAME
    global TYPE @name[SIZE] [= [v, ...]]

    func RET NAME(TYPE %reg, ...) {
      local TYPE $name[SIZE]
    label:
      %dst = op operands
      op operands -> target, ...
    }
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import Module
from repro.ir.operands import Const, Operand, Symbol, VReg
from repro.ir.types import Type


class IRParseError(Exception):
    """Malformed textual IR."""


_TYPE_NAMES = {t.value: t for t in Type}
_OPCODES = {op.value: op for op in Opcode}

_GLOBAL_RE = re.compile(
    r"^global\s+(\w+)\s+@([\w.]+)\[(\d+)\](?:\s*=\s*(\[.*\])(\.\.\.)?)?$"
)
_FUNC_RE = re.compile(r"^func\s+(\w+)\s+([\w.]+)\((.*)\)\s*\{$")
_LOCAL_RE = re.compile(r"^local\s+(\w+)\s+\$([\w.]+)\[(\d+)\]$")
_LABEL_RE = re.compile(r"^([\w.]+):$")
_REG_RE = re.compile(r"^%(?:([\w.]+)\.(\d+)|t(\d+))$")


def _parse_reg(token: str, types: Dict[int, Type]) -> VReg:
    match = _REG_RE.match(token)
    if not match:
        raise IRParseError(f"bad register {token!r}")
    if match.group(3) is not None:
        uid, name = int(match.group(3)), ""
    else:
        uid, name = int(match.group(2)), match.group(1)
    return VReg(uid, types.get(uid, Type.INT), name)


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


class _FunctionParser:
    def __init__(self, module: Module, header: re.Match) -> None:
        ret_type = _TYPE_NAMES[header.group(1)]
        self.func = Function(header.group(2), ret_type)
        self.module = module
        self.reg_types: Dict[int, Type] = {}
        self.block: Optional[BasicBlock] = None
        params = header.group(3).strip()
        if params:
            for part in _split_operands(params):
                type_name, reg_text = part.split()
                match = _REG_RE.match(reg_text)
                if not match:
                    raise IRParseError(f"bad parameter {part!r}")
                param_type = _TYPE_NAMES[type_name]
                name = match.group(1) or ""
                reg = self.func.add_param(param_type, name)
                # The printer preserves uids; remap ours to match.
                uid = int(match.group(2) or match.group(3))
                self.reg_types[uid] = param_type
                self.func.params[-1] = VReg(uid, param_type, name)
        self.func._next_vreg = max(self.reg_types, default=-1) + 1

    def _operand(self, token: str) -> Operand:
        if token.startswith("%"):
            return _parse_reg(token, self.reg_types)
        if token.startswith("@"):
            name = token[1:]
            sym = self.module.globals.get(name)
            if sym is None:
                raise IRParseError(f"unknown global {token}")
            return sym
        if token.startswith("$"):
            name = token[1:]
            sym = self.func.locals.get(name)
            if sym is None:
                raise IRParseError(f"unknown local {token}")
            return sym
        try:
            if any(c in token for c in ".eE") and not token.lstrip("-").isdigit():
                return Const.float(float(token))
            return Const.int(int(token))
        except ValueError:
            raise IRParseError(f"bad operand {token!r}") from None

    def parse_line(self, line: str) -> None:
        local = _LOCAL_RE.match(line)
        if local:
            self.func.add_local_array(
                local.group(2), _TYPE_NAMES[local.group(1)], int(local.group(3))
            )
            return
        label = _LABEL_RE.match(line)
        if label:
            self.block = BasicBlock(label.group(1))
            self.func.add_block(self.block)
            return
        if self.block is None:
            raise IRParseError(f"instruction outside block: {line!r}")
        self.block.instructions.append(self._instruction(line))

    def _instruction(self, line: str) -> Instruction:
        dest = None
        if line.startswith("%") and " = " in line:
            dest, _, line = line.partition(" = ")
            dest = dest.strip()
            if not line:
                raise IRParseError(f"bad assignment {dest!r}")

        targets: Tuple[str, ...] = ()
        if "->" in line:
            line, _, target_text = line.partition("->")
            line = line.strip()
            targets = tuple(_split_operands(target_text))

        parts = line.split(None, 1)
        opcode = _OPCODES.get(parts[0])
        if opcode is None:
            raise IRParseError(f"unknown opcode {parts[0]!r}")
        rest = parts[1] if len(parts) > 1 else ""

        callee = None
        dep_id = None
        tokens = _split_operands(rest)
        cleaned: List[str] = []
        for token in tokens:
            inner = token.split()
            for piece in inner:
                if piece.startswith("@") and opcode is Opcode.CALL:
                    callee = piece[1:]
                elif piece.startswith("#d"):
                    dep_id = int(piece[2:])
                else:
                    cleaned.append(piece.rstrip(","))
        args = tuple(self._operand(token) for token in cleaned)

        dest_reg = None
        if dest is not None:
            # Infer the destination type from the opcode and operands.
            match = _REG_RE.match(dest)
            if not match:
                raise IRParseError(f"bad destination {dest!r}")
            uid = int(match.group(2) or match.group(3))
            name = match.group(1) or ""
            dest_type = _infer_dest_type(opcode, args, self.module, callee)
            self.reg_types[uid] = dest_type
            dest_reg = VReg(uid, dest_type, name)
            self.func._next_vreg = max(self.func._next_vreg, uid + 1)

        return Instruction(
            opcode,
            dest=dest_reg,
            args=args,
            targets=targets,
            callee=callee,
            dep_id=dep_id,
        )

    # Fix up `dest` captured before parsing the rest of the line.
    def parse_assignment_dest(self, text: str) -> str:
        return text


def _infer_dest_type(
    opcode: Opcode, args: Tuple[Operand, ...], module: Module, callee: Optional[str]
) -> Type:
    from repro.ir.operands import operand_type

    if opcode in (Opcode.LEA, Opcode.PTRADD):
        return Type.PTR
    if opcode is Opcode.ITOF:
        return Type.FLOAT
    if opcode is Opcode.FTOI:
        return Type.INT
    if opcode is Opcode.LOADG:
        sym = args[0]
        assert isinstance(sym, Symbol)
        return sym.elem_type
    if opcode is Opcode.LOADP:
        return Type.INT  # elem type is not recoverable from text
    if opcode is Opcode.CALL and callee and callee in module.functions:
        return module.functions[callee].return_type
    if opcode in (
        Opcode.EQ,
        Opcode.NE,
        Opcode.LT,
        Opcode.LE,
        Opcode.GT,
        Opcode.GE,
        Opcode.NOT,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.MOD,
    ):
        return Type.INT
    float_arg = any(
        operand_type(a) is Type.FLOAT for a in args
    )
    if float_arg:
        return Type.FLOAT
    ptr_arg = any(operand_type(a) is Type.PTR for a in args)
    if ptr_arg and opcode in (Opcode.MOV, Opcode.ADD, Opcode.SUB):
        return Type.PTR
    return Type.INT


def parse_module(text: str, verify: bool = True) -> Module:
    """Parse a printed module back into IR."""
    lines = [line.strip() for line in text.splitlines()]
    module: Optional[Module] = None
    parser: Optional[_FunctionParser] = None

    for raw in lines:
        if not raw:
            continue
        if raw.startswith("module "):
            module = Module(raw.split(None, 1)[1])
            continue
        if module is None:
            raise IRParseError("missing 'module' header")
        if raw.startswith("global "):
            match = _GLOBAL_RE.match(raw)
            if not match:
                raise IRParseError(f"bad global: {raw!r}")
            init = None
            if match.group(4):
                if match.group(5):
                    raise IRParseError(
                        "cannot parse truncated initializer (size > 8); "
                        "print with full precision first"
                    )
                init = eval(match.group(4), {"__builtins__": {}})  # noqa: S307
            module.add_global(
                match.group(2),
                _TYPE_NAMES[match.group(1)],
                int(match.group(3)),
                init=init,
            )
            continue
        func_match = _FUNC_RE.match(raw)
        if func_match:
            parser = _FunctionParser(module, func_match)
            continue
        if raw == "}":
            if parser is None:
                raise IRParseError("unmatched '}'")
            module.add_function(parser.func)
            parser = None
            continue
        if parser is None:
            raise IRParseError(f"unexpected line outside function: {raw!r}")
        parser.parse_line(raw)

    if module is None:
        raise IRParseError("empty input")
    if verify:
        from repro.ir.verify import verify_module

        verify_module(module)
    return module
