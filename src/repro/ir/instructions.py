"""The IR instruction set.

A single :class:`Instruction` class carries an :class:`Opcode`, an optional
destination register, a tuple of operands and a handful of opcode-specific
attributes.  This "flat" encoding (rather than a class hierarchy) keeps
cloning, scheduling and interpretation simple -- the HELIX passes reorder,
clone and splice instructions constantly.

Instruction summary (``dst`` is a VReg, ``a``/``b``/... operands)::

    MOV    dst, a              copy / materialize constant
    ADD/SUB/MUL/DIV/MOD dst, a, b     arithmetic (int or float by dst type)
    NEG    dst, a              arithmetic negation
    AND/OR/XOR/SHL/SHR dst, a, b      integer bitwise
    NOT    dst, a              logical not (int 0/1)
    EQ/NE/LT/LE/GT/GE  dst, a, b      comparisons, int 0/1 result
    ITOF   dst, a              int -> float
    FTOI   dst, a              float -> int (truncating)
    LEA    dst, sym, idx       dst = address of sym[idx]
    PTRADD dst, p, idx         dst = p + idx elements
    LOADG  dst, sym, idx       dst = sym[idx]          (direct)
    STOREG sym, idx, v         sym[idx] = v            (direct)
    LOADP  dst, p, off         dst = *(p + off)        (indirect)
    STOREP p, off, v           *(p + off) = v          (indirect)
    CALL   dst?, args...       direct call (attribute ``callee``)
    RET    [a]                 return
    BR                         jump (attribute ``targets=[label]``)
    CBR    cond                branch (attribute ``targets=[then, else]``)
    PRINT  a                   observable output (correctness oracle)
    WAIT                       HELIX: block until predecessor signals
    SIGNAL                     HELIX: signal dependence to successor thread
    NEXT_ITER                  HELIX: unblock the next iteration's thread
    XFER   sym, idx            HELIX: forwarded-data load/store marker
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.ir.operands import Operand, Symbol, VReg


class Opcode(enum.Enum):
    """Operation codes of the IR."""

    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NOT = "not"
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    ITOF = "itof"
    FTOI = "ftoi"
    LEA = "lea"
    PTRADD = "ptradd"
    LOADG = "loadg"
    STOREG = "storeg"
    LOADP = "loadp"
    STOREP = "storep"
    CALL = "call"
    RET = "ret"
    BR = "br"
    CBR = "cbr"
    PRINT = "print"
    WAIT = "wait"
    SIGNAL = "signal"
    NEXT_ITER = "next_iter"
    XFER = "xfer"


TERMINATOR_OPCODES = frozenset({Opcode.BR, Opcode.CBR, Opcode.RET})

COMPARE_OPCODES = frozenset(
    {Opcode.EQ, Opcode.NE, Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE}
)

COMMUTATIVE_OPCODES = frozenset(
    {Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.EQ, Opcode.NE}
)

#: Opcodes that read memory (pointer analysis / dependence analysis care).
MEMORY_READ_OPCODES = frozenset({Opcode.LOADG, Opcode.LOADP})

#: Opcodes that write memory.
MEMORY_WRITE_OPCODES = frozenset({Opcode.STOREG, Opcode.STOREP})

#: Opcodes whose effect is not captured by their destination register alone;
#: these anchor scheduling and must never be dead-code eliminated.
SIDE_EFFECT_OPCODES = frozenset(
    {
        Opcode.STOREG,
        Opcode.STOREP,
        Opcode.CALL,
        Opcode.RET,
        Opcode.BR,
        Opcode.CBR,
        Opcode.PRINT,
        Opcode.WAIT,
        Opcode.SIGNAL,
        Opcode.NEXT_ITER,
        Opcode.XFER,
    }
)

_instruction_uid_counter = itertools.count(1)


@dataclass
class Instruction:
    """One IR instruction.

    ``uid`` is unique per process and survives cloning-with-``replace`` only
    if explicitly overridden; the HELIX passes use uids to identify
    dependence endpoints stably across scheduling.
    """

    opcode: Opcode
    dest: Optional[VReg] = None
    args: Tuple[Operand, ...] = ()
    #: Branch targets (block names) for BR/CBR.
    targets: Tuple[str, ...] = ()
    #: Callee function name for CALL.
    callee: Optional[str] = None
    #: Dependence identifier for WAIT/SIGNAL (index into the loop's D_data).
    dep_id: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_instruction_uid_counter))

    def __post_init__(self) -> None:
        self.args = tuple(self.args)
        self.targets = tuple(self.targets)

    # -- structural queries -------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        """Whether this instruction ends a basic block."""
        return self.opcode in TERMINATOR_OPCODES

    @property
    def reads_memory(self) -> bool:
        """Whether this instruction loads from a memory region."""
        return self.opcode in MEMORY_READ_OPCODES

    @property
    def writes_memory(self) -> bool:
        """Whether this instruction stores to a memory region."""
        return self.opcode in MEMORY_WRITE_OPCODES

    @property
    def has_side_effects(self) -> bool:
        """Whether the instruction does more than define its dest register."""
        return self.opcode in SIDE_EFFECT_OPCODES

    @property
    def is_helix_op(self) -> bool:
        """Whether this is a HELIX-inserted synchronization pseudo-op."""
        return self.opcode in (Opcode.WAIT, Opcode.SIGNAL, Opcode.NEXT_ITER)

    def uses(self) -> Tuple[VReg, ...]:
        """Virtual registers read by this instruction."""
        return tuple(a for a in self.args if isinstance(a, VReg))

    def symbol_operand(self) -> Optional[Symbol]:
        """The Symbol operand of LEA/LOADG/STOREG/XFER, if any."""
        for a in self.args:
            if isinstance(a, Symbol):
                return a
        return None

    def clone(self, **overrides) -> "Instruction":
        """Copy this instruction with a fresh uid (unless overridden)."""
        if "uid" not in overrides:
            overrides["uid"] = next(_instruction_uid_counter)
        return replace(self, **overrides)

    def __str__(self) -> str:
        from repro.ir.printer import instruction_to_str

        return instruction_to_str(self)

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other
