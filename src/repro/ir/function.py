"""Functions: parameterized CFGs of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.operands import Symbol, VReg
from repro.ir.types import Type


class Function:
    """A function: name, parameters, local array symbols and a CFG.

    Blocks are kept in an ordered mapping; the first block is the entry.
    Virtual registers are allocated through :meth:`new_vreg` so uids stay
    unique within the function even across HELIX cloning passes.

    Every mutation of the function body must be visible in
    :attr:`version` -- that is the invalidation protocol of
    :class:`repro.analysis.manager.AnalysisManager`.  The block-level
    structural APIs (:meth:`new_block`, :meth:`add_block`,
    :meth:`remove_block`, :meth:`set_entry`) bump automatically; passes
    that splice instructions inside existing blocks call
    :meth:`bump_version` themselves.
    """

    def __init__(self, name: str, return_type: Type = Type.VOID) -> None:
        self.name = name
        self.return_type = return_type
        self.params: List[VReg] = []
        self.blocks: Dict[str, BasicBlock] = {}
        self.locals: Dict[str, Symbol] = {}
        self._next_vreg = 0
        self._next_block = 0
        #: Monotonic IR-mutation counter (analysis cache invalidation).
        self.version = 0
        #: Owning module, set by :meth:`repro.ir.module.Module.add_function`
        #: so function-level bumps propagate to the module version.
        self._module = None

    def bump_version(self) -> None:
        """Declare that the function body changed (invalidates analyses)."""
        self.version += 1
        if self._module is not None:
            self._module.bump_version()

    # -- registers and symbols ----------------------------------------------

    def new_vreg(self, type: Type, name: str = "") -> VReg:
        """Allocate a fresh virtual register of ``type``."""
        reg = VReg(self._next_vreg, type, name)
        self._next_vreg += 1
        return reg

    def add_param(self, type: Type, name: str) -> VReg:
        """Declare a parameter; parameters are ordinary registers."""
        reg = self.new_vreg(type, name)
        self.params.append(reg)
        return reg

    def add_local_array(self, name: str, elem_type: Type, size: int) -> Symbol:
        """Declare a frame-allocated array (private to each activation)."""
        if name in self.locals:
            raise ValueError(f"duplicate local array {name!r} in {self.name}")
        sym = Symbol(name, elem_type, size, function=self.name)
        self.locals[name] = sym
        self.bump_version()
        return sym

    # -- blocks ---------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        """The entry block (first block added)."""
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return next(iter(self.blocks.values()))

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create and register a uniquely named block."""
        name = f"{hint}{self._next_block}"
        self._next_block += 1
        while name in self.blocks:
            name = f"{hint}{self._next_block}"
            self._next_block += 1
        block = BasicBlock(name)
        self.blocks[name] = block
        self.bump_version()
        return block

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Register an externally created block under its own name."""
        if block.name in self.blocks:
            raise ValueError(f"duplicate block {block.name!r} in {self.name}")
        self.blocks[block.name] = block
        self.bump_version()
        return block

    def remove_block(self, name: str) -> None:
        """Remove a block by name (callers must fix dangling branches)."""
        del self.blocks[name]
        self.bump_version()

    def block_order(self) -> List[BasicBlock]:
        """Blocks in insertion order (entry first)."""
        return list(self.blocks.values())

    def set_entry(self, name: str) -> None:
        """Reorder blocks so ``name`` becomes the entry."""
        if name not in self.blocks:
            raise KeyError(name)
        reordered = {name: self.blocks[name]}
        for block_name, block in self.blocks.items():
            if block_name != name:
                reordered[block_name] = block
        self.blocks = reordered
        self.bump_version()

    # -- edges ----------------------------------------------------------------

    def successors(self, block: BasicBlock) -> Tuple[BasicBlock, ...]:
        """Successor blocks of ``block``."""
        return tuple(self.blocks[n] for n in block.successor_names())

    def predecessor_map(self) -> Dict[str, List[str]]:
        """Map block name -> predecessor block names (recomputed)."""
        preds: Dict[str, List[str]] = {name: [] for name in self.blocks}
        for block in self.blocks.values():
            for succ in block.successor_names():
                preds[succ].append(block.name)
        return preds

    # -- traversal --------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks.values():
            yield from block.instructions

    def find_block_of(self, instr: Instruction) -> Optional[BasicBlock]:
        """Locate the block containing ``instr`` (identity match)."""
        for block in self.blocks.values():
            for existing in block.instructions:
                if existing is instr:
                    return block
        return None

    def instruction_count(self) -> int:
        """Total number of instructions."""
        return sum(len(b) for b in self.blocks.values())

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


def clone_function(func: Function, new_name: Optional[str] = None) -> Function:
    """Deep-copy ``func`` (fresh Instruction uids, same VReg identities).

    Registers are value-objects (frozen dataclasses) so they are shared;
    instructions and blocks are new objects, making the clone safe to
    transform independently -- the HELIX loop-selection pass evaluates
    candidate loops on clones.
    """
    clone = Function(new_name or func.name, func.return_type)
    clone.params = list(func.params)
    clone.locals = dict(func.locals)
    clone._next_vreg = func._next_vreg
    clone._next_block = func._next_block
    for name, block in func.blocks.items():
        new_block = BasicBlock(name)
        new_block.instructions = [instr.clone() for instr in block.instructions]
        clone.blocks[name] = new_block
    return clone
