"""Textual dump of the IR (for debugging, docs and golden tests)."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module


def instruction_to_str(instr: Instruction) -> str:
    """One-line rendering of an instruction."""
    parts = [instr.opcode.value]
    if instr.callee is not None:
        parts.append(f"@{instr.callee}")
    if instr.dep_id is not None:
        parts.append(f"#d{instr.dep_id}")
    operands = ", ".join(str(a) for a in instr.args)
    if operands:
        parts.append(operands)
    if instr.targets:
        parts.append("-> " + ", ".join(instr.targets))
    text = " ".join(parts)
    if instr.dest is not None:
        return f"{instr.dest} = {text}"
    return text


def function_to_str(func: Function) -> str:
    """Multi-line rendering of a function."""
    params = ", ".join(f"{p.type.value} {p}" for p in func.params)
    lines = [f"func {func.return_type.value} {func.name}({params}) {{"]
    for sym in func.locals.values():
        lines.append(f"  local {sym.elem_type.value} {sym}[{sym.size}]")
    for block in func.blocks.values():
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            lines.append(f"  {instruction_to_str(instr)}")
    lines.append("}")
    return "\n".join(lines)


def module_to_str(module: Module) -> str:
    """Multi-line rendering of a whole module."""
    lines = [f"module {module.name}"]
    for name, sym in module.globals.items():
        init = module.global_inits.get(name, [])
        nonzero = [v for v in init if v]
        suffix = f" = {init[:8]}..." if nonzero and sym.size > 8 else (
            f" = {init}" if nonzero else ""
        )
        lines.append(f"global {sym.elem_type.value} @{name}[{sym.size}]{suffix}")
    for func in module.functions.values():
        lines.append("")
        lines.append(function_to_str(func))
    return "\n".join(lines)
