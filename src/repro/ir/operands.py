"""Operand kinds: virtual registers, constants and memory symbols."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.ir.types import Type


@dataclass(frozen=True)
class VReg:
    """A virtual register.

    Registers are function-local and unlimited in number.  HELIX relies on
    the fact that registers (and the call stack) are private to each loop
    iteration's thread, so *false* (WAW/WAR) dependences through them never
    need synchronization (paper, Step 2).

    ``uid`` is unique within a function; ``name`` is a human-readable hint
    carried from the frontend (empty for compiler temporaries).
    """

    uid: int
    type: Type
    name: str = ""

    def __str__(self) -> str:
        if self.name:
            return f"%{self.name}.{self.uid}"
        return f"%t{self.uid}"


@dataclass(frozen=True)
class Const:
    """An immediate constant operand."""

    value: Union[int, float]
    type: Type

    def __post_init__(self) -> None:
        if self.type is Type.INT and not isinstance(self.value, int):
            raise TypeError(f"INT constant with non-int value {self.value!r}")
        if self.type is Type.FLOAT and not isinstance(self.value, (int, float)):
            raise TypeError(f"FLOAT constant with non-numeric value {self.value!r}")

    @staticmethod
    def int(value: int) -> "Const":
        """Shorthand for an integer immediate."""
        return Const(value, Type.INT)

    @staticmethod
    def float(value: float) -> "Const":
        """Shorthand for a floating-point immediate."""
        return Const(float(value), Type.FLOAT)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Symbol:
    """A named memory region: a global variable/array or a local array.

    Scalars are modelled as arrays of length one.  ``function`` is ``None``
    for globals and the owning function's name for frame-allocated arrays.
    Symbols are the abstract locations of the pointer analysis
    (:mod:`repro.analysis.pointer`).
    """

    name: str
    elem_type: Type
    size: int
    function: Union[str, None] = None
    #: Created by the HELIX transformation (thread memory buffers, boundary
    #: live-variable slots).  Excluded from user-visible memory dumps.
    synthetic: bool = field(default=False, compare=False)

    @property
    def is_global(self) -> bool:
        """Whether this symbol lives in global (shared) memory."""
        return self.function is None

    @property
    def size_bytes(self) -> int:
        """Total storage footprint of the region in bytes."""
        return self.size * self.elem_type.size_bytes

    def __str__(self) -> str:
        prefix = "@" if self.is_global else "$"
        return f"{prefix}{self.name}"


Operand = Union[VReg, Const, Symbol]


def operand_type(op: Operand) -> Type:
    """Return the value type of any operand (symbols evaluate to PTR)."""
    if isinstance(op, Symbol):
        return Type.PTR
    return op.type
