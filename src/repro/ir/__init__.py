"""Intermediate representation for the HELIX reproduction.

A register-based, non-SSA three-address IR with an explicit control-flow
graph.  It plays the role of ILDJIT's CIL-derived IR in the original system:
every HELIX analysis and transformation in :mod:`repro.core` operates on this
representation.

Public surface:

* :class:`~repro.ir.types.Type` -- the small scalar type system.
* :class:`~repro.ir.operands.VReg`, :class:`~repro.ir.operands.Const`,
  :class:`~repro.ir.operands.Symbol` -- operand kinds.
* :class:`~repro.ir.instructions.Opcode`,
  :class:`~repro.ir.instructions.Instruction` -- the instruction set.
* :class:`~repro.ir.basicblock.BasicBlock`,
  :class:`~repro.ir.function.Function`, :class:`~repro.ir.module.Module`.
* :class:`~repro.ir.builder.IRBuilder` -- convenience construction API.
* :func:`~repro.ir.printer.module_to_str` -- textual dump.
* :func:`~repro.ir.verify.verify_module` -- structural verifier.
"""

from repro.ir.types import Type
from repro.ir.operands import Const, Operand, Symbol, VReg
from repro.ir.instructions import (
    COMMUTATIVE_OPCODES,
    COMPARE_OPCODES,
    MEMORY_READ_OPCODES,
    MEMORY_WRITE_OPCODES,
    SIDE_EFFECT_OPCODES,
    TERMINATOR_OPCODES,
    Instruction,
    Opcode,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.parser import IRParseError, parse_module
from repro.ir.printer import function_to_str, instruction_to_str, module_to_str
from repro.ir.verify import IRVerificationError, verify_function, verify_module

__all__ = [
    "Type",
    "Operand",
    "VReg",
    "Const",
    "Symbol",
    "Opcode",
    "Instruction",
    "TERMINATOR_OPCODES",
    "COMPARE_OPCODES",
    "COMMUTATIVE_OPCODES",
    "MEMORY_READ_OPCODES",
    "MEMORY_WRITE_OPCODES",
    "SIDE_EFFECT_OPCODES",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "module_to_str",
    "parse_module",
    "IRParseError",
    "function_to_str",
    "instruction_to_str",
    "verify_module",
    "verify_function",
    "IRVerificationError",
]
