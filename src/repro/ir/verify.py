"""Structural verifier for the IR.

Run after the frontend and after every HELIX transformation step in tests:
catching a malformed CFG at the step that produced it is far cheaper than
debugging a misbehaving simulation.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.module import Module
from repro.ir.operands import Const, Symbol, VReg
from repro.ir.types import Type


class IRVerificationError(Exception):
    """Raised when a module or function violates a structural invariant."""


_ARITY = {
    Opcode.MOV: 1,
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.DIV: 2,
    Opcode.MOD: 2,
    Opcode.NEG: 1,
    Opcode.AND: 2,
    Opcode.OR: 2,
    Opcode.XOR: 2,
    Opcode.SHL: 2,
    Opcode.SHR: 2,
    Opcode.NOT: 1,
    Opcode.EQ: 2,
    Opcode.NE: 2,
    Opcode.LT: 2,
    Opcode.LE: 2,
    Opcode.GT: 2,
    Opcode.GE: 2,
    Opcode.ITOF: 1,
    Opcode.FTOI: 1,
    Opcode.LEA: 2,
    Opcode.PTRADD: 2,
    Opcode.LOADG: 2,
    Opcode.STOREG: 3,
    Opcode.LOADP: 2,
    Opcode.STOREP: 3,
    Opcode.BR: 0,
    Opcode.CBR: 1,
    Opcode.PRINT: 1,
    Opcode.WAIT: 0,
    Opcode.SIGNAL: 0,
    Opcode.NEXT_ITER: 0,
    Opcode.XFER: 2,
}

_NEEDS_DEST = frozenset(
    {
        Opcode.MOV,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.NEG,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.NOT,
        Opcode.EQ,
        Opcode.NE,
        Opcode.LT,
        Opcode.LE,
        Opcode.GT,
        Opcode.GE,
        Opcode.ITOF,
        Opcode.FTOI,
        Opcode.LEA,
        Opcode.PTRADD,
        Opcode.LOADG,
        Opcode.LOADP,
    }
)

_TARGET_COUNT = {Opcode.BR: 1, Opcode.CBR: 2}


def verify_function(func: Function, module: Module) -> List[str]:
    """Return a list of violations found in ``func`` (empty if clean)."""
    errors: List[str] = []

    def err(msg: str) -> None:
        errors.append(f"{func.name}: {msg}")

    if not func.blocks:
        err("has no blocks")
        return errors

    for block in func.blocks.values():
        if not block.is_terminated:
            err(f"block {block.name} lacks a terminator")
        for i, instr in enumerate(block.instructions):
            where = f"{block.name}[{i}] {instr.opcode.value}"
            if instr.is_terminator and i != len(block.instructions) - 1:
                err(f"{where}: terminator not at block end")
            expected = _ARITY.get(instr.opcode)
            if instr.opcode is Opcode.CALL:
                if instr.callee is None:
                    err(f"{where}: CALL without callee")
                elif instr.callee not in module.functions:
                    err(f"{where}: CALL to unknown function {instr.callee!r}")
                else:
                    callee = module.functions[instr.callee]
                    if len(instr.args) != len(callee.params):
                        err(
                            f"{where}: CALL arity {len(instr.args)} != "
                            f"{len(callee.params)} params of {instr.callee}"
                        )
            elif instr.opcode is Opcode.RET:
                want = 0 if func.return_type is Type.VOID else 1
                if len(instr.args) != want:
                    err(f"{where}: RET arity {len(instr.args)}, expected {want}")
            elif expected is not None and len(instr.args) != expected:
                err(f"{where}: arity {len(instr.args)}, expected {expected}")
            if instr.opcode in _NEEDS_DEST and instr.dest is None:
                err(f"{where}: missing destination register")
            if instr.opcode in (Opcode.WAIT, Opcode.SIGNAL) and instr.dep_id is None:
                err(f"{where}: {instr.opcode.value} without dep_id")
            want_targets = _TARGET_COUNT.get(instr.opcode)
            if want_targets is not None:
                if len(instr.targets) != want_targets:
                    err(f"{where}: {len(instr.targets)} targets, expected {want_targets}")
                for target in instr.targets:
                    if target not in func.blocks:
                        err(f"{where}: branch to unknown block {target!r}")
            for arg in instr.args:
                if isinstance(arg, Symbol):
                    known = (
                        arg.name in module.globals
                        and module.globals[arg.name] == arg
                    ) or (
                        arg.function is not None
                        and arg.name in func.locals
                    )
                    if not known:
                        err(f"{where}: reference to unknown symbol {arg}")
                elif not isinstance(arg, (VReg, Const)):
                    err(f"{where}: bad operand {arg!r}")
    return errors


def verify_module(module: Module) -> None:
    """Raise :class:`IRVerificationError` if any function is malformed."""
    errors: List[str] = []
    for func in module.functions.values():
        errors.extend(verify_function(func, module))
    if errors:
        raise IRVerificationError("\n".join(errors))
