"""Modules: whole programs (functions + global memory)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.ir.function import Function, clone_function
from repro.ir.operands import Symbol
from repro.ir.types import Type


class Module:
    """A whole program: global symbols with initializers plus functions.

    ``main`` is the conventional entry point used by the interpreter and
    the profiler.
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, Symbol] = {}
        self.global_inits: Dict[str, List[Union[int, float]]] = {}
        #: Monotonic IR-mutation counter: bumped by module-level edits and
        #: by :meth:`Function.bump_version` of any registered function, so
        #: it is a complete proxy for "anything in the program changed"
        #: (the :class:`repro.analysis.manager.AnalysisManager` protocol).
        self.version = 0

    def bump_version(self) -> None:
        """Declare that the program changed (invalidates module analyses)."""
        self.version += 1

    # -- globals -----------------------------------------------------------

    def add_global(
        self,
        name: str,
        elem_type: Type,
        size: int = 1,
        init: Optional[Sequence[Union[int, float]]] = None,
        synthetic: bool = False,
    ) -> Symbol:
        """Declare a global array (scalars are size-1 arrays)."""
        if name in self.globals:
            raise ValueError(f"duplicate global {name!r}")
        sym = Symbol(name, elem_type, size, function=None, synthetic=synthetic)
        self.globals[name] = sym
        zero: Union[int, float] = 0 if elem_type is Type.INT else 0.0
        values = list(init) if init is not None else []
        if len(values) > size:
            raise ValueError(f"initializer longer than {name!r} ({size})")
        values.extend([zero] * (size - len(values)))
        self.global_inits[name] = values
        self.bump_version()
        return sym

    # -- functions -----------------------------------------------------------

    def add_function(self, func: Function) -> Function:
        """Register ``func`` under its own name."""
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        func._module = self
        self.bump_version()
        return func

    @property
    def main(self) -> Function:
        """The program entry point."""
        try:
            return self.functions["main"]
        except KeyError:
            raise KeyError(f"module {self.name!r} has no 'main' function") from None

    def instruction_count(self) -> int:
        """Total instructions across all functions."""
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self) -> str:
        return (
            f"<Module {self.name} ({len(self.functions)} functions, "
            f"{len(self.globals)} globals)>"
        )


def clone_module(module: Module) -> Module:
    """Deep-copy a module (see :func:`repro.ir.function.clone_function`)."""
    clone = Module(module.name)
    clone.globals = dict(module.globals)
    clone.global_inits = {k: list(v) for k, v in module.global_inits.items()}
    for name, func in module.functions.items():
        new_func = clone_function(func)
        new_func._module = clone
        clone.functions[name] = new_func
    return clone
