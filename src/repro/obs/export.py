"""Chrome trace-event JSON export and validation.

Produces the JSON Array-of-objects trace format understood by Perfetto
(https://ui.perfetto.dev) and Chrome's ``about:tracing``:

* ``"ph": "X"`` *complete* events carry one span each (``ts``/``dur`` in
  microseconds, ``pid``/``tid`` selecting the track).
* ``"ph": "M"`` *metadata* events name the process and thread tracks
  (``process_name`` / ``thread_name``), emitted once per (pid, tid) pair
  seen in the span set.
* ``"ph": "C"`` *counter* events (used by the simulated timeline) plot
  numeric series over trace time.

:func:`validate_chrome_trace` is the schema check shared by the test
suite and the CI trace-smoke job; it returns a list of human-readable
problems (empty means the payload is loadable).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.tracer import SpanEvent

_PHASES = {"X", "M", "C", "i", "I", "B", "E"}


def _metadata_events(
    spans: Sequence[SpanEvent],
    process_names: Optional[Mapping[int, str]] = None,
    thread_names: Optional[Mapping[Tuple[int, int], str]] = None,
) -> List[dict]:
    process_names = dict(process_names or {})
    thread_names = dict(thread_names or {})
    events: List[dict] = []
    seen_pids: set = set()
    seen_tids: set = set()
    for span in spans:
        if span.pid not in seen_pids:
            seen_pids.add(span.pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": 0,
                    "args": {"name": process_names.get(span.pid, f"pid {span.pid}")},
                }
            )
        key = (span.pid, span.tid)
        if key not in seen_tids:
            seen_tids.add(key)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": {"name": thread_names.get(key, f"tid {span.tid}")},
                }
            )
    return events


def chrome_trace(
    spans: Sequence[SpanEvent],
    registry_snapshot: Optional[Mapping[str, Any]] = None,
    extra_events: Iterable[dict] = (),
    process_names: Optional[Mapping[int, str]] = None,
    thread_names: Optional[Mapping[Tuple[int, int], str]] = None,
) -> Dict[str, Any]:
    """Build the Chrome trace payload for ``spans``.

    Timestamps are rebased so the earliest span starts at ts=0 (Perfetto
    shows absolute perf_counter values as a huge offset otherwise).
    ``extra_events`` are appended verbatim after the span events --
    the simulated-time timeline exporter uses this for its own tracks --
    and are not rebased.  ``registry_snapshot`` lands in ``otherData``.
    """
    base = min((s.start_us for s in spans), default=0.0)
    events: List[dict] = _metadata_events(spans, process_names, thread_names)
    for span in spans:
        event = {
            "name": span.name,
            "cat": span.cat or "default",
            "ph": "X",
            "ts": span.start_us - base,
            "dur": span.dur_us,
            "pid": span.pid,
            "tid": span.tid,
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    events.extend(extra_events)
    payload: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if registry_snapshot is not None:
        payload["otherData"] = {"metrics": dict(registry_snapshot)}
    return payload


def write_chrome_trace(
    path: str,
    spans: Sequence[SpanEvent],
    registry_snapshot: Optional[Mapping[str, Any]] = None,
    extra_events: Iterable[dict] = (),
    process_names: Optional[Mapping[int, str]] = None,
    thread_names: Optional[Mapping[Tuple[int, int], str]] = None,
) -> Dict[str, Any]:
    """Write :func:`chrome_trace` output to ``path``; returns the payload."""
    payload = chrome_trace(
        spans,
        registry_snapshot=registry_snapshot,
        extra_events=extra_events,
        process_names=process_names,
        thread_names=thread_names,
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    return payload


def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema-check a trace payload; returns a list of problems.

    Accepts either the object form (``{"traceEvents": [...]}``) or the
    bare JSON-array form.  An empty return value means every event has
    the fields Perfetto needs to place it on a track.
    """
    problems: List[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["traceEvents missing or not a list"]
    elif isinstance(payload, list):
        events = payload
    else:
        return ["payload is neither an object with traceEvents nor a list"]

    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} missing or not an int")
        if ph in ("X", "C", "i", "I", "B", "E"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: ts missing or not numeric")
            elif ts < 0:
                problems.append(f"{where}: negative ts {ts}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: dur missing or not numeric")
            elif dur < 0:
                problems.append(f"{where}: negative dur {dur}")
        if ph == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: counter event without args")
    return problems
