"""Simulated-time per-core schedule timelines.

Where :mod:`repro.obs.tracer` records *wall-clock* spans of the pipeline
itself, this module exports the *simulated* schedule of a parallel run:
one Perfetto track per core of the modelled CMP, showing exactly where
every cycle of every invocation went -- compute segments, wait stalls,
iteration-start signal latency, data-transfer slots, thread
configuration and wind-down collection.  This makes the paper's
per-segment overhead attribution (HELIX Table 2 / Figures 8-9) directly
visible per machine configuration.

The walk re-derives the placement from the compiled
:class:`~repro.runtime.trace.TraceProgram` with the same model as
:func:`~repro.runtime.sched.schedule_compact` (general path only; the
scheduler's fast paths are timing-equivalent shortcuts).  The segment
totals therefore match the :class:`~repro.runtime.sched.ScheduleResult`
aggregates *exactly* -- ``tests/test_timeline.py`` asserts this on the
full sched-differential machine grid, together with per-core
non-overlap and the ``parallel_cycles * cores`` accounting.

Timestamps are simulated cycles exported as trace microseconds, so
Perfetto's time axis reads directly in kilocycles/megacycles.

This module depends on the runtime layer and is deliberately *not*
re-exported from :mod:`repro.obs` (which the runtime itself imports);
import it explicitly as ``repro.obs.timeline``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.loopinfo import ParallelizedLoop
from repro.runtime.machine import MachineConfig, PrefetchMode
from repro.runtime.parallel import ParallelExecutor
from repro.runtime.trace import (
    CTRL_DEP,
    OP_SIGNAL,
    OP_WAIT,
    OP_WAIT_SYNC,
    OP_XFER,
    CompactInvocationTrace,
)

#: Segment categories, in display order.  ``config``/``collect`` are the
#: per-invocation thread setup and wind-down costs, ``sequential`` is
#: main-thread execution outside parallelized loops, and the remaining
#: four are the :meth:`ScheduleResult.overhead_breakdown` buckets.
CATEGORIES = (
    "sequential",
    "config",
    "compute",
    "stall",
    "signal",
    "transfer",
    "collect",
)


@dataclass
class Segment:
    """One contiguous occupation of one core, in simulated cycles."""

    core: int
    category: str
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start


def invocation_segments(
    trace: CompactInvocationTrace,
    loop: ParallelizedLoop,
    machine: MachineConfig,
) -> List[Segment]:
    """Per-core segments of one invocation, in invocation-local time.

    Time zero is the start of thread configuration; the last segment
    ends at ``ScheduleResult.parallel_cycles``.  Zero-iteration
    invocations yield no segments (the caller shows their sequential
    span on the main core).
    """
    prog = trace.program
    n = len(prog.spans)
    segments: List[Segment] = []
    if n == 0:
        return segments

    cores = machine.cores
    latency = machine.signal_latency
    fast = machine.prefetched_signal_latency
    mode = machine.effective_prefetch_mode
    transfer = machine.word_transfer_cycles
    counted = loop.counted
    conf = machine.config_cycles_per_thread * max(cores - 1, 1)
    wind_down = latency + cores - 1
    barrier = 0 if machine.total_store_ordering else machine.barrier_cycles

    if conf:
        for core in range(cores):
            segments.append(Segment(core, "config", 0, conf))

    mode_none = mode is PrefetchMode.NONE
    mode_ideal = mode is PrefetchMode.IDEAL
    helix = mode is PrefetchMode.HELIX
    do_helper = helix or mode is PrefetchMode.MATCHED
    helix_agenda: Tuple[int, ...] = ()
    ctrl_helix_agenda: Tuple[int, ...] = ()
    if helix:
        helix_agenda = tuple(loop.helper_order)
        ctrl_helix_agenda = (CTRL_DEP,) + helix_agenda

    op_, a1_, a2_, at_ = prog.op, prog.a1, prog.a2, prog.at
    pre_, off, tail = prog.pre, prog.off, prog.tail
    it_start, it_end = trace.it_start, trace.it_end
    slots = [0] * prog.slot_count
    core_free = [conf] * cores
    helper_free = [0] * cores
    prev_sig: Dict[int, int] = {}
    prev_next: Optional[int] = None
    max_end = 0

    for i in range(n):
        core = i % cores

        pf: Optional[Dict[int, int]] = None
        if do_helper and i > 0:
            pf = {}
            if counted:
                agenda = helix_agenda if helix else prog.agendas[i]
            else:
                agenda = (
                    ctrl_helix_agenda
                    if helix
                    else (CTRL_DEP,) + prog.agendas[i]
                )
            cursor = helper_free[core]
            for dep in agenda:
                if dep in pf:
                    continue
                ts = prev_next if dep == CTRL_DEP else prev_sig.get(dep)
                if ts is None:
                    continue
                cursor = (cursor if cursor > ts else ts) + latency
                pf[dep] = cursor
            helper_free[core] = cursor

        t = core_free[core]
        if i > 0 and not counted:
            assert prev_next is not None, "iteration without start signal"
            ts = prev_next
            started = t
            if mode_none:
                t = (t if t > ts else ts) + latency
            elif mode_ideal:
                t = (t if t > ts else ts) + fast
            else:
                pull = (t if t > ts else ts) + latency
                done = pf.get(CTRL_DEP) if pf is not None else None
                if done is None:
                    t = pull
                else:
                    alt = t + fast
                    if done > alt:
                        alt = done
                    t = pull if pull < alt else alt
            if t > started:
                segments.append(Segment(core, "signal", started, t))

        cur_sig: Dict[int, int] = {}
        cur_next: Optional[int] = None
        pos = t
        last = it_start[i]

        for j in range(off[i], off[i + 1]):
            t += at_[j] - last
            last = at_[j]
            if barrier:
                t += pre_[j] * barrier
            o = op_[j]
            if o == OP_WAIT_SYNC:
                t += barrier
                ts = prev_sig[a1_[j]]
                if mode_none:
                    arrival = (t if t > ts else ts) + latency
                elif mode_ideal:
                    arrival = (t if t > ts else ts) + fast
                else:
                    pull = (t if t > ts else ts) + latency
                    done = pf.get(a1_[j]) if pf is not None else None
                    if done is None:
                        arrival = pull
                    else:
                        alt = t + fast
                        if done > alt:
                            alt = done
                        arrival = pull if pull < alt else alt
                if arrival > t:
                    if t > pos:
                        segments.append(Segment(core, "compute", pos, t))
                    segments.append(Segment(core, "stall", t, arrival))
                    t = arrival
                    pos = t
                slots[a2_[j]] = t
            elif o == OP_WAIT:
                t += barrier
                slots[a2_[j]] = t
            elif o == OP_SIGNAL:
                t += barrier
                cur_sig[a1_[j]] = t
            elif o == OP_XFER:
                cost = a1_[j] * transfer
                if cost:
                    if t > pos:
                        segments.append(Segment(core, "compute", pos, t))
                    segments.append(Segment(core, "transfer", t, t + cost))
                    t += cost
                    pos = t
            else:  # OP_NEXT
                cur_next = t

        t += it_end[i] - last
        if barrier:
            t += tail[i] * barrier
        if t > pos:
            segments.append(Segment(core, "compute", pos, t))
        core_free[core] = t
        if t > max_end:
            max_end = t
        prev_sig = cur_sig
        prev_next = cur_next

    # Main thread collects the exit variable and stops parallel threads.
    if wind_down:
        segments.append(Segment(0, "collect", max_end, max_end + wind_down))
    return segments


def run_timeline(
    executor: ParallelExecutor,
    machine: Optional[MachineConfig] = None,
) -> List[Segment]:
    """The whole run's per-core segments, in absolute simulated cycles.

    ``machine`` replays the recorded traces under a different
    configuration (like :meth:`ParallelExecutor.replay`); gaps between
    invocations are the main thread's sequential execution, whose length
    is machine-independent, so they are carried over from the recorded
    (executed-machine) timeline.
    """
    if machine is None:
        machine = executor.machine
    exec_col = executor.schedules()
    replay_col = executor.schedules(machine)
    info_by_id = {info.loop_id: info for info in executor.infos}

    segments: List[Segment] = []
    cursor = 0
    exec_end = 0  # end of the previous invocation in *executed* time
    for trace, exec_sched, replay_sched in zip(
        executor.traces, exec_col, replay_col
    ):
        gap = trace.start_cycles - exec_end
        if gap:
            segments.append(Segment(0, "sequential", cursor, cursor + gap))
        base = cursor + gap
        if trace.iteration_count == 0:
            # The loop body never ran; the invocation is its sequential
            # span on the main core.
            if replay_sched.parallel_cycles:
                segments.append(
                    Segment(
                        0,
                        "sequential",
                        base,
                        base + replay_sched.parallel_cycles,
                    )
                )
        else:
            for seg in invocation_segments(
                trace, info_by_id[trace.loop_id], machine
            ):
                segments.append(
                    Segment(
                        seg.core,
                        seg.category,
                        base + seg.start,
                        base + seg.end,
                    )
                )
        cursor = base + replay_sched.parallel_cycles
        exec_end = trace.start_cycles + exec_sched.parallel_cycles

    tail = executor.cycles - exec_end
    if tail:
        segments.append(Segment(0, "sequential", cursor, cursor + tail))
    return segments


def core_totals(
    segments: List[Segment], cores: int
) -> List[Dict[str, int]]:
    """Per-core cycle totals by category (every category always keyed)."""
    totals = [{category: 0 for category in CATEGORIES} for _ in range(cores)]
    for seg in segments:
        totals[seg.core][seg.category] += seg.end - seg.start
    return totals


def timeline_block(
    executor: ParallelExecutor,
    machine: Optional[MachineConfig] = None,
) -> Dict[str, object]:
    """The JSON ``timeline`` block: per-core and total cycle buckets."""
    if machine is None:
        machine = executor.machine
    segments = run_timeline(executor, machine)
    per_core = core_totals(segments, machine.cores)
    return {
        "cores": machine.cores,
        "total_cycles": executor.cycles if machine is executor.machine
        else None,
        "per_core": [
            {"core": i, **per_core[i]} for i in range(machine.cores)
        ],
        "totals": {
            category: sum(c[category] for c in per_core)
            for category in CATEGORIES
        },
    }


def timeline_events(
    segments: List[Segment],
    machine: MachineConfig,
    pid: int = 0,
) -> List[dict]:
    """Chrome trace events for the simulated timeline.

    One thread track per core under a dedicated process; cycles map 1:1
    to trace microseconds.  Feed the result to
    :func:`repro.obs.export.chrome_trace` as ``extra_events`` (or export
    it alone).
    """
    label = (
        f"simulated CMP: {machine.cores} cores, "
        f"{machine.effective_prefetch_mode.name.lower()} prefetch"
    )
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for core in range(machine.cores):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": core,
                "args": {"name": f"core {core}"},
            }
        )
    for seg in segments:
        events.append(
            {
                "name": seg.category,
                "cat": "sim",
                "ph": "X",
                "ts": seg.start,
                "dur": seg.end - seg.start,
                "pid": pid,
                "tid": seg.core,
            }
        )
    return events
