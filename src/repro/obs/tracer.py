"""Span tracer: nestable wall-clock spans with a free null fallback.

Instrumentation sites write::

    from repro.obs import get_tracer

    with get_tracer().span("stage.compile", cat="stage", bench=name) as sp:
        ...
        sp.set(outcome="disk")

and pay nothing measurable when tracing is off: :func:`get_tracer`
returns the shared :data:`NULL_TRACER` whose ``span`` hands back one
reusable no-op context manager (no allocation, no clock read).  The
``bench-sched`` harness guards this with a measured per-span budget and
the hot loops (decoded interpreter, ``schedule_compact``) carry no
tracer calls at all -- enforced structurally by ``tests/test_obs.py``.

A recording :class:`Tracer` stamps spans with a monotonic clock
(``time.perf_counter``), the recording process id and thread id, so
spans merged from several processes (the parallel suite runner) keep
distinct Perfetto tracks.  Spans nest by timing alone: Chrome's trace
viewer reconstructs the stack from containment within one ``(pid,
tid)`` track, which is exactly how the events are recorded.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

#: Typed span argument values (anything JSON-stable).
ArgValue = Any


@dataclass
class SpanEvent:
    """One finished span: a ``name`` over ``[start_us, start_us+dur_us]``."""

    name: str
    cat: str
    start_us: float
    dur_us: float
    pid: int
    tid: int
    args: Dict[str, ArgValue] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-stable form (the cross-process wire format)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "start_us": self.start_us,
            "dur_us": self.dur_us,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanEvent":
        return cls(
            name=data["name"],
            cat=data.get("cat", ""),
            start_us=data["start_us"],
            dur_us=data["dur_us"],
            pid=data["pid"],
            tid=data["tid"],
            args=dict(data.get("args", {})),
        )


class _NullSpan:
    """The reusable do-nothing span of the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **args: ArgValue) -> None:
        """Ignore span args (null tracer)."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every operation is a no-op.

    Shared singleton (:data:`NULL_TRACER`); instrumentation sites only
    ever touch ``span``/``instant``/``enabled`` so this class keeps the
    exact surface of :class:`Tracer` that call sites use.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, cat: str = "", **args: ArgValue) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "", **args: ArgValue) -> None:
        pass

    def finished(self) -> List[SpanEvent]:
        return []


NULL_TRACER = NullTracer()


class _Span:
    """An open span; records itself on the tracer at ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, cat: str, args: Dict[str, ArgValue]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0

    def set(self, **args: ArgValue) -> None:
        """Attach or update typed args on the open span."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        tracer.events.append(
            SpanEvent(
                name=self.name,
                cat=self.cat,
                start_us=self._start * 1e6,
                dur_us=(end - self._start) * 1e6,
                pid=tracer.pid,
                tid=tracer._tid(),
                args=self.args,
            )
        )
        return False


class Tracer:
    """Recording tracer: spans, instants, and cross-process absorption.

    ``clock`` (seconds, monotonic) and ``pid``/``tid`` are injectable so
    tests can produce byte-stable golden traces; defaults record real
    wall-clock under the real process/thread ids.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> None:
        self._clock = clock
        self.pid = os.getpid() if pid is None else pid
        self._fixed_tid = tid
        self.events: List[SpanEvent] = []

    def _tid(self) -> int:
        if self._fixed_tid is not None:
            return self._fixed_tid
        return threading.get_ident()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "", **args: ArgValue) -> _Span:
        """A context manager timing one named region."""
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "", **args: ArgValue) -> None:
        """A zero-duration marker event."""
        now = self._clock() * 1e6
        self.events.append(
            SpanEvent(
                name=name,
                cat=cat,
                start_us=now,
                dur_us=0.0,
                pid=self.pid,
                tid=self._tid(),
                args=dict(args),
            )
        )

    # -- access ------------------------------------------------------------

    def finished(self) -> List[SpanEvent]:
        """All recorded events (closed spans and instants), in order."""
        return list(self.events)

    def absorb(self, events: Sequence[dict]) -> int:
        """Merge serialized events recorded by another process.

        Events keep their original pid/tid, so a merged export shows one
        Perfetto process track per worker.  Returns the absorbed count.
        """
        for data in events:
            self.events.append(SpanEvent.from_dict(data))
        return len(events)


# -- the process-wide tracer ------------------------------------------------

_tracer: Any = NULL_TRACER


def get_tracer() -> Any:
    """The process-wide tracer (the null tracer unless one is set)."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Any:
    """Install ``tracer`` process-wide; ``None`` restores the null tracer.

    Returns the installed tracer.
    """
    global _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return _tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope a recording tracer: install on entry, restore on exit."""
    previous = _tracer
    installed = set_tracer(tracer or Tracer())
    try:
        yield installed
    finally:
        set_tracer(previous if previous is not NULL_TRACER else None)


def traced(
    name: Optional[str] = None, cat: str = ""
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator form: span the wrapped call under the current tracer.

    The tracer is resolved per call, so functions decorated at import
    time still record once tracing is enabled -- and cost only the
    ``enabled`` check when it is not.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = _tracer
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(label, cat=cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
