"""Process-wide named counters and gauges.

One :class:`Registry` (the module-level :data:`REGISTRY`) absorbs the
pipeline's ad-hoc statistics behind a single namespace so a run can be
summarised with one snapshot:

* ``stage.<name>.{computes,memory_hits,disk_hits,seconds_ms}`` -- mirrored
  from :class:`repro.evaluation.runner.StageStats`.
* ``analysis.<name>.{hits,misses,invalidations}`` -- mirrored from
  :class:`repro.analysis.manager.AnalysisManager`.
* ``interp.backend.{tree,hooked,decoded,superblock}`` -- interpreter
  backend selections, counted once per ``run()``.
* ``interp.superblock.{formed,blocks_fused,fallbacks}`` -- superblock
  formation totals and per-instruction fallback activations from
  :mod:`repro.runtime.codegen` (a fallback means a budget could expire
  inside a fused region, so the region re-ran on the decoded tier).
* ``interp.codegen.{functions,specialized_ops}`` -- code-generated
  function bodies and the fused/specialized instruction count
  (compare+branch fusions, address+memory pairs, folded constants).
* ``evalcache.{hits,misses,stores}.<stage>`` -- disk cache traffic from
  :class:`repro.evaluation.cache.EvaluationCache`.

Stdlib-only on purpose: the runtime layer imports this module directly
(never :mod:`repro.obs`, whose exporter pulls in more machinery), so
there is no import cycle and no cost beyond a dict lookup + int add.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, delta: Number = 1) -> None:
        self.value += delta


class Gauge:
    """A named value that can be set to arbitrary levels."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Registry:
    """Named counters and gauges, creatable on first touch."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    # -- creation / access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def inc(self, name: str, delta: Number = 1) -> None:
        """Fast path: bump a counter by name."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        c.value += delta

    def set(self, name: str, value: Number) -> None:
        """Fast path: set a gauge by name."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        g.value = value

    # -- aggregate views ---------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """All current values, JSON-stable and sorted by name."""
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
        }

    def merge(self, snapshot: Mapping[str, Mapping[str, Number]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add (cross-process totals compose); gauges take the
        incoming value (last writer wins, matching single-process
        semantics where a later ``set`` replaces an earlier one).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set(name, value)

    def reset(self) -> None:
        """Drop every counter and gauge (test isolation)."""
        self._counters.clear()
        self._gauges.clear()

    def __iter__(self) -> Iterator[Tuple[str, Number]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value
        for name in sorted(self._gauges):
            yield name, self._gauges[name].value


def metrics_delta(
    before: Mapping[str, Mapping[str, Number]],
    after: Mapping[str, Mapping[str, Number]],
) -> Dict[str, Dict[str, Number]]:
    """Registry-snapshot difference ``after - before``.

    Counters subtract (so a reused worker process never double-reports
    counts from earlier work); gauges pass through at their latest
    value, matching :meth:`Registry.merge` semantics on the receiving
    side.  This is the ship-home format of every process-pool worker:
    the parent folds the returned delta into its own registry with
    :meth:`Registry.merge`.
    """
    counters: Dict[str, Number] = {}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        diff = value - before_counters.get(name, 0)
        if diff:
            counters[name] = diff
    return {"counters": counters, "gauges": dict(after.get("gauges", {}))}


#: The process-wide registry used by all instrumentation sites.
REGISTRY = Registry()
