"""Process-wide named counters and gauges.

One :class:`Registry` (the module-level :data:`REGISTRY`) absorbs the
pipeline's ad-hoc statistics behind a single namespace so a run can be
summarised with one snapshot:

* ``stage.<name>.{computes,memory_hits,disk_hits,seconds_ms}`` -- mirrored
  from :class:`repro.evaluation.runner.StageStats`.
* ``analysis.<name>.{hits,misses,invalidations}`` -- mirrored from
  :class:`repro.analysis.manager.AnalysisManager`.
* ``interp.backend.{tree,hooked,decoded,superblock}`` -- interpreter
  backend selections, counted once per ``run()``.
* ``interp.superblock.{formed,blocks_fused,fallbacks}`` -- superblock
  formation totals and per-instruction fallback activations from
  :mod:`repro.runtime.codegen` (a fallback means a budget could expire
  inside a fused region, so the region re-ran on the decoded tier).
* ``interp.codegen.{functions,specialized_ops}`` -- code-generated
  function bodies and the fused/specialized instruction count
  (compare+branch fusions, address+memory pairs, folded constants).
* ``evalcache.{hits,misses,stores}.<stage>`` -- disk cache traffic from
  :class:`repro.evaluation.cache.EvaluationCache`.

Stdlib-only on purpose: the runtime layer imports this module directly
(never :mod:`repro.obs`, whose exporter pulls in more machinery), so
there is no import cycle and no cost beyond a dict lookup + int add.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, delta: Number = 1) -> None:
        self.value += delta


class Gauge:
    """A named value that can be set to arbitrary levels."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Registry:
    """Named counters and gauges, creatable on first touch.

    A registry can be *scoped per thread*: :meth:`isolated` installs a
    fresh child registry for the calling thread, and every read/write
    made through this instance on that thread (``inc``/``set``/
    ``counter``/``gauge``/``snapshot``/``merge``) is routed to the
    child until the scope exits, at which point the child's totals are
    folded back into the parent.  This is how the service orchestrator
    gives every job attempt its own ``metrics_delta`` even though all
    instrumentation sites share one process-wide :data:`REGISTRY`:
    work done by *this thread* during the scope lands in the scope, so
    two worker threads never cross-contaminate each other's job deltas.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._local = threading.local()

    def _scope(self) -> Optional["Registry"]:
        return getattr(self._local, "scope", None)

    # -- creation / access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            return scope.counter(name)
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            return scope.gauge(name)
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def inc(self, name: str, delta: Number = 1) -> None:
        """Fast path: bump a counter by name."""
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            scope.inc(name, delta)
            return
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        c.value += delta

    def set(self, name: str, value: Number) -> None:
        """Fast path: set a gauge by name."""
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            scope.set(name, value)
            return
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        g.value = value

    # -- aggregate views ---------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """All current values, JSON-stable and sorted by name.

        Under an :meth:`isolated` scope this is the *scope's* snapshot:
        code that computes before/after deltas inside the scope (the
        suite runner, the trace exporter) sees only work attributable
        to the scoped thread.
        """
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            return scope.snapshot()
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
        }

    def merge(self, snapshot: Mapping[str, Mapping[str, Number]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add (cross-process totals compose); gauges take the
        incoming value (last writer wins, matching single-process
        semantics where a later ``set`` replaces an earlier one).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set(name, value)

    def reset(self) -> None:
        """Drop every counter and gauge (test isolation)."""
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            scope.reset()
            return
        self._counters.clear()
        self._gauges.clear()

    @contextmanager
    def isolated(self) -> Iterator["Registry"]:
        """Scope this thread's metrics into a fresh child registry.

        Within the ``with`` block, every registry operation made by the
        *calling thread* through this instance lands in the yielded
        child (other threads keep writing to the parent).  On exit the
        child's totals are folded back into the enclosing registry --
        the parent, or an outer scope when isolation nests -- so
        process-wide totals still accumulate; the child's
        :meth:`snapshot` *is* the scope's delta, already in the
        ``metrics_delta`` wire shape.
        """
        previous = getattr(self._local, "scope", None)
        scope = Registry()
        self._local.scope = scope
        try:
            yield scope
        finally:
            self._local.scope = previous
            target = previous if previous is not None else self
            delta = scope.snapshot()
            for name, value in delta["counters"].items():
                target.inc(name, value)
            for name, value in delta["gauges"].items():
                target.set(name, value)

    def __iter__(self) -> Iterator[Tuple[str, Number]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value
        for name in sorted(self._gauges):
            yield name, self._gauges[name].value


def metrics_delta(
    before: Mapping[str, Mapping[str, Number]],
    after: Mapping[str, Mapping[str, Number]],
) -> Dict[str, Dict[str, Number]]:
    """Registry-snapshot difference ``after - before``.

    Counters subtract (so a reused worker process never double-reports
    counts from earlier work); gauges pass through at their latest
    value, matching :meth:`Registry.merge` semantics on the receiving
    side.  This is the ship-home format of every process-pool worker:
    the parent folds the returned delta into its own registry with
    :meth:`Registry.merge`.
    """
    counters: Dict[str, Number] = {}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        diff = value - before_counters.get(name, 0)
        if diff:
            counters[name] = diff
    return {"counters": counters, "gauges": dict(after.get("gauges", {}))}


#: The process-wide registry used by all instrumentation sites.
REGISTRY = Registry()
