"""Versioned results store with cross-run regression diffing.

Every bench/suite invocation evaporates into a ``BENCH_*.json`` file
unless something keeps durable, comparable history.  The
:class:`ResultsStore` is that history: one directory of immutable
:class:`RunRecord` JSON files, each persisting a run's report payload
together with its provenance -- the :data:`~repro.obs.metrics.REGISTRY`
snapshot, the suite environment block, the code version and the
wall-clock time of recording -- under a **content-addressed run ID**
(the SHA-256 of the canonical record payload, excluding the clock).
Recording the same measurement twice yields the same ID, so the store
deduplicates instead of growing; the CLI's shared report writer
(``_write_json_report``) records every ``bench-interp`` /
``bench-sched`` / ``bench-passes`` / ``suite --report`` run here.

On top of the records sits the regression engine:

* :func:`run_metrics` flattens a report into comparable *ratio* metrics
  (per-program speedups, geomeans) -- wall-clock seconds are
  deliberately excluded, since they do not compare across hosts.
* :func:`diff` compares two runs of the same kind.  When the two runs
  cover different program sets (a ``--quick`` CI lane against a
  committed full-suite baseline), incomparable whole-set aggregates are
  dropped and geomeans are **recomputed over the shared programs** on
  both sides, so the comparison stays apples-to-apples.
* A metric has *regressed* when its relative drop exceeds its
  tolerance (``--tolerance PATTERN=FRACTION`` in the ``repro
  bench-diff`` CLI, matched by :func:`fnmatch.fnmatch`); any gated
  regression makes ``bench-diff`` exit nonzero.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: Schema generation of stored run records.
RESULTS_SCHEMA_VERSION = 1

#: The report kinds the CLI records (custom kinds are allowed too).
KNOWN_KINDS = ("interp", "sched", "passes", "suite")


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def compute_run_id(kind: str, report: Mapping[str, Any], code_version: str,
                   environment: Mapping[str, Any]) -> str:
    """Content-address one run: identical measurements get identical IDs.

    The wall-clock of recording is deliberately *not* hashed, so
    re-recording the same report is idempotent.
    """
    digest = hashlib.sha256()
    digest.update(
        _canonical(
            {
                "schema": RESULTS_SCHEMA_VERSION,
                "kind": kind,
                "code_version": code_version,
                "environment": environment,
                "report": report,
            }
        ).encode()
    )
    return digest.hexdigest()[:16]


def infer_kind(report: Mapping[str, Any]) -> str:
    """Guess which bench family produced a raw report dict."""
    programs = report.get("programs")
    if isinstance(programs, list) and programs:
        first = programs[0]
        if "tree_seconds" in first:
            return "interp"
        if "batched_speedup" in first or "reference_seconds" in first:
            return "sched"
        if "uncached_seconds" in first:
            return "passes"
    if "geomeans" in report and "speedups" in report:
        return "suite"
    raise ValueError("cannot infer report kind; pass --kind explicitly")


@dataclass
class RunRecord:
    """One persisted run: report payload + provenance."""

    run_id: str
    kind: str
    created: float
    code_version: str
    environment: Dict[str, Any] = field(default_factory=dict)
    #: ``REGISTRY`` snapshot taken at recording time.
    metrics: Dict[str, Any] = field(default_factory=dict)
    report: Dict[str, Any] = field(default_factory=dict)
    schema: int = RESULTS_SCHEMA_VERSION

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "kind": self.kind,
            "created": self.created,
            "code_version": self.code_version,
            "environment": self.environment,
            "metrics": self.metrics,
            "report": self.report,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            run_id=data["run_id"],
            kind=data["kind"],
            created=float(data.get("created", 0.0)),
            code_version=data.get("code_version", ""),
            environment=dict(data.get("environment", {})),
            metrics=dict(data.get("metrics", {})),
            report=dict(data["report"]),
            schema=int(data.get("schema", RESULTS_SCHEMA_VERSION)),
        )


class ResultsStore:
    """A directory of immutable run records, one JSON file per run.

    Layout: ``root/<kind>/<run_id>.json``.  Writes are atomic
    (temp file + rename) so concurrent bench processes sharing a store
    never tear each other's records; identical payloads land on the
    same path and simply overwrite with identical bytes.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        #: Files that failed to load on the last :meth:`load_runs`
        #: (corrupt payloads are skipped, never fatal).
        self.problems: List[str] = []

    # -- recording ---------------------------------------------------------

    def record(
        self,
        kind: str,
        report: Any,
        environment: Optional[Mapping[str, Any]] = None,
        metrics: Optional[Mapping[str, Any]] = None,
        created: Optional[float] = None,
    ) -> RunRecord:
        """Persist one run; returns the (possibly deduplicated) record.

        ``report`` may be a report object exposing ``as_dict`` or a
        plain dict.  ``environment`` defaults to
        :func:`~repro.evaluation.parallel_runner.suite_environment` and
        ``metrics`` to the current ``REGISTRY`` snapshot, so a bare
        ``record(kind, report)`` captures full provenance.
        """
        if hasattr(report, "as_dict"):
            report = report.as_dict()
        report = json.loads(json.dumps(report, default=str))
        if environment is None:
            from repro.evaluation.parallel_runner import suite_environment

            environment = suite_environment()
        environment = dict(environment)
        if metrics is None:
            from repro.obs.metrics import REGISTRY

            metrics = REGISTRY.snapshot()
        code = str(
            environment.get("code_version") or _lazy_code_version()
        )
        record = RunRecord(
            run_id=compute_run_id(kind, report, code, environment),
            kind=kind,
            created=time.time() if created is None else created,
            code_version=code,
            environment=environment,
            metrics=dict(metrics),
            report=report,
        )
        path = self._path(record)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record.as_dict(), indent=2, sort_keys=True))
        tmp.replace(path)
        return record

    def _path(self, record: RunRecord) -> Path:
        return self.root / record.kind / f"{record.run_id}.json"

    # -- loading -----------------------------------------------------------

    def load_runs(self, kind: Optional[str] = None) -> List[RunRecord]:
        """All stored runs (optionally one kind), oldest first.

        Corrupt or unreadable record files are skipped and noted in
        :attr:`problems` -- a half-written or hand-mangled file must
        never take the whole history down.
        """
        self.problems = []
        records: List[RunRecord] = []
        if not self.root.exists():
            return records
        dirs = (
            [self.root / kind]
            if kind is not None
            else sorted(p for p in self.root.iterdir() if p.is_dir())
        )
        for directory in dirs:
            if not directory.exists():
                continue
            for path in sorted(directory.glob("*.json")):
                try:
                    records.append(
                        RunRecord.from_dict(json.loads(path.read_text()))
                    )
                except (OSError, ValueError, KeyError, TypeError) as exc:
                    self.problems.append(f"{path}: {exc}")
        records.sort(key=lambda r: (r.created, r.run_id))
        return records

    def load(self, ref: str, kind: Optional[str] = None) -> RunRecord:
        """Resolve ``ref`` to one record.

        ``ref`` is a run-ID prefix, ``latest``, or ``latest~N`` (the
        N-th most recent run).  Raises :class:`KeyError` when nothing
        (or more than one record) matches.
        """
        runs = self.load_runs(kind)
        if ref == "latest" or ref.startswith("latest~"):
            back = 0
            if "~" in ref:
                back = int(ref.split("~", 1)[1])
            if back >= len(runs):
                raise KeyError(
                    f"store has only {len(runs)} run(s); {ref!r} out of range"
                )
            return runs[-1 - back]
        matches = [r for r in runs if r.run_id.startswith(ref)]
        if not matches:
            raise KeyError(f"no run matching {ref!r}")
        if len({r.run_id for r in matches}) > 1:
            raise KeyError(
                f"ambiguous run prefix {ref!r}: "
                + ", ".join(sorted({r.run_id for r in matches}))
            )
        return matches[-1]

    def latest(self, kind: Optional[str] = None) -> Optional[RunRecord]:
        runs = self.load_runs(kind)
        return runs[-1] if runs else None


def _lazy_code_version() -> str:
    from repro.evaluation.cache import code_version

    return code_version()


# -- metric extraction -------------------------------------------------------


def _flatten(prefix: str, value: Any, out: Dict[str, float]) -> None:
    if isinstance(value, Mapping):
        for key in value:
            _flatten(f"{prefix}.{key}" if prefix else str(key),
                     value[key], out)
    elif isinstance(value, list):
        for item in value:
            if isinstance(item, Mapping) and "name" in item:
                _flatten(f"{prefix}.{item['name']}", item, out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        if math.isfinite(value):
            out[prefix] = float(value)


def _is_ratio_metric(path: str) -> bool:
    """Keep only host-comparable *ratio* metrics (drop raw timings)."""
    leaf = path.rsplit(".", 1)[-1]
    if "seconds" in leaf or leaf in ("instructions", "repeat", "name"):
        return False
    if "speedup" in leaf or leaf.startswith("geomean"):
        return True
    head = path.split(".", 1)[0]
    # Suite reports: speedups.<bench>.<cores> and geomeans.<cores>.
    return head in ("speedups", "geomeans")


def run_metrics(report: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten a report into its comparable ratio metrics.

    Paths are dotted: ``programs.mcf.speedup``,
    ``summary.geomean_speedup``, ``speedups.mcf.6``, ``geomeans.6``.
    """
    flat: Dict[str, float] = {}
    _flatten("", dict(report), flat)
    return {path: value for path, value in flat.items()
            if _is_ratio_metric(path)}


def _item_paths(metrics: Mapping[str, float]) -> Dict[str, Dict[str, float]]:
    """Group per-item metric paths: trailing metric -> {item: value}.

    ``programs.<name>.<metric>`` and ``speedups.<bench>.<cores>`` rows
    are per-item; everything else (``summary.*``, ``geomeans.*``) is a
    whole-set aggregate.
    """
    groups: Dict[str, Dict[str, float]] = {}
    for path, value in metrics.items():
        parts = path.split(".")
        if len(parts) == 3 and parts[0] in ("programs", "speedups"):
            if parts[0] == "programs":
                key = parts[2]           # metric name, e.g. "speedup"
            else:
                key = f"cores={parts[2]}"  # suite: group by core count
            groups.setdefault(key, {})[parts[1]] = value
    return groups


def _geomean(values: Sequence[float]) -> float:
    if not values:
        return 1.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values))


@dataclass
class DiffEntry:
    """One compared metric between two runs."""

    metric: str
    base: float
    head: float
    #: Relative change ``(head - base) / base``; negative = drop.
    change: float
    tolerance: float
    #: ``ok`` / ``regression`` / ``improved``.
    status: str

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "base": self.base,
            "head": self.head,
            "change": self.change,
            "tolerance": self.tolerance,
            "status": self.status,
        }


@dataclass
class RunDiff:
    """The comparison of two runs of one kind."""

    kind: str
    base_id: str
    head_id: str
    entries: List[DiffEntry] = field(default_factory=list)
    #: Metric paths present on only one side (informational).
    only_base: List[str] = field(default_factory=list)
    only_head: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def improvements(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "base": self.base_id,
            "head": self.head_id,
            "ok": self.ok,
            "entries": [e.as_dict() for e in self.entries],
            "only_base": self.only_base,
            "only_head": self.only_head,
        }

    def render(self) -> str:
        lines = [
            f"diff [{self.kind}] {self.base_id} -> {self.head_id}: "
            f"{len(self.entries)} metrics, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)",
            f"{'metric':<40} {'base':>9} {'head':>9} {'change':>8} "
            f"{'tol':>6}  status",
        ]
        ranked = sorted(self.entries, key=lambda e: e.change)
        for entry in ranked:
            lines.append(
                f"{entry.metric:<40} {entry.base:>9.3f} {entry.head:>9.3f} "
                f"{entry.change:>+7.1%} {entry.tolerance:>6.0%}  "
                f"{entry.status}"
            )
        for path in self.only_base:
            lines.append(f"{path:<40} {'-':>9} (only in base)")
        for path in self.only_head:
            lines.append(f"{path:<40} {'-':>9} (only in head)")
        return "\n".join(lines)


ReportLike = Union[RunRecord, Mapping[str, Any]]


def _coerce(run: ReportLike, kind: Optional[str]) -> Tuple[str, str, dict]:
    """Normalize a record / raw report into ``(kind, label, report)``."""
    if isinstance(run, RunRecord):
        return run.kind, run.run_id, run.report
    data = dict(run)
    if "report" in data and "run_id" in data:  # serialized RunRecord
        return data["kind"], data["run_id"], dict(data["report"])
    return (kind or infer_kind(data)), "report", data


def tolerance_for(
    metric: str,
    tolerances: Optional[Mapping[str, float]],
    default: float,
) -> float:
    """Resolve one metric's tolerance: most specific fnmatch wins."""
    if not tolerances:
        return default
    best: Optional[Tuple[int, float]] = None
    for pattern, value in tolerances.items():
        if fnmatch(metric, pattern):
            rank = len(pattern.replace("*", "").replace("?", ""))
            if best is None or rank > best[0]:
                best = (rank, value)
    return best[1] if best is not None else default


def diff(
    base: ReportLike,
    head: ReportLike,
    tolerances: Optional[Mapping[str, float]] = None,
    default_tolerance: float = 0.05,
    kind: Optional[str] = None,
) -> RunDiff:
    """Compare two runs; higher is better for every extracted metric.

    When the two runs cover different program/bench sets, whole-set
    aggregates (``summary.*``, top-level ``geomeans.*``) are dropped as
    incomparable and replaced by geomeans recomputed over the *shared*
    items on both sides (``geomean.<metric> (shared)`` entries), so a
    quick-lane run diffs cleanly against a full-suite baseline.
    """
    base_kind, base_id, base_report = _coerce(base, kind)
    head_kind, head_id, head_report = _coerce(head, kind)
    if base_kind != head_kind:
        raise ValueError(
            f"cannot diff across kinds: {base_kind!r} vs {head_kind!r}"
        )
    base_metrics = run_metrics(base_report)
    head_metrics = run_metrics(head_report)

    base_items = _item_paths(base_metrics)
    head_items = _item_paths(head_metrics)
    item_names = set()
    for group in base_items.values():
        item_names |= set(group)
    head_names = set()
    for group in head_items.values():
        head_names |= set(group)
    same_sets = item_names == head_names

    if not same_sets:
        # Whole-set aggregates are incomparable across different
        # program sets; keep only per-item rows...
        def per_item(path: str) -> bool:
            return path.split(".", 1)[0] in ("programs", "speedups")

        base_metrics = {p: v for p, v in base_metrics.items() if per_item(p)}
        head_metrics = {p: v for p, v in head_metrics.items() if per_item(p)}
        # ...and synthesize shared-set geomeans for each metric group.
        for group in sorted(set(base_items) & set(head_items)):
            shared = sorted(set(base_items[group]) & set(head_items[group]))
            if len(shared) < 2:
                continue
            base_metrics[f"geomean.{group} (shared)"] = _geomean(
                [base_items[group][name] for name in shared]
            )
            head_metrics[f"geomean.{group} (shared)"] = _geomean(
                [head_items[group][name] for name in shared]
            )

    result = RunDiff(kind=base_kind, base_id=base_id, head_id=head_id)
    shared_paths = sorted(set(base_metrics) & set(head_metrics))
    result.only_base = sorted(set(base_metrics) - set(head_metrics))
    result.only_head = sorted(set(head_metrics) - set(base_metrics))
    for path in shared_paths:
        b, h = base_metrics[path], head_metrics[path]
        change = (h - b) / b if b else (0.0 if h == b else math.inf)
        tol = tolerance_for(path, tolerances, default_tolerance)
        if change < -tol:
            status = "regression"
        elif change > tol:
            status = "improved"
        else:
            status = "ok"
        result.entries.append(
            DiffEntry(
                metric=path, base=b, head=h, change=change,
                tolerance=tol, status=status,
            )
        )
    return result


# -- history helpers ---------------------------------------------------------


def _headline(record: RunRecord) -> Tuple[str, Optional[float]]:
    """The one number that summarizes a run in history listings."""
    metrics = run_metrics(record.report)
    for path in (
        "summary.geomean_speedup",
        "geomeans.6",
    ):
        if path in metrics:
            return path, metrics[path]
    geomeans = sorted(
        (p, v) for p, v in metrics.items() if p.startswith("geomeans.")
    )
    if geomeans:
        return geomeans[-1]
    return "", None


def aggregate(runs: Sequence[RunRecord]) -> Dict[str, Dict[str, float]]:
    """Per-metric history statistics over ``runs`` (same kind expected).

    Returns ``metric -> {count, min, max, mean, latest}`` for every
    ratio metric that appears in at least one run.
    """
    series: Dict[str, List[float]] = {}
    for record in runs:
        for path, value in run_metrics(record.report).items():
            series.setdefault(path, []).append(value)
    return {
        path: {
            "count": float(len(values)),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "latest": values[-1],
        }
        for path, values in sorted(series.items())
    }


def format_history(runs: Sequence[RunRecord]) -> str:
    """Human-readable run-history table, oldest first."""
    if not runs:
        return "(no recorded runs)"
    lines = [
        f"{'run':<16} {'kind':<7} {'recorded (UTC)':<20} "
        f"{'code':<12} headline"
    ]
    for record in runs:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.gmtime(record.created)
        )
        path, value = _headline(record)
        headline = f"{path}={value:.2f}" if value is not None else "-"
        lines.append(
            f"{record.run_id:<16} {record.kind:<7} {stamp:<20} "
            f"{record.code_version[:12]:<12} {headline}"
        )
    return "\n".join(lines)
