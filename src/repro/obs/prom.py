"""Prometheus text-format exposition for registry snapshots.

Renders a :meth:`~repro.obs.metrics.Registry.snapshot` (plus optional
derived gauges, e.g. the daemon's queue depths) in the Prometheus text
exposition format, so ``repro serve-status --prom`` output can be
dropped straight into a node-exporter textfile collector or scraped by
any Prometheus-compatible agent.  Stdlib-only: the format is just
``# TYPE`` comments and ``name value`` lines.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the registry's dotted names
(``stage.lower.computes``) become underscored
(``repro_stage_lower_computes``).  Sanitization can collide
(``a.b`` and ``a_b`` both map to ``a_b``); last writer wins, matching
gauge semantics.
"""

from __future__ import annotations

import re
from typing import Dict, Mapping, Optional, Tuple, Union

Number = Union[int, float]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str, prefix: str = "repro_") -> str:
    """Map an arbitrary registry name onto the Prometheus grammar."""
    cleaned = _NAME_OK.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return prefix + cleaned


def _format_value(value: Number) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(
    snapshot: Mapping[str, Mapping[str, Number]],
    extra_gauges: Optional[Mapping[str, Number]] = None,
    prefix: str = "repro_",
) -> str:
    """Render a registry snapshot as Prometheus exposition text.

    ``extra_gauges`` lets callers add derived values (queue depths,
    uptime) that live outside the registry proper.  The output ends
    with a newline, as the exposition format requires.
    """
    lines = []
    for name in sorted(snapshot.get("counters", {})):
        metric = sanitize_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric} {_format_value(snapshot['counters'][name])}"
        )
    gauges: Dict[str, Number] = dict(snapshot.get("gauges", {}))
    if extra_gauges:
        gauges.update(extra_gauges)
    for name in sorted(gauges):
        metric = sanitize_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    return "\n".join(lines) + "\n"


def status_gauges(status: Mapping[str, object]) -> Dict[str, Number]:
    """Derive exposition gauges from a daemon ``status`` RPC payload.

    Surfaces the introspection numbers that are not registry-resident:
    uptime, queue depth by job state, in-flight count, retries, and
    worker liveness.
    """
    gauges: Dict[str, Number] = {}
    uptime = status.get("uptime_seconds")
    if isinstance(uptime, (int, float)):
        gauges["serve.uptime_seconds"] = uptime
    queue = status.get("queue")
    if isinstance(queue, Mapping):
        for state, count in queue.items():
            if isinstance(count, (int, float)):
                gauges[f"serve.queue.{state}"] = count
    in_flight = status.get("in_flight")
    if isinstance(in_flight, list):
        gauges["serve.in_flight"] = len(in_flight)
    retries = status.get("retries")
    if isinstance(retries, (int, float)):
        gauges["serve.retries"] = retries
    workers = status.get("workers")
    if isinstance(workers, Mapping):
        for key, count in workers.items():
            if isinstance(count, (int, float)):
                gauges[f"serve.workers.{key}"] = count
    accepting = status.get("accepting")
    if isinstance(accepting, bool):
        gauges["serve.accepting"] = 1 if accepting else 0
    return gauges


def parse_exposition(text: str) -> Dict[str, Tuple[str, float]]:
    """Parse exposition text back to ``name -> (type, value)`` (tests)."""
    types: Dict[str, str] = {}
    values: Dict[str, Tuple[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind.strip()
        elif not line.startswith("#"):
            name, _, value = line.partition(" ")
            values[name] = (types.get(name, "untyped"), float(value))
    return values
