"""Unified tracing & metrics subsystem (zero-dependency).

Two complementary primitives, both off by default and free when off:

* :class:`Tracer` -- nestable wall-clock spans with typed args, recorded
  as flat events and exportable as Chrome trace-event JSON
  (:mod:`repro.obs.export`), loadable in Perfetto / ``about:tracing``.
  The process-wide tracer is a shared :class:`NullTracer` until
  :func:`set_tracer` installs a recording one, so instrumentation sites
  cost one global read plus a no-op context manager when tracing is off.
* :class:`Registry` -- process-wide named counters and gauges
  (:data:`REGISTRY`).  The pipeline's pre-existing ad-hoc stats (stage
  tallies, per-analysis hit/miss rows, interpreter backend selections,
  evaluation-cache disk traffic) all mirror into it, so one snapshot
  describes a whole run.

On top of these sit two reporting surfaces:

* :class:`ResultsStore` (:mod:`repro.obs.results`) -- a versioned,
  content-addressed store of bench/suite run records with a
  :func:`diff` regression engine (``repro bench-diff``).
* :func:`prometheus_text` (:mod:`repro.obs.prom`) -- Prometheus
  text-format exposition of registry snapshots and daemon status
  (``repro serve-status --prom``).

The *simulated-time* timeline exporter lives in
:mod:`repro.obs.timeline`; it is imported explicitly by its users (never
from this package root) because it depends on the runtime layer.
"""

from repro.obs.metrics import REGISTRY, Counter, Gauge, Registry, metrics_delta
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
    tracing,
)
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.prom import prometheus_text, status_gauges
from repro.obs.results import (
    RESULTS_SCHEMA_VERSION,
    DiffEntry,
    ResultsStore,
    RunDiff,
    RunRecord,
    diff,
    format_history,
    infer_kind,
    run_metrics,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Registry",
    "metrics_delta",
    "NULL_TRACER",
    "NullTracer",
    "SpanEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "traced",
    "tracing",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "status_gauges",
    "RESULTS_SCHEMA_VERSION",
    "DiffEntry",
    "ResultsStore",
    "RunDiff",
    "RunRecord",
    "diff",
    "format_history",
    "infer_kind",
    "run_metrics",
]
