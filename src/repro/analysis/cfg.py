"""Control-flow-graph views and traversals.

All algorithms work on block *names* so they are stable across instruction
splicing.  A :class:`CFGView` snapshots successor/predecessor maps; passes
that edit the CFG build a fresh view afterwards.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.ir import Function


class CFGView:
    """An immutable successor/predecessor snapshot of a function's CFG."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.entry = func.entry.name
        self.succs: Dict[str, Tuple[str, ...]] = {}
        self.preds: Dict[str, List[str]] = {name: [] for name in func.blocks}
        for name, block in func.blocks.items():
            targets = block.successor_names()
            self.succs[name] = targets
            for target in targets:
                self.preds[target].append(name)
        #: Blocks with no successors (RET blocks).
        self.exits: Tuple[str, ...] = tuple(
            name for name, targets in self.succs.items() if not targets
        )

    def successors(self, name: str) -> Tuple[str, ...]:
        return self.succs[name]

    def predecessors(self, name: str) -> List[str]:
        return self.preds[name]

    def nodes(self) -> List[str]:
        return list(self.succs)

    def __contains__(self, name: str) -> bool:
        return name in self.succs


def postorder(cfg: CFGView, entry: Optional[str] = None) -> List[str]:
    """Iterative DFS postorder over blocks reachable from ``entry``."""
    start = entry or cfg.entry
    order: List[str] = []
    visited: Set[str] = {start}
    # Stack of (node, iterator over successors).
    stack: List[Tuple[str, int]] = [(start, 0)]
    while stack:
        node, index = stack[-1]
        succs = cfg.succs[node]
        if index < len(succs):
            stack[-1] = (node, index + 1)
            succ = succs[index]
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, 0))
        else:
            stack.pop()
            order.append(node)
    return order


def reverse_postorder(cfg: CFGView, entry: Optional[str] = None) -> List[str]:
    """Reverse postorder (a topological-ish order for dataflow)."""
    order = postorder(cfg, entry)
    order.reverse()
    return order


def reachable_blocks(cfg: CFGView, entry: Optional[str] = None) -> Set[str]:
    """Blocks reachable from ``entry`` (default: function entry)."""
    start = entry or cfg.entry
    seen: Set[str] = {start}
    work = [start]
    while work:
        node = work.pop()
        for succ in cfg.succs[node]:
            if succ not in seen:
                seen.add(succ)
                work.append(succ)
    return seen


def reachable_within(
    cfg: CFGView,
    targets: Iterable[str],
    allowed: FrozenSet[str],
    blocked_edges: Set[Tuple[str, str]] = frozenset(),
) -> Set[str]:
    """Blocks in ``allowed`` from which some block in ``targets`` is
    reachable without leaving ``allowed`` or crossing ``blocked_edges``.

    Used by the HELIX sequential-segment computation: the "region that can
    still reach an occurrence of dependence d within this iteration" is a
    backward reachability query with the loop back edges blocked.
    """
    result: Set[str] = set(t for t in targets if t in allowed)
    work = list(result)
    while work:
        node = work.pop()
        for pred in cfg.preds[node]:
            if pred in allowed and pred not in result:
                if (pred, node) in blocked_edges:
                    continue
                result.add(pred)
                work.append(pred)
    return result
