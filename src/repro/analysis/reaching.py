"""Reaching definitions over virtual registers.

Used by the induction/invariant analysis (which definitions of a register
reach its uses inside a loop) and by the Step 5 scheduler's intra-block
dependence checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.cfg import CFGView
from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.ir import Function, Instruction

#: A definition site: (block name, index in block, defined uid).
DefSite = Tuple[str, int, int]


@dataclass
class ReachingDefs:
    """Reaching-definition facts plus indexes for convenient queries."""

    func: Function
    reach_in: Dict[str, FrozenSet[DefSite]]
    reach_out: Dict[str, FrozenSet[DefSite]]
    defs_of: Dict[int, List[DefSite]]

    def defs_reaching_use(
        self, block: str, index: int, uid: int
    ) -> List[DefSite]:
        """Definition sites of ``uid`` that reach instruction ``index``."""
        live: Set[DefSite] = {
            d for d in self.reach_in.get(block, frozenset()) if d[2] == uid
        }
        instrs = self.func.blocks[block].instructions
        for i in range(index):
            instr = instrs[i]
            if instr.dest is not None and instr.dest.uid == uid:
                live = {(block, i, uid)}
        return sorted(live)

    def def_instruction(self, site: DefSite) -> Instruction:
        block, index, _uid = site
        return self.func.blocks[block].instructions[index]


def compute_reaching_defs(func: Function, cfg: CFGView = None) -> ReachingDefs:
    """Forward may reaching-definitions analysis."""
    cfg = cfg or CFGView(func)

    gen: Dict[str, Set[DefSite]] = {}
    defined_uids: Dict[str, Set[int]] = {}
    defs_of: Dict[int, List[DefSite]] = {}
    for name, block in func.blocks.items():
        last_def: Dict[int, DefSite] = {}
        for i, instr in enumerate(block.instructions):
            if instr.dest is not None:
                site = (name, i, instr.dest.uid)
                last_def[instr.dest.uid] = site
                defs_of.setdefault(instr.dest.uid, []).append(site)
        gen[name] = set(last_def.values())
        defined_uids[name] = set(last_def)

    def transfer(name: str, reach_in: FrozenSet[DefSite]) -> FrozenSet[DefSite]:
        killed = defined_uids[name]
        surviving = {d for d in reach_in if d[2] not in killed}
        return frozenset(surviving | gen[name])

    problem = DataflowProblem(
        direction="forward", meet="union", transfer=transfer
    )
    result = solve_dataflow(cfg, problem)
    return ReachingDefs(
        func=func,
        reach_in=result.inputs,
        reach_out=result.outputs,
        defs_of=defs_of,
    )
