"""Loop-invariant and induction-variable analysis.

HELIX Step 2 excludes from synchronization the register dependences that
involve *invariant* variables (same value every iteration) and *induction*
variables (locally computable from the iteration number and the value at
loop entry).  The dependence analysis additionally uses constant-step basic
induction variables to disambiguate affine array subscripts (``a[i]`` in
iteration *i* never collides with ``a[i]`` in iteration *j*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFGView
from repro.analysis.dominators import DominatorTree, dominators
from repro.analysis.loops import Loop
from repro.ir import Function, Instruction, Opcode
from repro.ir.operands import Const, Operand, Symbol, VReg

#: Pure opcodes whose result depends only on register/constant operands.
_PURE_OPCODES = frozenset(
    {
        Opcode.MOV,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.NEG,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.NOT,
        Opcode.EQ,
        Opcode.NE,
        Opcode.LT,
        Opcode.LE,
        Opcode.GT,
        Opcode.GE,
        Opcode.ITOF,
        Opcode.FTOI,
        Opcode.LEA,
        Opcode.PTRADD,
    }
)


@dataclass
class BasicIV:
    """A basic induction variable: in-loop defs of form ``r = r + step``."""

    uid: int
    step: Optional[int]  # constant step, or None when merely invariant
    #: Whether the single def's block dominates every latch (executes
    #: exactly once per iteration) -- required for subscript disambiguation.
    once_per_iteration: bool = False
    #: Whether *every* def executes on every iteration (its block
    #: dominates all latches).  Conditionally-updated counters are NOT
    #: locally computable from the iteration number, so they still need
    #: synchronization (paper, Step 2).
    executes_every_iteration: bool = False

    @property
    def disambiguates(self) -> bool:
        """Usable for affine subscript disambiguation."""
        return (
            self.step is not None and self.step != 0 and self.once_per_iteration
        )


@dataclass
class InductionInfo:
    """Invariant and induction classification for one loop."""

    loop: Loop
    #: uids with no definition inside the loop, or redefined to the same
    #: value every iteration.
    invariant_uids: Set[int] = field(default_factory=set)
    basic_ivs: Dict[int, BasicIV] = field(default_factory=dict)
    #: uids computed purely from IVs and invariants (derived IVs).
    derived_iv_uids: Set[int] = field(default_factory=set)
    #: uid -> definitions inside the loop.
    defs_in_loop: Dict[int, List[Instruction]] = field(default_factory=dict)
    #: Global symbols never stored to in the module (loads behave as
    #: constants; see :func:`repro.analysis.dependence.compute_readonly_globals`).
    readonly_symbols: Set[str] = field(default_factory=set)

    def is_invariant(self, uid: int) -> bool:
        return uid in self.invariant_uids

    def is_induction(self, uid: int) -> bool:
        return uid in self.basic_ivs or uid in self.derived_iv_uids

    def sync_exempt(self, uid: int) -> bool:
        """Whether a carried register dep on ``uid`` needs no sync (Step 2).

        Invariants never change; induction variables are locally
        computable from the iteration number -- but only when their
        update runs on *every* iteration.  A conditionally-bumped counter
        is data-dependent state and must be synchronized."""
        if self.is_invariant(uid):
            return True
        iv = self.basic_ivs.get(uid)
        if iv is not None:
            return iv.executes_every_iteration
        if uid in self.derived_iv_uids:
            return True
        return False


def _operand_invariant(op: Operand, info: InductionInfo) -> bool:
    if isinstance(op, Const):
        return True
    if isinstance(op, VReg):
        return info.is_invariant(op.uid)
    # Symbols denote region addresses, which never change.
    return True


def analyze_induction(
    func: Function,
    loop: Loop,
    cfg: Optional[CFGView] = None,
    dom: Optional[DominatorTree] = None,
    readonly_symbols: Optional[Set[str]] = None,
) -> InductionInfo:
    """Classify the registers of ``loop``.

    ``readonly_symbols`` names global symbols never stored to anywhere in
    the module (directly or through pointers); loads from them behave as
    constants, so their results participate in the invariant fixpoint --
    the common ``for (i = 0; i < N; ...)`` / ``a[i * W + j]`` patterns
    where the bound or stride is a read-only global.
    """
    cfg = cfg or CFGView(func)
    dom = dom or dominators(cfg)
    info = InductionInfo(loop=loop)
    readonly_symbols = readonly_symbols or set()
    info.readonly_symbols = set(readonly_symbols)

    loop_instrs = loop.instructions()
    for instr in loop_instrs:
        if instr.dest is not None:
            info.defs_in_loop.setdefault(instr.dest.uid, []).append(instr)

    used_uids: Set[int] = set()
    for instr in loop_instrs:
        for reg in instr.uses():
            used_uids.add(reg.uid)
        if instr.dest is not None:
            used_uids.add(instr.dest.uid)

    # Registers never defined inside the loop are invariant.
    for uid in used_uids:
        if uid not in info.defs_in_loop:
            info.invariant_uids.add(uid)

    # Iteratively mark single-def pure computations over invariants.
    changed = True
    while changed:
        changed = False
        for uid, defs in info.defs_in_loop.items():
            if uid in info.invariant_uids or len(defs) != 1:
                continue
            instr = defs[0]
            readonly_load = (
                instr.opcode is Opcode.LOADG
                and isinstance(instr.args[0], Symbol)
                and instr.args[0].is_global
                and instr.args[0].name in readonly_symbols
            )
            if instr.opcode not in _PURE_OPCODES and not readonly_load:
                continue
            if all(_operand_invariant(a, info) for a in instr.args):
                info.invariant_uids.add(uid)
                changed = True

    # Basic induction variables: every in-loop def is r = r (+|-) invariant.
    block_of: Dict[int, str] = {}
    for block in func.block_order():
        if block.name not in loop.blocks:
            continue
        for instr in block.instructions:
            if instr.dest is not None:
                block_of[instr.uid] = block.name

    for uid, defs in info.defs_in_loop.items():
        if uid in info.invariant_uids:
            continue
        steps: List[Optional[int]] = []
        is_iv = True
        for instr in defs:
            step = _iv_step(instr, uid, info)
            if step is _NOT_IV:
                is_iv = False
                break
            steps.append(step)
        if not is_iv:
            continue
        const_step: Optional[int] = None
        if len(defs) == 1 and isinstance(steps[0], int):
            const_step = steps[0]
        def_blocks = [block_of.get(d.uid) for d in defs]
        every_iteration = all(
            b is not None
            and all(dom.dominates(b, latch) for latch in loop.latches)
            for b in def_blocks
        )
        once = len(defs) == 1 and every_iteration
        info.basic_ivs[uid] = BasicIV(uid, const_step, once, every_iteration)

    # Derived IVs: single pure def over IVs + invariants.
    changed = True
    while changed:
        changed = False
        for uid, defs in info.defs_in_loop.items():
            if (
                uid in info.invariant_uids
                or uid in info.basic_ivs
                or uid in info.derived_iv_uids
                or len(defs) != 1
            ):
                continue
            instr = defs[0]
            if instr.opcode not in _PURE_OPCODES:
                continue
            ok = True
            for op in instr.args:
                if isinstance(op, VReg):
                    base_iv = info.basic_ivs.get(op.uid)
                    safe_iv = (
                        base_iv is not None
                        and base_iv.executes_every_iteration
                    )
                    if not (
                        info.is_invariant(op.uid)
                        or safe_iv
                        or op.uid in info.derived_iv_uids
                    ):
                        ok = False
                        break
            if ok:
                info.derived_iv_uids.add(uid)
                changed = True

    return info


#: Sentinel distinguishing "not an IV update" from "IV with unknown step".
_NOT_IV = object()


def _iv_step(instr: Instruction, uid: int, info: InductionInfo):
    """If ``instr`` is ``uid = uid (+|-) inv``: the constant step (int),
    None for a non-constant invariant step; else the :data:`_NOT_IV`
    sentinel.

    The frontend lowers ``i++`` as ``t = add i, 1; mov i, t``, so a MOV
    from a single-def temporary is chased one level.
    """
    if instr.opcode is Opcode.MOV:
        src = instr.args[0]
        if not isinstance(src, VReg):
            return _NOT_IV
        src_defs = info.defs_in_loop.get(src.uid, [])
        if len(src_defs) != 1 or src_defs[0] is instr:
            return _NOT_IV
        return _iv_step(src_defs[0], uid, info)
    if instr.opcode not in (Opcode.ADD, Opcode.SUB):
        return _NOT_IV
    a, b = instr.args
    if isinstance(a, VReg) and a.uid == uid:
        other = b
    elif (
        instr.opcode is Opcode.ADD and isinstance(b, VReg) and b.uid == uid
    ):
        other = a
    else:
        return _NOT_IV
    if isinstance(other, Const) and isinstance(other.value, int):
        return -other.value if instr.opcode is Opcode.SUB else other.value
    if isinstance(other, VReg) and info.is_invariant(other.uid):
        return None
    return _NOT_IV
