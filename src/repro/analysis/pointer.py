"""Interprocedural pointer analysis (Andersen-style inclusion analysis).

This plays the role of the "practical and accurate low-level pointer
analysis" [17] the paper applies to the whole program in Step 2.  It
computes, for every pointer-typed virtual register, the set of memory
regions (symbols) it may point into.

MiniC pointers flow only through registers, call arguments and return
values -- arrays cannot hold pointers -- so the inclusion constraints form
a static copy graph and the analysis is a straightforward propagation to a
fixed point (no on-the-fly edge discovery needed).  It is flow- and
context-insensitive and field-insensitive (a pointer into any part of a
region aliases the whole region), which is sound for dependence detection:
HELIX only needs an over-approximation of may-aliasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir import Instruction, Module, Opcode
from repro.ir.operands import Symbol, VReg
from repro.ir.types import Type

#: A pointer variable: (function name, vreg uid).
PtrVar = Tuple[str, int]
#: An abstract memory location: (owning function or None for globals, name).
LocKey = Tuple[Optional[str], str]


def loc_key(symbol: Symbol) -> LocKey:
    """Abstract location of a symbol."""
    return (symbol.function, symbol.name)


@dataclass
class PointsToResult:
    """Points-to sets plus helpers for memory-instruction queries."""

    module: Module
    points_to: Dict[PtrVar, FrozenSet[LocKey]]
    #: Every abstract location in the program (the conservative fallback).
    all_locations: FrozenSet[LocKey]

    def pts(self, func_name: str, reg: VReg) -> FrozenSet[LocKey]:
        """Locations ``reg`` may point to (everything, if unknown)."""
        result = self.points_to.get((func_name, reg.uid))
        if result is None or not result:
            return self.all_locations
        return result

    def locations_accessed(
        self, func_name: str, instr: Instruction
    ) -> FrozenSet[LocKey]:
        """Abstract locations a memory instruction may touch."""
        if instr.opcode in (Opcode.LOADG, Opcode.STOREG, Opcode.XFER):
            symbol = instr.args[0]
            assert isinstance(symbol, Symbol)
            return frozenset({loc_key(symbol)})
        if instr.opcode in (Opcode.LOADP, Opcode.STOREP):
            ptr = instr.args[0]
            if isinstance(ptr, VReg):
                return self.pts(func_name, ptr)
            return self.all_locations
        return frozenset()

    def may_alias(
        self, func_a: str, a: Instruction, func_b: str, b: Instruction
    ) -> bool:
        """Whether two memory instructions may touch a common region."""
        return bool(
            self.locations_accessed(func_a, a)
            & self.locations_accessed(func_b, b)
        )


def andersen_pointer_analysis(module: Module) -> PointsToResult:
    """Run the inclusion-based pointer analysis over ``module``."""
    base: Dict[PtrVar, Set[LocKey]] = {}
    copy_edges: Dict[PtrVar, Set[PtrVar]] = {}
    all_locations: Set[LocKey] = set()

    for symbol in module.globals.values():
        all_locations.add(loc_key(symbol))
    for func in module.functions.values():
        for symbol in func.locals.values():
            all_locations.add(loc_key(symbol))

    def add_base(var: PtrVar, loc: LocKey) -> None:
        base.setdefault(var, set()).add(loc)

    def add_copy(src: PtrVar, dst: PtrVar) -> None:
        copy_edges.setdefault(src, set()).add(dst)

    #: Return-value sources per function (pointer-typed RET operands).
    for func in module.functions.values():
        for block in func.blocks.values():
            for instr in block.instructions:
                if instr.opcode is Opcode.LEA:
                    symbol = instr.args[0]
                    assert isinstance(symbol, Symbol) and instr.dest is not None
                    add_base((func.name, instr.dest.uid), loc_key(symbol))
                elif instr.opcode in (Opcode.PTRADD, Opcode.MOV):
                    src = instr.args[0]
                    if (
                        isinstance(src, VReg)
                        and src.type is Type.PTR
                        and instr.dest is not None
                        and instr.dest.type is Type.PTR
                    ):
                        add_copy((func.name, src.uid), (func.name, instr.dest.uid))
                elif instr.opcode is Opcode.CALL and instr.callee in module.functions:
                    callee = module.functions[instr.callee]
                    for arg, param in zip(instr.args, callee.params):
                        if isinstance(arg, VReg) and param.type is Type.PTR:
                            add_copy(
                                (func.name, arg.uid), (callee.name, param.uid)
                            )
                        elif isinstance(arg, Symbol):
                            add_base((callee.name, param.uid), loc_key(arg))
                    if instr.dest is not None and instr.dest.type is Type.PTR:
                        for ret_instr in callee.instructions():
                            if ret_instr.opcode is Opcode.RET and ret_instr.args:
                                ret_val = ret_instr.args[0]
                                if isinstance(ret_val, VReg):
                                    add_copy(
                                        (callee.name, ret_val.uid),
                                        (func.name, instr.dest.uid),
                                    )

    # Propagate to fixed point over the copy graph.
    points_to: Dict[PtrVar, Set[LocKey]] = {
        var: set(locs) for var, locs in base.items()
    }
    work: List[PtrVar] = list(points_to)
    in_work = set(work)
    while work:
        var = work.pop()
        in_work.discard(var)
        current = points_to.get(var, set())
        for dst in copy_edges.get(var, ()):
            target = points_to.setdefault(dst, set())
            before = len(target)
            target |= current
            if len(target) != before and dst not in in_work:
                work.append(dst)
                in_work.add(dst)

    return PointsToResult(
        module=module,
        points_to={var: frozenset(locs) for var, locs in points_to.items()},
        all_locations=frozenset(all_locations),
    )
