"""The (direct) call graph of a module.

MiniC has no function pointers, so every call edge is static.  The graph
answers the questions HELIX asks: which functions a loop may transitively
execute (for interprocedural dependence detection), and whether a call is
recursive (which blocks Step 5 inlining).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.ir import Instruction, Module, Opcode


@dataclass
class CallGraph:
    """Call edges plus per-edge call sites."""

    module: Module
    graph: "nx.DiGraph"
    call_sites: Dict[Tuple[str, str], List[Instruction]] = field(
        default_factory=dict
    )

    def callees(self, func_name: str) -> List[str]:
        if func_name not in self.graph:
            return []
        return sorted(self.graph.successors(func_name))

    def callers(self, func_name: str) -> List[str]:
        if func_name not in self.graph:
            return []
        return sorted(self.graph.predecessors(func_name))

    def transitive_callees(self, func_name: str) -> Set[str]:
        """All functions reachable from ``func_name`` (excluding itself
        unless recursive)."""
        if func_name not in self.graph:
            return set()
        reachable = nx.descendants(self.graph, func_name)
        return set(reachable)

    def is_recursive(self, func_name: str) -> bool:
        """Whether ``func_name`` can (transitively) call itself."""
        if func_name not in self.graph:
            return False
        if self.graph.has_edge(func_name, func_name):
            return True
        return func_name in self.transitive_callees(func_name)

    def functions_called_from(self, instructions: List[Instruction]) -> Set[str]:
        """Functions transitively callable from the given instructions."""
        result: Set[str] = set()
        for instr in instructions:
            if instr.opcode is Opcode.CALL and instr.callee is not None:
                if instr.callee in result:
                    continue
                result.add(instr.callee)
                result |= self.transitive_callees(instr.callee)
        return result


def build_callgraph(module: Module) -> CallGraph:
    """Construct the call graph of ``module``."""
    graph = nx.DiGraph()
    call_sites: Dict[Tuple[str, str], List[Instruction]] = {}
    for func in module.functions.values():
        graph.add_node(func.name)
    for func in module.functions.values():
        for instr in func.instructions():
            if instr.opcode is Opcode.CALL and instr.callee is not None:
                edge = (func.name, instr.callee)
                graph.add_edge(*edge)
                call_sites.setdefault(edge, []).append(instr)
    return CallGraph(module=module, graph=graph, call_sites=call_sites)
