"""Dominator and post-dominator trees.

Implements the iterative algorithm of Cooper, Harvey and Kennedy
("A Simple, Fast Dominance Algorithm").  Post-dominance runs the same
algorithm on the reversed CFG with a virtual exit joining all RET blocks;
HELIX Step 1 defines the loop prologue through post-dominance by the loop's
back edge source.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFGView, postorder

#: Name of the virtual exit node used for post-dominance.
VIRTUAL_EXIT = "__exit__"


class DominatorTree:
    """Immediate-dominator mapping with ancestor queries."""

    def __init__(self, idom: Dict[str, Optional[str]], root: str) -> None:
        self.idom = idom
        self.root = root
        self._depth: Dict[str, int] = {}
        for node in idom:
            self._compute_depth(node)

    def _compute_depth(self, node: str) -> int:
        if node in self._depth:
            return self._depth[node]
        chain: List[str] = []
        current: Optional[str] = node
        while current is not None and current not in self._depth:
            chain.append(current)
            current = self.idom[current] if current != self.root else None
        base = self._depth[current] if current is not None else -1
        for item in reversed(chain):
            base += 1
            self._depth[item] = base
        return self._depth[node]

    def dominates(self, a: str, b: str) -> bool:
        """Whether ``a`` dominates ``b`` (reflexively)."""
        if a not in self._depth or b not in self._depth:
            return False
        node: Optional[str] = b
        while node is not None and self._depth[node] >= self._depth[a]:
            if node == a:
                return True
            node = self.idom[node] if node != self.root else None
        return False

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def children(self) -> Dict[str, List[str]]:
        """Tree children map (root excluded from any child list)."""
        result: Dict[str, List[str]] = {node: [] for node in self.idom}
        for node, parent in self.idom.items():
            if parent is not None and node != self.root:
                result[parent].append(node)
        return result

    def __contains__(self, node: str) -> bool:
        return node in self.idom


def _run_chk(
    nodes_postorder: List[str],
    preds: Dict[str, List[str]],
    root: str,
) -> Dict[str, Optional[str]]:
    """Core CHK fixed-point over the given postorder."""
    index = {name: i for i, name in enumerate(nodes_postorder)}
    idom: Dict[str, Optional[str]] = {root: root}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] < index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] < index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    order = [n for n in reversed(nodes_postorder) if n != root]
    changed = True
    while changed:
        changed = False
        for node in order:
            candidates = [p for p in preds[node] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    idom[root] = None
    return idom


def dominators(cfg: CFGView) -> DominatorTree:
    """Dominator tree of ``cfg`` (unreachable blocks are absent)."""
    order = postorder(cfg)
    idom = _run_chk(order, cfg.preds, cfg.entry)
    return DominatorTree(idom, cfg.entry)


def post_dominators(cfg: CFGView) -> DominatorTree:
    """Post-dominator tree of ``cfg``.

    A virtual exit node (:data:`VIRTUAL_EXIT`) is added as the root, with an
    edge from every RET block.  Blocks that cannot reach any exit (infinite
    loops) are also wired to the virtual exit so the tree is total; this
    matches the usual engineering compromise in production compilers.
    """
    # Build the reversed graph: successors become predecessors.
    rsuccs: Dict[str, List[str]] = {name: [] for name in cfg.nodes()}
    rpreds: Dict[str, List[str]] = {name: list(cfg.succs[name]) for name in cfg.nodes()}
    for name in cfg.nodes():
        for succ in cfg.succs[name]:
            rsuccs[succ].append(name)

    rsuccs[VIRTUAL_EXIT] = list(cfg.exits)
    rpreds[VIRTUAL_EXIT] = []
    for exit_block in cfg.exits:
        rpreds[exit_block].append(VIRTUAL_EXIT)

    # Find blocks that cannot reach an exit and connect them.
    can_exit: Set[str] = set()
    work = list(cfg.exits)
    can_exit.update(cfg.exits)
    rpred_map: Dict[str, List[str]] = {name: [] for name in cfg.nodes()}
    for name in cfg.nodes():
        for succ in cfg.succs[name]:
            rpred_map[succ].append(name)
    while work:
        node = work.pop()
        for pred in cfg.preds[node]:
            if pred not in can_exit:
                can_exit.add(pred)
                work.append(pred)
    stranded = [name for name in cfg.nodes() if name not in can_exit]
    for name in stranded:
        rsuccs[VIRTUAL_EXIT].append(name)
        rpreds[name].append(VIRTUAL_EXIT)

    # Postorder on the reversed graph starting from the virtual exit.
    order: List[str] = []
    visited: Set[str] = {VIRTUAL_EXIT}
    stack: List[Tuple[str, int]] = [(VIRTUAL_EXIT, 0)]
    while stack:
        node, i = stack[-1]
        succs = rsuccs[node]
        if i < len(succs):
            stack[-1] = (node, i + 1)
            nxt = succs[i]
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, 0))
        else:
            stack.pop()
            order.append(node)

    idom = _run_chk(order, rpreds, VIRTUAL_EXIT)
    return DominatorTree(idom, VIRTUAL_EXIT)
