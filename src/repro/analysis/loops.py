"""Natural loop detection and the loop nesting forest.

A back edge is an edge ``latch -> header`` where ``header`` dominates
``latch``; the natural loop is the set of blocks that can reach the latch
without passing through the header.  Multiple back edges to one header are
merged into a single loop (as in LLVM).  The frontend only emits reducible
control flow, so natural loops cover every cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFGView
from repro.analysis.dominators import DominatorTree, dominators
from repro.ir import Function, Instruction, Opcode


class Loop:
    """One natural loop of a function."""

    def __init__(self, func: Function, header: str, blocks: Set[str], latches: Set[str]):
        self.func = func
        self.header = header
        self.blocks: Set[str] = blocks
        self.latches: Set[str] = latches
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def id(self) -> Tuple[str, str]:
        """Stable program-wide identifier: (function name, header name)."""
        return (self.func.name, self.header)

    @property
    def depth(self) -> int:
        """Nesting depth within this function (outermost = 1)."""
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains_block(self, name: str) -> bool:
        return name in self.blocks

    def back_edges(self) -> List[Tuple[str, str]]:
        return [(latch, self.header) for latch in sorted(self.latches)]

    def exit_edges(self, cfg: CFGView) -> List[Tuple[str, str]]:
        """Edges leaving the loop: (inside block, outside successor)."""
        edges = []
        for name in sorted(self.blocks):
            for succ in cfg.succs[name]:
                if succ not in self.blocks:
                    edges.append((name, succ))
        return edges

    def exit_blocks(self, cfg: CFGView) -> List[str]:
        """Blocks inside the loop with a successor outside it."""
        return sorted({src for src, _ in self.exit_edges(cfg)})

    def instructions(self) -> List[Instruction]:
        """All instructions of the loop, in block order."""
        result: List[Instruction] = []
        for block in self.func.block_order():
            if block.name in self.blocks:
                result.extend(block.instructions)
        return result

    def call_sites(self) -> List[Instruction]:
        """CALL instructions directly inside the loop."""
        return [i for i in self.instructions() if i.opcode is Opcode.CALL]

    def __repr__(self) -> str:
        return f"<Loop {self.func.name}:{self.header} ({len(self.blocks)} blocks)>"


class LoopForest:
    """All natural loops of one function, with nesting structure."""

    def __init__(self, func: Function, loops: List[Loop]) -> None:
        self.func = func
        self.loops = loops
        self.by_header: Dict[str, Loop] = {l.header: l for l in loops}
        #: Innermost loop containing each block (or absent).
        self.innermost: Dict[str, Loop] = {}
        for loop in sorted(loops, key=lambda l: len(l.blocks), reverse=True):
            for name in loop.blocks:
                self.innermost[name] = loop

    @property
    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def loop_of(self, block_name: str) -> Optional[Loop]:
        """The innermost loop containing ``block_name``."""
        return self.innermost.get(block_name)

    def headers(self) -> Set[str]:
        return set(self.by_header)

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)


def find_loops(
    func: Function,
    cfg: Optional[CFGView] = None,
    dom: Optional[DominatorTree] = None,
) -> LoopForest:
    """Detect natural loops and build the nesting forest."""
    cfg = cfg or CFGView(func)
    dom = dom or dominators(cfg)

    # Collect back edges grouped by header.
    latches_by_header: Dict[str, Set[str]] = {}
    for name in cfg.nodes():
        if name not in dom:
            continue
        for succ in cfg.succs[name]:
            if succ in dom and dom.dominates(succ, name):
                latches_by_header.setdefault(succ, set()).add(name)

    loops: List[Loop] = []
    for header, latches in latches_by_header.items():
        blocks: Set[str] = {header}
        work = [l for l in latches if l != header]
        blocks.update(latches)
        while work:
            node = work.pop()
            for pred in cfg.preds[node]:
                if pred not in blocks and pred in dom:
                    blocks.add(pred)
                    work.append(pred)
        loops.append(Loop(func, header, blocks, set(latches)))

    # Nesting: parent = smallest strictly containing loop.
    loops.sort(key=lambda l: len(l.blocks))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1:]:
            if inner.header in outer.blocks and inner is not outer:
                inner.parent = outer
                outer.children.append(inner)
                break

    return LoopForest(func, loops)
