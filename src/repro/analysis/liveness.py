"""Virtual-register liveness.

HELIX Step 2 uses liveness to find *loop boundary live variables*: values
produced outside a loop and consumed inside (live-in), produced inside and
consumed after (live-out), and values carried between iterations (live
along the back edge).  All three must move to shared memory when the loop
is parallelized (Step 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from repro.analysis.cfg import CFGView
from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.ir import Function
from repro.ir.operands import VReg


@dataclass
class LivenessInfo:
    """Per-block liveness facts over VReg uids."""

    live_in: Dict[str, FrozenSet[int]]
    live_out: Dict[str, FrozenSet[int]]
    #: uid -> representative VReg (for reporting / rewriting).
    regs: Dict[int, VReg]

    def live_at_entry(self, block: str) -> FrozenSet[int]:
        return self.live_in.get(block, frozenset())

    def live_at_exit(self, block: str) -> FrozenSet[int]:
        return self.live_out.get(block, frozenset())


def block_use_def(block_instrs) -> Tuple[Set[int], Set[int]]:
    """(upward-exposed uses, defs) of a straight-line instruction list."""
    uses: Set[int] = set()
    defs: Set[int] = set()
    for instr in block_instrs:
        for reg in instr.uses():
            if reg.uid not in defs:
                uses.add(reg.uid)
        if instr.dest is not None:
            defs.add(instr.dest.uid)
    return uses, defs


def compute_liveness(func: Function, cfg: CFGView = None) -> LivenessInfo:
    """Classic backward may liveness over virtual registers."""
    cfg = cfg or CFGView(func)

    use: Dict[str, Set[int]] = {}
    defs: Dict[str, Set[int]] = {}
    regs: Dict[int, VReg] = {}
    for name, block in func.blocks.items():
        u, d = block_use_def(block.instructions)
        use[name] = u
        defs[name] = d
        for instr in block.instructions:
            if instr.dest is not None:
                regs[instr.dest.uid] = instr.dest
            for reg in instr.uses():
                regs[reg.uid] = reg
    for param in func.params:
        regs[param.uid] = param

    def transfer(name: str, live_out: FrozenSet[int]) -> FrozenSet[int]:
        return frozenset((set(live_out) - defs[name]) | use[name])

    problem = DataflowProblem(
        direction="backward",
        meet="union",
        transfer=transfer,
        boundary=frozenset(),
    )
    result = solve_dataflow(cfg, problem)
    # For backward problems the solver's "inputs" are facts at block exit.
    return LivenessInfo(live_in=result.outputs, live_out=result.inputs, regs=regs)


def live_across_edge(
    liveness: LivenessInfo, src: str, dst: str, func: Function
) -> FrozenSet[int]:
    """Registers live along the edge ``src -> dst``.

    Approximated as live-in of ``dst`` (exact for our purposes: the HELIX
    passes only query loop back edges and loop exit edges).
    """
    return liveness.live_at_entry(dst)
