"""Program analyses used by the HELIX transformation.

Everything here is a from-scratch implementation of the classical analyses
the paper relies on:

* :mod:`repro.analysis.cfg` -- CFG views, reachability, traversal orders.
* :mod:`repro.analysis.dominators` -- dominator and post-dominator trees
  (iterative Cooper-Harvey-Kennedy).
* :mod:`repro.analysis.loops` -- natural loops and the loop nesting forest.
* :mod:`repro.analysis.dataflow` -- a generic iterative dataflow framework.
* :mod:`repro.analysis.liveness` -- virtual-register liveness.
* :mod:`repro.analysis.reaching` -- reaching definitions.
* :mod:`repro.analysis.callgraph` -- the (direct) call graph.
* :mod:`repro.analysis.pointer` -- Andersen-style interprocedural pointer
  analysis (the role of [17] in the paper).
* :mod:`repro.analysis.induction` -- loop-invariant and induction variables.
* :mod:`repro.analysis.dependence` -- loop-carried data dependences
  (``D_data`` of Step 2).
* :mod:`repro.analysis.loopnest` -- program-wide static/dynamic loop
  nesting graphs (Section 2.2).
* :mod:`repro.analysis.manager` -- the versioned analysis manager: every
  analysis above, requested through one memoizing, invalidation-tracked
  service threaded through the whole compile path.
"""

from repro.analysis.cfg import CFGView, postorder, reachable_blocks, reverse_postorder
from repro.analysis.dominators import DominatorTree, dominators, post_dominators
from repro.analysis.loops import Loop, LoopForest, find_loops
from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.reaching import ReachingDefs, compute_reaching_defs
from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.pointer import PointsToResult, andersen_pointer_analysis
from repro.analysis.induction import InductionInfo, analyze_induction
from repro.analysis.dependence import (
    DataDependence,
    DependenceAnalysis,
    DependenceKind,
)
from repro.analysis.loopnest import (
    DynamicLoopNestGraph,
    LoopId,
    StaticLoopNestGraph,
    build_static_loop_nest_graph,
)
from repro.analysis.manager import (
    Analysis,
    AnalysisCounter,
    AnalysisManager,
    UncachedAnalysisManager,
)

__all__ = [
    "CFGView",
    "postorder",
    "reverse_postorder",
    "reachable_blocks",
    "DominatorTree",
    "dominators",
    "post_dominators",
    "Loop",
    "LoopForest",
    "find_loops",
    "DataflowProblem",
    "solve_dataflow",
    "LivenessInfo",
    "compute_liveness",
    "ReachingDefs",
    "compute_reaching_defs",
    "CallGraph",
    "build_callgraph",
    "PointsToResult",
    "andersen_pointer_analysis",
    "InductionInfo",
    "analyze_induction",
    "DataDependence",
    "DependenceKind",
    "DependenceAnalysis",
    "LoopId",
    "StaticLoopNestGraph",
    "DynamicLoopNestGraph",
    "build_static_loop_nest_graph",
    "Analysis",
    "AnalysisCounter",
    "AnalysisManager",
    "UncachedAnalysisManager",
]
