"""A generic iterative dataflow framework.

Problems describe direction (forward/backward), meet (union/intersection),
boundary and initial values, and per-block transfer functions over
``frozenset`` facts.  The solver runs a worklist to a fixed point.  The
HELIX passes instantiate it for liveness, reaching definitions, and the
"available waits" analysis of Step 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable

from repro.analysis.cfg import CFGView, reverse_postorder

Fact = FrozenSet[Hashable]


@dataclass
class DataflowProblem:
    """Declarative description of a dataflow problem.

    ``transfer(block_name, in_fact) -> out_fact`` must be monotone.
    ``meet`` is ``"union"`` (may) or ``"intersection"`` (must).
    For must-problems, ``universe`` supplies the top value used to
    initialize interior blocks.
    """

    direction: str  # "forward" | "backward"
    meet: str  # "union" | "intersection"
    transfer: Callable[[str, Fact], Fact]
    boundary: Fact = frozenset()
    universe: Fact = frozenset()

    def __post_init__(self) -> None:
        if self.direction not in ("forward", "backward"):
            raise ValueError(f"bad direction {self.direction!r}")
        if self.meet not in ("union", "intersection"):
            raise ValueError(f"bad meet {self.meet!r}")


@dataclass
class DataflowResult:
    """IN/OUT facts per block, in the problem's direction."""

    inputs: Dict[str, Fact]
    outputs: Dict[str, Fact]


def solve_dataflow(cfg: CFGView, problem: DataflowProblem) -> DataflowResult:
    """Iterate ``problem`` over ``cfg`` to a fixed point."""
    forward = problem.direction == "forward"
    if forward:
        edges_in = cfg.preds
        edges_out = cfg.succs
        boundary_nodes = {cfg.entry}
        order = reverse_postorder(cfg)
    else:
        edges_in = cfg.succs
        edges_out = cfg.preds
        boundary_nodes = set(cfg.exits)
        order = list(reversed(reverse_postorder(cfg)))

    nodes = [n for n in order]
    top = problem.universe if problem.meet == "intersection" else frozenset()
    inputs: Dict[str, Fact] = {}
    outputs: Dict[str, Fact] = {n: top for n in nodes}

    # For intersection problems a node with no in-edges (other than the
    # boundary) takes the boundary value; meet over an empty set is top.
    position = {name: i for i, name in enumerate(nodes)}
    work = list(nodes)
    in_work = set(nodes)
    while work:
        node = work.pop(0)
        in_work.discard(node)
        incoming = [p for p in edges_in[node] if p in position]
        if node in boundary_nodes and not incoming:
            in_fact = problem.boundary
        else:
            facts = [outputs[p] for p in incoming]
            if node in boundary_nodes:
                facts.append(problem.boundary)
            if not facts:
                in_fact = top
            elif problem.meet == "union":
                merged = set()
                for fact in facts:
                    merged |= fact
                in_fact = frozenset(merged)
            else:
                merged = set(facts[0])
                for fact in facts[1:]:
                    merged &= fact
                in_fact = frozenset(merged)
        inputs[node] = in_fact
        out_fact = problem.transfer(node, in_fact)
        if out_fact != outputs[node]:
            outputs[node] = out_fact
            for succ in edges_out[node]:
                if succ in position and succ not in in_work:
                    work.append(succ)
                    in_work.add(succ)
    return DataflowResult(inputs=inputs, outputs=outputs)
