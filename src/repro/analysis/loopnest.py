"""Program-wide loop nesting graphs (Section 2.2).

The *static loop nesting graph* extends the per-function loop nesting
forest across call edges: a loop in function ``g`` is a subloop of loop
``A`` in function ``f`` when ``g`` is (transitively, through loop-free
code) called from inside ``A``.  It is a graph rather than a tree because
a function can have multiple callers (the paper's 179.art example).

The *dynamic loop nesting graph* is the subgraph actually traversed during
a profiling run; the profiler records a parent->child edge whenever a loop
becomes active while another is active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.loops import Loop, LoopForest, find_loops
from repro.ir import Module, Opcode

#: Program-wide loop identity: (function name, header block name).
LoopId = Tuple[str, str]


@dataclass
class StaticLoopNestGraph:
    """The static nesting graph plus loop lookups."""

    module: Module
    graph: "nx.DiGraph"
    forests: Dict[str, LoopForest]
    loops: Dict[LoopId, Loop]

    def roots(self) -> List[LoopId]:
        """Loops with no parent in the graph (program-outermost)."""
        return sorted(n for n in self.graph.nodes if self.graph.in_degree(n) == 0)

    def children(self, loop_id: LoopId) -> List[LoopId]:
        return sorted(self.graph.successors(loop_id))

    def loop(self, loop_id: LoopId) -> Loop:
        return self.loops[loop_id]

    def nesting_level(self, loop_id: LoopId) -> int:
        """1-based minimum distance from a root (paper's nesting level)."""
        level = 1
        frontier = {loop_id}
        seen = set(frontier)
        while frontier:
            if any(self.graph.in_degree(n) == 0 for n in frontier):
                return level
            parents: Set[LoopId] = set()
            for node in frontier:
                parents.update(self.graph.predecessors(node))
            parents -= seen
            if not parents:
                return level
            seen |= parents
            frontier = parents
            level += 1
        return level


def build_static_loop_nest_graph(
    module: Module, callgraph: Optional[CallGraph] = None
) -> StaticLoopNestGraph:
    """Construct the static loop nesting graph of ``module``."""
    callgraph = callgraph or build_callgraph(module)
    forests: Dict[str, LoopForest] = {}
    loops: Dict[LoopId, Loop] = {}
    for func in module.functions.values():
        forest = find_loops(func)
        forests[func.name] = forest
        for loop in forest:
            loops[loop.id] = loop

    graph = nx.DiGraph()
    for loop_id in loops:
        graph.add_node(loop_id)

    # reachable_top_loops(f): top-level loops of f plus those of functions
    # called from f outside any loop, transitively.
    cache: Dict[str, Set[LoopId]] = {}

    def reachable_top_loops(func_name: str, visiting: Set[str]) -> Set[LoopId]:
        if func_name in cache:
            return cache[func_name]
        if func_name in visiting or func_name not in module.functions:
            return set()
        visiting = visiting | {func_name}
        func = module.functions[func_name]
        forest = forests[func_name]
        result: Set[LoopId] = {loop.id for loop in forest.top_level}
        for block in func.blocks.values():
            if forest.loop_of(block.name) is not None:
                continue
            for instr in block.instructions:
                if instr.opcode is Opcode.CALL and instr.callee:
                    result |= reachable_top_loops(instr.callee, visiting)
        cache[func_name] = result
        return result

    for loop in loops.values():
        # Direct in-function nesting.
        for child in loop.children:
            graph.add_edge(loop.id, child.id)
        # Calls made from this loop's own blocks (innermost = this loop).
        forest = forests[loop.func.name]
        for block_name in loop.blocks:
            if forest.loop_of(block_name) is not loop:
                continue
            block = loop.func.blocks[block_name]
            for instr in block.instructions:
                if instr.opcode is Opcode.CALL and instr.callee:
                    for child_id in reachable_top_loops(instr.callee, set()):
                        if child_id != loop.id:
                            graph.add_edge(loop.id, child_id)

    return StaticLoopNestGraph(
        module=module, graph=graph, forests=forests, loops=loops
    )


@dataclass
class DynamicLoopNestGraph:
    """The profiled subgraph of the static nesting graph.

    Nodes are loops observed executing; an edge ``A -> B`` means an
    activation of ``B`` started while ``A`` was the innermost active loop.
    """

    graph: "nx.DiGraph" = field(default_factory=nx.DiGraph)

    def record(self, parent: Optional[LoopId], child: LoopId) -> None:
        self.graph.add_node(child)
        if parent is not None:
            self.graph.add_edge(parent, child)

    def roots(self) -> List[LoopId]:
        return sorted(n for n in self.graph.nodes if self.graph.in_degree(n) == 0)

    def children(self, loop_id: LoopId) -> List[LoopId]:
        if loop_id not in self.graph:
            return []
        return sorted(self.graph.successors(loop_id))

    def nodes(self) -> List[LoopId]:
        return sorted(self.graph.nodes)

    def __contains__(self, loop_id: LoopId) -> bool:
        return loop_id in self.graph

    def to_dict(self) -> dict:
        return {
            "nodes": [list(n) for n in self.nodes()],
            "edges": sorted(
                [list(a), list(b)] for a, b in self.graph.edges
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DynamicLoopNestGraph":
        nest = cls()
        for node in data["nodes"]:
            nest.graph.add_node(tuple(node))
        for parent, child in data["edges"]:
            nest.graph.add_edge(tuple(parent), tuple(child))
        return nest
