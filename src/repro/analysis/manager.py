"""Versioned analysis manager (the new-pass-manager architecture).

Every analysis the HELIX pipeline consumes -- call graph, Andersen
points-to, loop forests, CFG snapshots, dominators, liveness, induction
classification, and the whole-module :class:`DependenceAnalysis` service
-- is requested through one shared :class:`AnalysisManager`:

    am = AnalysisManager()
    forest = am.get(LOOPS, func)        # or the am.loops(func) shorthand
    dep = am.get(DEPENDENCE, module)

The manager memoizes each result against the *version* of the IR object
it was computed from (:attr:`repro.ir.function.Function.version` /
:attr:`repro.ir.module.Module.version`).  Mutating passes bump those
versions (directly, or automatically through the block-level structural
APIs); the next ``get`` observes the mismatch, records an *invalidation*
and transparently recomputes.  A stale result is therefore never served,
and an analysis is recomputed at most once per mutation of its subject
rather than once per call site.

Function-level bumps propagate to the owning module (see
``Function._module``), so module-scoped analyses (callgraph, points-to,
dependence) are invalidated by any function edit while function-scoped
ones (CFG, loops, liveness) survive edits to *other* functions.

Observability: the manager counts hits/misses/invalidations and compute
wall-clock per analysis (:attr:`AnalysisManager.counters`), and mirrors
them into an attached :class:`~repro.evaluation.runner.StageStats` under
``analysis:<name>`` stage keys so they flow through the suite's
``--stats`` table and ``--report`` JSON.

Registering a new analysis means declaring one :class:`Analysis` spec:
its name, a compute callback ``(am, target, *args) -> result`` (which may
request other analyses through ``am``), and -- when requests carry extra
arguments, like the per-loop induction analysis -- a key function mapping
those arguments to a hashable cache key.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.cfg import CFGView
from repro.analysis.dependence import DependenceAnalysis
from repro.analysis.dominators import DominatorTree, dominators
from repro.analysis.induction import InductionInfo, analyze_induction
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.loops import Loop, LoopForest, find_loops
from repro.analysis.pointer import PointsToResult, andersen_pointer_analysis
from repro.ir import Function, Module
from repro.obs import REGISTRY, get_tracer


class Analysis:
    """One registered analysis: how to compute it and how to key requests.

    ``compute`` receives the requesting manager first, so an analysis can
    pull its own prerequisites through the cache (e.g. loops ask for the
    CFG and dominators).  ``key`` maps the extra ``get`` arguments to a
    hashable tuple; parameterless analyses use the default empty key.
    """

    __slots__ = ("name", "compute", "key")

    def __init__(
        self,
        name: str,
        compute: Callable[..., Any],
        key: Optional[Callable[[Tuple[Any, ...]], Tuple[Any, ...]]] = None,
    ) -> None:
        self.name = name
        self.compute = compute
        self.key = key or (lambda args: ())

    def __repr__(self) -> str:
        return f"<Analysis {self.name}>"


# -- the registry ----------------------------------------------------------------


def _compute_dependence(am: "AnalysisManager", module: Module) -> DependenceAnalysis:
    return DependenceAnalysis(
        module,
        callgraph=am.get(CALLGRAPH, module),
        points_to=am.get(POINTS_TO, module),
        manager=am,
    )


def _compute_induction(
    am: "AnalysisManager", func: Function, loop: Loop
) -> InductionInfo:
    cfg = am.get(CFG, func)
    dom = am.get(DOMINATORS, func)
    readonly = None
    module = func._module
    if module is not None:
        readonly = am.get(DEPENDENCE, module).readonly_globals
    return analyze_induction(func, loop, cfg, dom, readonly_symbols=readonly)


#: Module-scoped analyses (invalidated by any mutation in the program).
CALLGRAPH = Analysis("callgraph", lambda am, m: build_callgraph(m))
POINTS_TO = Analysis("points_to", lambda am, m: andersen_pointer_analysis(m))
DEPENDENCE = Analysis("dependence", _compute_dependence)

#: Function-scoped analyses (invalidated only by mutations of that function).
CFG = Analysis("cfg", lambda am, f: CFGView(f))
DOMINATORS = Analysis("dominators", lambda am, f: dominators(am.get(CFG, f)))
LOOPS = Analysis(
    "loops",
    lambda am, f: find_loops(f, am.get(CFG, f), am.get(DOMINATORS, f)),
)
LIVENESS = Analysis("liveness", lambda am, f: compute_liveness(f, am.get(CFG, f)))

#: Per-loop analysis, keyed by the loop header within its function.
INDUCTION = Analysis(
    "induction", _compute_induction, key=lambda args: (args[0].header,)
)


# -- counters --------------------------------------------------------------------


@dataclass
class AnalysisCounter:
    """Hit/miss/invalidation accounting of one analysis kind."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    wall_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "wall_seconds": self.wall_seconds,
        }


# -- the manager -----------------------------------------------------------------


class AnalysisManager:
    """Version-checked memoization of analyses over Functions/Modules.

    ``stats`` (optional) is a :class:`~repro.evaluation.runner.StageStats`
    (or anything with its ``record``/``invalidate`` methods): hits,
    misses and invalidations are mirrored there under ``analysis:<name>``
    stage keys on top of the local :attr:`counters`.
    """

    def __init__(self, stats: Optional[Any] = None) -> None:
        #: target object -> {(analysis name, *key): (version, result)}.
        #: Weak keys: caches die with the module/function they describe.
        self._cache: "WeakKeyDictionary[Any, Dict[Tuple, Tuple[int, Any]]]" = (
            WeakKeyDictionary()
        )
        self.counters: Dict[str, AnalysisCounter] = {}
        self.stats = stats

    # -- core protocol -----------------------------------------------------------

    def get(self, analysis: Analysis, target: Any, *args: Any) -> Any:
        """Return ``analysis`` of ``target``, recomputing only when the
        target's version moved since the cached result was produced."""
        version = target.version
        per_target = self._cache.get(target)
        if per_target is None:
            per_target = {}
            self._cache[target] = per_target
        key = (analysis.name,) + tuple(analysis.key(args))
        entry = per_target.get(key)
        if entry is not None:
            if entry[0] == version:
                self._count_hit(analysis.name)
                return entry[1]
            self._count_invalidation(analysis.name)
        start = time.perf_counter()
        with get_tracer().span(f"analysis.{analysis.name}", cat="analysis"):
            result = analysis.compute(self, target, *args)
        seconds = time.perf_counter() - start
        # Keyed on the pre-compute version: if a compute callback ever
        # mutated its subject, the entry would be stale-on-arrival and
        # recomputed next time -- the safe direction.
        per_target[key] = (version, result)
        self._count_miss(analysis.name, seconds)
        return result

    def counter(self, name: str) -> AnalysisCounter:
        counter = self.counters.get(name)
        if counter is None:
            counter = AnalysisCounter()
            self.counters[name] = counter
        return counter

    def stats_dict(self) -> Dict[str, dict]:
        """Machine-readable per-analysis counters (sorted by name)."""
        return {
            name: self.counters[name].as_dict()
            for name in sorted(self.counters)
        }

    # -- shorthands --------------------------------------------------------------

    def callgraph(self, module: Module) -> CallGraph:
        return self.get(CALLGRAPH, module)

    def points_to(self, module: Module) -> PointsToResult:
        return self.get(POINTS_TO, module)

    def dependence(self, module: Module) -> DependenceAnalysis:
        return self.get(DEPENDENCE, module)

    def cfg(self, func: Function) -> CFGView:
        return self.get(CFG, func)

    def dominators(self, func: Function) -> DominatorTree:
        return self.get(DOMINATORS, func)

    def loops(self, func: Function) -> LoopForest:
        return self.get(LOOPS, func)

    def liveness(self, func: Function) -> LivenessInfo:
        return self.get(LIVENESS, func)

    def induction(self, func: Function, loop: Loop) -> InductionInfo:
        return self.get(INDUCTION, func, loop)

    # -- accounting --------------------------------------------------------------

    def _count_hit(self, name: str) -> None:
        self.counter(name).hits += 1
        REGISTRY.inc(f"analysis.{name}.hits")
        if self.stats is not None:
            self.stats.record(f"analysis:{name}", "memory")

    def _count_miss(self, name: str, seconds: float) -> None:
        counter = self.counter(name)
        counter.misses += 1
        counter.wall_seconds += seconds
        REGISTRY.inc(f"analysis.{name}.misses")
        if self.stats is not None:
            self.stats.record(f"analysis:{name}", "compute", seconds)

    def _count_invalidation(self, name: str) -> None:
        self.counter(name).invalidations += 1
        REGISTRY.inc(f"analysis.{name}.invalidations")
        if self.stats is not None:
            self.stats.invalidate(f"analysis:{name}")


class UncachedAnalysisManager(AnalysisManager):
    """Recomputes every request -- the pre-manager behavior.

    Used as the legacy reference side of the migration differential tests
    and as the "before" configuration of the pass benchmark
    (``repro bench-passes``).
    """

    def get(self, analysis: Analysis, target: Any, *args: Any) -> Any:
        start = time.perf_counter()
        result = analysis.compute(self, target, *args)
        self._count_miss(analysis.name, time.perf_counter() - start)
        return result
