"""Loop-carried data-dependence analysis (HELIX Step 2).

Produces ``D_data``: the set of dependences that must be synchronized when
the loop's iterations run on separate cores.  Following the paper:

* Only *memory* dependences and cross-iteration *register* RAW dependences
  are considered.  False (WAW/WAR) dependences through registers or the
  call stack are excluded, because each iteration runs on its own core with
  private registers and a private stack.
* Memory dependences are detected with the interprocedural pointer
  analysis; calls inside the loop are treated as accessing the transitive
  mod/ref sets of their callees (the call instruction itself becomes the
  dependence endpoint).
* Dependences involving only invariant or induction variables are dropped.
* Affine subscripts over a constant-step basic induction variable are
  disambiguated: two accesses ``a[c*i + k]`` with identical subscript
  expressions touch a different element each iteration and are therefore
  *not* loop-carried (this is what makes DOALL-style loops come out clean).

Each dependence carries *source* instructions (writers) and *sink*
instructions (readers/writers); Step 4 builds one sequential segment per
dependence from the region of the loop body that can still reach either
endpoint set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.manager import AnalysisManager

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.cfg import CFGView
from repro.analysis.induction import InductionInfo, analyze_induction
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.loops import Loop
from repro.analysis.pointer import LocKey, PointsToResult, andersen_pointer_analysis
from repro.ir import Function, Instruction, Module, Opcode
from repro.ir.operands import Const, Operand, Symbol, VReg


class DependenceKind(enum.Enum):
    """Dependence classes that require synchronization."""

    RAW = "raw"
    WAW = "waw"
    WAR = "war"
    REGISTER = "register"


@dataclass
class DataDependence:
    """One loop-carried dependence ``d`` of a loop.

    ``sources`` are the instructions playing the role of ``a`` in the
    paper's ``d = (a, b)`` (producers / first accesses), ``sinks`` the
    instructions playing ``b``.  A dependence may aggregate several
    conflicting instruction pairs on the same memory location; Step 4
    treats the union of endpoints as the guarded set.
    """

    index: int
    kind: DependenceKind
    location: str
    sources: List[Instruction]
    sinks: List[Instruction]
    #: For REGISTER dependences: the carried vreg uid.
    register_uid: Optional[int] = None
    #: Words transferred when the dependence actually forwards data
    #: (RAW and REGISTER forward one word; WAW/WAR forward none).
    transfer_words: int = 0

    def endpoints(self) -> List[Instruction]:
        """All instructions participating in the dependence."""
        seen = set()
        result = []
        for instr in list(self.sources) + list(self.sinks):
            if instr.uid not in seen:
                seen.add(instr.uid)
                result.append(instr)
        return result

    def __repr__(self) -> str:
        return (
            f"<Dep d{self.index} {self.kind.value} on {self.location} "
            f"({len(self.sources)} src / {len(self.sinks)} sink)>"
        )


# -- affine subscript analysis ---------------------------------------------------


#: A symbolic term key: a register uid, a value-numbered read-only load
#: ``('ro', symbol, index-key)``, or a product ``('*', key, key)``.
TermKey = object


def _sort_terms(terms) -> Tuple:
    return tuple(sorted(terms.items(), key=lambda kv: repr(kv[0])))


@dataclass(frozen=True)
class AffineIndex:
    """Canonical form ``coeff * IV + const + sum(invariant terms)``.

    Term keys are value-based: two loads of the same read-only global
    unify, and a product of invariants keys on its (sorted) factor keys,
    so syntactically distinct but value-identical subscripts compare
    equal.
    """

    iv_uid: Optional[int]
    coeff: int
    const: int
    #: Sorted tuple of (term key, coefficient).
    terms: Tuple[Tuple[TermKey, int], ...]

    def same_shape(self, other: "AffineIndex") -> bool:
        """Identical symbolic expression."""
        return (
            self.iv_uid == other.iv_uid
            and self.coeff == other.coeff
            and self.const == other.const
            and self.terms == other.terms
        )

    @property
    def is_pure(self) -> bool:
        """No induction-variable component."""
        return self.iv_uid is None or self.coeff == 0

    def single_term(self) -> Optional[Tuple[TermKey, int]]:
        """The (key, coeff) when this is exactly one term, const 0."""
        if self.is_pure and self.const == 0 and len(self.terms) == 1:
            return self.terms[0]
        return None


def _single_loop_def(
    uid: int, induction: InductionInfo
) -> Optional[Instruction]:
    defs = induction.defs_in_loop.get(uid, [])
    if len(defs) == 1:
        return defs[0]
    return None


def _term_key(uid: int, induction: InductionInfo, depth: int = 0):
    """Value-based key for an invariant register.

    A load of a read-only global keys on (symbol, index) so separate
    loads of the same location unify; MOV chains are followed.
    """
    if depth > 6:
        return uid
    definition = _single_loop_def(uid, induction)
    if definition is None:
        return uid
    if definition.opcode is Opcode.MOV and isinstance(
        definition.args[0], VReg
    ):
        return _term_key(definition.args[0].uid, induction, depth + 1)
    if (
        definition.opcode is Opcode.LOADG
        and isinstance(definition.args[0], Symbol)
        and definition.args[0].is_global
        and definition.args[0].name in induction.readonly_symbols
    ):
        index = definition.args[1]
        if isinstance(index, Const):
            return ("ro", definition.args[0].name, index.value)
        if isinstance(index, VReg) and induction.is_invariant(index.uid):
            return (
                "ro",
                definition.args[0].name,
                _term_key(index.uid, induction, depth + 1),
            )
    return uid


def affine_of(
    operand: Operand,
    induction: InductionInfo,
    depth: int = 0,
) -> Optional[AffineIndex]:
    """Canonicalize a subscript operand, or None if not affine."""
    if depth > 12:
        return None
    if isinstance(operand, Const):
        if isinstance(operand.value, int):
            return AffineIndex(None, 0, operand.value, ())
        return None
    if not isinstance(operand, VReg):
        return None
    uid = operand.uid
    iv = induction.basic_ivs.get(uid)
    if iv is not None and iv.disambiguates:
        return AffineIndex(uid, 1, 0, ())
    definition = _single_loop_def(uid, induction)
    if induction.is_invariant(uid):
        # Decompose invariant computations so value-identical expressions
        # built from different temporaries still unify.
        if definition is not None and definition.opcode in (
            Opcode.MOV,
            Opcode.ADD,
            Opcode.SUB,
            Opcode.MUL,
        ):
            decomposed = _affine_of_instr(definition, induction, depth + 1)
            if decomposed is not None:
                return decomposed
        return AffineIndex(None, 0, 0, ((_term_key(uid, induction), 1),))
    if definition is None:
        return None
    return _affine_of_instr(definition, induction, depth + 1)


def _combine(
    a: AffineIndex, b: AffineIndex, sign: int
) -> Optional[AffineIndex]:
    if a.iv_uid is not None and b.iv_uid is not None and a.iv_uid != b.iv_uid:
        return None
    iv = a.iv_uid if a.iv_uid is not None else b.iv_uid
    terms: Dict = dict(a.terms)
    for key, coeff in b.terms:
        terms[key] = terms.get(key, 0) + sign * coeff
    terms = {key: c for key, c in terms.items() if c != 0}
    return AffineIndex(
        iv,
        a.coeff + sign * b.coeff,
        a.const + sign * b.const,
        _sort_terms(terms),
    )


def _affine_of_instr(
    instr: Instruction, induction: InductionInfo, depth: int
) -> Optional[AffineIndex]:
    opcode = instr.opcode
    if opcode is Opcode.MOV:
        return affine_of(instr.args[0], induction, depth)
    if opcode in (Opcode.ADD, Opcode.SUB):
        a = affine_of(instr.args[0], induction, depth)
        b = affine_of(instr.args[1], induction, depth)
        if a is None or b is None:
            return None
        return _combine(a, b, -1 if opcode is Opcode.SUB else 1)
    if opcode is Opcode.MUL:
        a = affine_of(instr.args[0], induction, depth)
        b = affine_of(instr.args[1], induction, depth)
        if a is None or b is None:
            return None
        # Scaling by a literal constant stays affine.
        for scalar, other in ((a, b), (b, a)):
            if scalar.iv_uid is None and not scalar.terms:
                return AffineIndex(
                    other.iv_uid,
                    other.coeff * scalar.const,
                    other.const * scalar.const,
                    _sort_terms(
                        {key: c * scalar.const for key, c in other.terms}
                    ),
                )
        # A product of two single invariant terms becomes one opaque
        # product term (``row * W``).
        ta, tb = a.single_term(), b.single_term()
        if ta is not None and tb is not None:
            keys = sorted((ta[0], tb[0]), key=repr)
            return AffineIndex(
                None, 0, 0, ((("*", keys[0], keys[1]), ta[1] * tb[1]),)
            )
        return None
    return None


# -- mod/ref summaries --------------------------------------------------------------


@dataclass
class ModRef:
    """Transitive may-write / may-read location sets of a function."""

    mod: FrozenSet[LocKey]
    ref: FrozenSet[LocKey]


def compute_mod_ref(
    module: Module, callgraph: CallGraph, points_to: PointsToResult
) -> Dict[str, ModRef]:
    """Fixed-point mod/ref summaries over the call graph."""
    mod: Dict[str, Set[LocKey]] = {name: set() for name in module.functions}
    ref: Dict[str, Set[LocKey]] = {name: set() for name in module.functions}
    for func in module.functions.values():
        for instr in func.instructions():
            if instr.writes_memory:
                mod[func.name] |= points_to.locations_accessed(func.name, instr)
            elif instr.reads_memory:
                ref[func.name] |= points_to.locations_accessed(func.name, instr)
    changed = True
    while changed:
        changed = False
        for func_name in module.functions:
            for callee in callgraph.callees(func_name):
                if callee not in mod:
                    continue
                if not mod[callee] <= mod[func_name]:
                    mod[func_name] |= mod[callee]
                    changed = True
                if not ref[callee] <= ref[func_name]:
                    ref[func_name] |= ref[callee]
                    changed = True
    return {
        name: ModRef(frozenset(mod[name]), frozenset(ref[name]))
        for name in module.functions
    }


def compute_readonly_globals(
    module: Module, points_to: PointsToResult
) -> "Set[str]":
    """Global symbols never stored to anywhere in the module.

    Loads from these are effectively constants -- they make subscript
    expressions like ``i * W + j`` affine even though ``W`` lives in
    memory."""
    readonly = {
        name for name, sym in module.globals.items() if not sym.synthetic
    }
    for func in module.functions.values():
        for instr in func.instructions():
            if instr.opcode is Opcode.STOREG:
                symbol = instr.args[0]
                if isinstance(symbol, Symbol) and symbol.is_global:
                    readonly.discard(symbol.name)
            elif instr.opcode is Opcode.STOREP:
                for loc in points_to.locations_accessed(func.name, instr):
                    if loc[0] is None:
                        readonly.discard(loc[1])
    return readonly


# -- the analysis proper -----------------------------------------------------------


@dataclass
class _Access:
    """One memory-touching instruction inside a loop."""

    instr: Instruction
    writes: FrozenSet[LocKey]
    reads: FrozenSet[LocKey]
    #: Affine subscript when the access is a direct array op; None for
    #: pointer accesses and calls (never disambiguated).
    affine: Optional[AffineIndex]
    symbol: Optional[str]


class DependenceAnalysis:
    """Whole-module dependence analysis service.

    Construct once per module; :meth:`loop_dependences` answers per-loop
    queries (the loop-selection pass asks about every candidate loop).
    """

    def __init__(
        self,
        module: Module,
        callgraph: Optional[CallGraph] = None,
        points_to: Optional[PointsToResult] = None,
        manager: Optional["AnalysisManager"] = None,
    ) -> None:
        self.module = module
        self.manager = manager
        self.callgraph = callgraph or build_callgraph(module)
        self.points_to = points_to or andersen_pointer_analysis(module)
        self.mod_ref = compute_mod_ref(module, self.callgraph, self.points_to)
        self.readonly_globals = compute_readonly_globals(
            module, self.points_to
        )

    # -- helpers ---------------------------------------------------------------

    def _cfg(self, func: Function) -> CFGView:
        if self.manager is not None:
            return self.manager.cfg(func)
        return CFGView(func)

    def _induction(
        self, func: Function, loop: Loop, cfg: CFGView
    ) -> InductionInfo:
        if self.manager is not None:
            return self.manager.induction(func, loop)
        return analyze_induction(
            func, loop, cfg, readonly_symbols=self.readonly_globals
        )

    def _liveness(self, func: Function, cfg: CFGView) -> LivenessInfo:
        if self.manager is not None:
            return self.manager.liveness(func)
        return compute_liveness(func, cfg)

    def _collect_accesses(
        self, func: Function, loop: Loop, induction: InductionInfo
    ) -> List[_Access]:
        accesses: List[_Access] = []
        for block in func.block_order():
            if block.name not in loop.blocks:
                continue
            for instr in block.instructions:
                if instr.opcode in (Opcode.LOADG, Opcode.STOREG):
                    symbol = instr.args[0]
                    assert isinstance(symbol, Symbol)
                    locs = self.points_to.locations_accessed(func.name, instr)
                    affine = affine_of(instr.args[1], induction)
                    if instr.opcode is Opcode.STOREG:
                        accesses.append(
                            _Access(instr, locs, frozenset(), affine, symbol.name)
                        )
                    else:
                        accesses.append(
                            _Access(instr, frozenset(), locs, affine, symbol.name)
                        )
                elif instr.opcode in (Opcode.LOADP, Opcode.STOREP):
                    locs = self.points_to.locations_accessed(func.name, instr)
                    if instr.opcode is Opcode.STOREP:
                        accesses.append(
                            _Access(instr, locs, frozenset(), None, None)
                        )
                    else:
                        accesses.append(
                            _Access(instr, frozenset(), locs, None, None)
                        )
                elif instr.opcode is Opcode.CALL and instr.callee in self.mod_ref:
                    summary = self.mod_ref[instr.callee]
                    if summary.mod or summary.ref:
                        accesses.append(
                            _Access(instr, summary.mod, summary.ref, None, None)
                        )
        return accesses

    @staticmethod
    def _disambiguated(a: _Access, b: _Access) -> bool:
        """True when the pair provably has no loop-carried conflict."""
        if a.affine is None or b.affine is None:
            return False
        if a.symbol is None or a.symbol != b.symbol:
            return False
        fa, fb = a.affine, b.affine
        if fa.iv_uid != fb.iv_uid or fa.coeff != fb.coeff or fa.terms != fb.terms:
            return False
        if fa.iv_uid is None:
            # Pure (symbolically identical) offsets: distinct constants
            # never collide; equal constants collide every iteration.
            return fa.const != fb.const
        # Same IV, same nonzero coefficient: identical expressions touch a
        # fresh element each iteration -> not loop-carried.
        return fa.const == fb.const

    def _carried_register_deps(
        self,
        func: Function,
        loop: Loop,
        induction: InductionInfo,
        liveness: LivenessInfo,
        next_index: int,
    ) -> List[DataDependence]:
        """Cross-iteration register RAW dependences (minus exempt ones)."""
        carried_uids: Set[int] = set()
        header_live = liveness.live_at_entry(loop.header)
        for uid in header_live:
            if uid in induction.defs_in_loop and not induction.sync_exempt(uid):
                carried_uids.add(uid)

        deps: List[DataDependence] = []
        for uid in sorted(carried_uids):
            sources = induction.defs_in_loop[uid]
            sinks = _upward_exposed_uses(func, loop, uid)
            if not sinks:
                continue
            reg = liveness.regs.get(uid)
            name = str(reg) if reg is not None else f"%u{uid}"
            deps.append(
                DataDependence(
                    index=next_index + len(deps),
                    kind=DependenceKind.REGISTER,
                    location=name,
                    sources=list(sources),
                    sinks=sinks,
                    register_uid=uid,
                    transfer_words=1,
                )
            )
        return deps

    # -- public API ------------------------------------------------------------

    def loop_dependences(
        self,
        func: Function,
        loop: Loop,
        induction: Optional[InductionInfo] = None,
        liveness: Optional[LivenessInfo] = None,
        max_pairs_per_location: int = 6,
    ) -> List[DataDependence]:
        """Compute ``D_data`` for ``loop``.

        Memory dependences are grouped per abstract location; if a location
        has more than ``max_pairs_per_location`` conflicting writer/sink
        pairs they are aggregated into a single dependence (all writers as
        sources, all accessors as sinks) to bound segment count -- Step 6
        would merge them anyway.
        """
        cfg = self._cfg(func)
        induction = induction or self._induction(func, loop, cfg)
        liveness = liveness or self._liveness(func, cfg)
        accesses = self._collect_accesses(func, loop, induction)

        # Group accesses by abstract location.
        by_location: Dict[LocKey, List[_Access]] = {}
        for access in accesses:
            for loc in access.writes | access.reads:
                by_location.setdefault(loc, []).append(access)

        deps: List[DataDependence] = []
        seen_pairs: Set[Tuple[int, int]] = set()
        for loc in sorted(by_location):
            group = by_location[loc]
            writers = [a for a in group if loc in a.writes]
            if not writers:
                continue
            pairs: List[Tuple[_Access, _Access, DependenceKind]] = []
            for writer in writers:
                for other in group:
                    if other.instr is writer.instr:
                        # Self-conflict: the same instruction touching the
                        # location in successive iterations (a call with
                        # the location in its mod/ref summary, or a store
                        # to a non-affine subscript) is loop-carried.
                        if self._disambiguated(writer, writer):
                            continue
                        key = (writer.instr.uid, writer.instr.uid)
                        if key in seen_pairs:
                            continue
                        seen_pairs.add(key)
                        kind = (
                            DependenceKind.RAW
                            if loc in writer.reads
                            else DependenceKind.WAW
                        )
                        pairs.append((writer, writer, kind))
                        continue
                    if self._disambiguated(writer, other):
                        continue
                    key = (writer.instr.uid, other.instr.uid)
                    if key in seen_pairs:
                        continue
                    seen_pairs.add(key)
                    if loc in other.writes:
                        kind = DependenceKind.WAW
                    else:
                        kind = DependenceKind.RAW
                    pairs.append((writer, other, kind))
            if not pairs:
                continue
            loc_name = f"{loc[1]}" if loc[0] is None else f"{loc[0]}.{loc[1]}"
            if len(pairs) > max_pairs_per_location:
                sources = _dedup([w.instr for w, _o, _k in pairs])
                sinks = _dedup([o.instr for _w, o, _k in pairs])
                any_raw = any(k is DependenceKind.RAW for _w, _o, k in pairs)
                deps.append(
                    DataDependence(
                        index=len(deps),
                        kind=DependenceKind.RAW if any_raw else DependenceKind.WAW,
                        location=loc_name,
                        sources=sources,
                        sinks=sinks,
                        transfer_words=1 if any_raw else 0,
                    )
                )
            else:
                for writer, other, kind in pairs:
                    deps.append(
                        DataDependence(
                            index=len(deps),
                            kind=kind,
                            location=loc_name,
                            sources=[writer.instr],
                            sinks=[other.instr],
                            transfer_words=1 if kind is DependenceKind.RAW else 0,
                        )
                    )

        deps.extend(
            self._carried_register_deps(func, loop, induction, liveness, len(deps))
        )
        for i, dep in enumerate(deps):
            dep.index = i
        return deps

    def loop_dependence_statistics(
        self, func: Function, loop: Loop
    ) -> Tuple[int, int]:
        """(alias pairs examined, pairs that are loop-carried).

        The Table 1 "loop-carried dependences %" statistic: among all
        aliasing writer/accessor pairs inside the loop, how many actually
        cross iterations (survive the affine subscript disambiguation)."""
        cfg = self._cfg(func)
        induction = self._induction(func, loop, cfg)
        accesses = self._collect_accesses(func, loop, induction)
        by_location: Dict[LocKey, List[_Access]] = {}
        for access in accesses:
            for loc in access.writes | access.reads:
                by_location.setdefault(loc, []).append(access)
        examined = 0
        carried = 0
        counted: Set[Tuple[int, int]] = set()
        for group in by_location.values():
            writers = [a for a in group if a.writes]
            for writer in writers:
                for other in group:
                    if other.instr is writer.instr:
                        continue
                    key = (writer.instr.uid, other.instr.uid)
                    if key in counted:
                        continue
                    counted.add(key)
                    examined += 1
                    if not self._disambiguated(writer, other):
                        carried += 1
        # Register flows: every upward-exposed carried register counts as
        # carried; induction/invariant-exempt ones count as examined only.
        liveness = self._liveness(func, cfg)
        header_live = liveness.live_at_entry(loop.header)
        for uid in header_live:
            if uid not in induction.defs_in_loop:
                continue
            examined += 1
            if not induction.sync_exempt(uid):
                carried += 1
        return examined, carried


def _upward_exposed_uses(
    func: Function, loop: Loop, uid: int
) -> List[Instruction]:
    """Uses of ``uid`` inside ``loop`` reachable from the header before any
    in-iteration redefinition -- exactly the consumers of the *previous*
    iteration's value."""
    # Forward may-analysis over the loop body (back edges not followed):
    # "the header-entry value of uid is still current".
    valid_in: Dict[str, bool] = {name: False for name in loop.blocks}
    valid_in[loop.header] = True
    kills: Dict[str, bool] = {}
    for name in loop.blocks:
        kills[name] = any(
            instr.dest is not None and instr.dest.uid == uid
            for instr in func.blocks[name].instructions
        )
    changed = True
    while changed:
        changed = False
        for name in loop.blocks:
            if not valid_in[name] or kills[name]:
                continue
            block = func.blocks[name]
            for succ in block.successor_names():
                if succ in loop.blocks and succ != loop.header:
                    if not valid_in[succ]:
                        valid_in[succ] = True
                        changed = True
    sinks: List[Instruction] = []
    for block in func.block_order():
        if block.name not in loop.blocks or not valid_in[block.name]:
            continue
        for instr in block.instructions:
            if any(reg.uid == uid for reg in instr.uses()):
                sinks.append(instr)
            if instr.dest is not None and instr.dest.uid == uid:
                break
    return sinks


def _dedup(instrs: Sequence[Instruction]) -> List[Instruction]:
    seen: Set[int] = set()
    result: List[Instruction] = []
    for instr in instrs:
        if instr.uid not in seen:
            seen.add(instr.uid)
            result.append(instr)
    return result
