"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE.mc``            -- compile and run a MiniC program sequentially.
* ``parallelize FILE.mc``    -- full HELIX pipeline + simulated speedup.
* ``compile FILE.mc``        -- profile, select and transform without
  executing; ``--pass-stats`` prints the analysis manager's per-analysis
  hit/miss/invalidation table.
* ``ir FILE.mc``             -- dump the compiled IR.
* ``bench NAME``             -- run one of the 13 suite benchmarks.
* ``bench-interp``           -- time the tree-walking, pre-decoded and
  superblock code-generated interpreter backends (cold and warm lanes,
  plus an instrumented *hooked* lane) and write ``BENCH_interp.json``;
  ``--quick`` restricts to a small CI-friendly subset, ``--min-speedup
  X`` fails the run if any program's speedup drops below ``X``,
  ``--min-geomean-speedup X`` gates the aggregate and
  ``--min-hooked-speedup X`` gates the hooked lane's geomean over the
  hooked decoded variant.
* ``bench-passes``           -- time cold benchmark pipelines with the
  versioned analysis cache against recompute-every-request and write
  ``BENCH_passes.json``.
* ``bench-sched``            -- time multi-machine sweep replay with the
  compiled trace scheduler against the reference per-event engine and
  write ``BENCH_sched.json``; every timed pair is also a field-exact
  differential check.
* ``suite``                  -- Figure 9 over the whole suite; supports
  ``--jobs N`` (process-parallel pipelines), ``--cache-dir PATH``
  (persistent artifact cache), ``--stats`` (per-stage wall-clock and
  cache-hit counters, including per-analysis rows) and
  ``--report PATH`` (JSON record with ``analyses``, ``environment``
  and per-core ``timeline`` blocks).
* ``trace NAME``             -- run one benchmark pipeline under the
  tracer and export Chrome trace-event JSON (loadable in
  ui.perfetto.dev or about:tracing); ``--sim-timeline`` adds one
  simulated-time track per core.
* ``bench-diff BASE HEAD``   -- regression-diff two recorded runs from
  the versioned results store (or raw report files); exits nonzero
  when any ratio metric drops by more than its tolerance.  Every
  ``bench-*`` / ``suite --report`` invocation records its run into the
  store (``--results-dir`` / ``$REPRO_RESULTS_DIR`` /
  ``.repro-results``), so history accumulates by default;
  ``bench-diff --list`` shows it.
* ``serve``                  -- long-running compile/run daemon: a
  JSON-lines protocol over a Unix socket (or ``--host``/``--port``
  TCP) through which concurrent clients submit compile/run/suite/trace
  jobs and stream back observer events; all jobs share one
  content-addressed artifact store, so repeated requests are served
  warm.  SIGTERM drains gracefully.  ``--trace-dir`` writes a Perfetto
  trace per traced job, ``--heartbeat`` records periodic liveness in
  the job log.
* ``serve-status``           -- one-shot live introspection of a
  running daemon (queue depth by state, in-flight job ages, worker
  liveness, uptime, metrics registry); ``--json`` for the raw payload,
  ``--prom`` for Prometheus text exposition.

``run``, ``compile`` and ``suite`` also accept ``--trace PATH`` to
record the same span stream while doing their normal job.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import MachineConfig, compile_minic, parallelize_and_run
from repro.ir import module_to_str
from repro.runtime import run_module


def _load(path: str):
    source = Path(path).read_text()
    return compile_minic(source, name=Path(path).stem)


def _parse_machine(spec: str) -> MachineConfig:
    """``CORES[:PREFETCH]`` -> a machine, e.g. ``4`` or ``8:matched``."""
    from repro.runtime.machine import PrefetchMode

    cores, _, mode = spec.partition(":")
    machine = MachineConfig(cores=int(cores))
    if mode:
        machine = machine.with_prefetch(PrefetchMode(mode.lower()))
    return machine


#: Default results-store location (see :func:`_results_dir`).
DEFAULT_RESULTS_DIR = ".repro-results"


def _results_dir(args) -> str:
    """Where bench/suite runs are recorded (empty string disables).

    Resolution order: ``--results-dir``, then ``REPRO_RESULTS_DIR``,
    then ``.repro-results`` in the current directory.
    """
    import os

    value = getattr(args, "results_dir", None)
    if value is None:
        value = os.environ.get("REPRO_RESULTS_DIR", DEFAULT_RESULTS_DIR)
    return value


def _write_json_report(path, report, results_dir=None, kind=None) -> bool:
    """Shared writer for the ``BENCH_*`` / suite JSON reports.

    Every report object exposes ``to_json``; an empty/None path
    disables writing.  Returns False (after printing why) when the
    write failed, so callers can turn it into a nonzero exit.

    When ``results_dir`` is non-empty, the run is additionally recorded
    into the versioned :class:`~repro.obs.results.ResultsStore` there
    (content-addressed run id + metrics/environment provenance), which
    is what ``repro bench-diff`` compares.  Recording failures warn but
    never fail the bench -- the report file is the primary artifact.
    """
    if path:
        try:
            Path(path).write_text(report.to_json() + "\n")
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            return False
        print(f"report written to {path}", file=sys.stderr)
    if results_dir:
        from repro.obs.results import ResultsStore, infer_kind

        try:
            payload = report.as_dict()
            record = ResultsStore(results_dir).record(
                kind or infer_kind(payload), payload
            )
        except (OSError, ValueError) as exc:
            print(
                f"warning: results store not updated: {exc}",
                file=sys.stderr,
            )
        else:
            print(
                f"run {record.run_id} ({record.kind}) recorded "
                f"in {results_dir}",
                file=sys.stderr,
            )
    return True


def _gate(value, minimum, label) -> bool:
    """One ``--min-*`` exit gate; False when ``value`` is below it."""
    if minimum is None or value >= minimum:
        return True
    print(
        f"error: {label} {value:.2f}x below required {minimum:.2f}x",
        file=sys.stderr,
    )
    return False


def _traced(args, fn) -> int:
    """Run ``fn`` under a live tracer when ``--trace PATH`` was given,
    writing the Chrome trace (spans + metrics) on the way out."""
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return fn()
    from repro.obs import REGISTRY, tracing, write_chrome_trace

    with tracing() as tracer:
        code = fn()
    write_chrome_trace(
        trace_path,
        tracer.finished(),
        registry_snapshot=REGISTRY.snapshot(),
    )
    print(f"trace written to {trace_path}", file=sys.stderr)
    return code


def cmd_run(args) -> int:
    return _traced(args, lambda: _cmd_run(args))


def _cmd_run(args) -> int:
    module = _load(args.file)
    result = run_module(module)
    for line in result.output:
        print(line)
    print(
        f"[{result.instructions:,} instructions, {result.cycles:,} cycles]",
        file=sys.stderr,
    )
    return 0


def cmd_ir(args) -> int:
    print(module_to_str(_load(args.file)))
    return 0


def cmd_parallelize(args) -> int:
    module = _load(args.file)
    machine = MachineConfig(cores=args.cores)
    result = parallelize_and_run(module, machine)
    print(f"chosen loops:      {result.chosen_loops}")
    print(f"sequential cycles: {result.sequential.cycles:,}")
    print(f"parallel cycles:   {result.parallel.cycles:,}")
    print(f"speedup:           {result.speedup:.2f}x on {args.cores} cores")
    print(f"output identical:  {result.output_matches}")
    if not result.output_matches:
        return 1
    return 0


def cmd_compile(args) -> int:
    return _traced(args, lambda: _cmd_compile(args))


def _cmd_compile(args) -> int:
    from repro.analysis.manager import AnalysisManager
    from repro.api import parallelize
    from repro.evaluation.reporting import format_analysis_stats

    module = _load(args.file)
    machine = MachineConfig(cores=args.cores)
    manager = AnalysisManager()
    result = parallelize(module, machine, manager=manager)
    print(f"chosen loops:       {result.chosen_loops}")
    print(f"parallelized loops: {len(result.infos)}")
    if args.pass_stats:
        print()
        print(format_analysis_stats(manager.stats_dict()))
    return 0


def cmd_bench(args) -> int:
    from repro.bench import compile_benchmark, get_benchmark

    spec = get_benchmark(args.name)
    print(f"{spec.name}: {spec.description}")
    ref = compile_benchmark(args.name, "ref")
    train = compile_benchmark(args.name, "train")
    machine = MachineConfig(cores=args.cores)
    result = parallelize_and_run(ref, machine, train_module=train)
    print(
        f"speedup {result.speedup:.2f}x on {args.cores} cores "
        f"(paper ~{spec.paper_speedup_6}x on 6)"
    )
    return 0 if result.output_matches else 1


def cmd_bench_interp(args) -> int:
    from repro.evaluation.interp_bench import QUICK_BENCHES, run_interp_bench

    benches = args.benches
    if not benches:
        benches = list(QUICK_BENCHES) if args.quick else None
    report = run_interp_bench(
        benches=benches,
        scale=args.scale,
        repeat=args.repeat,
        progress=lambda name: print(f"timing {name}...", file=sys.stderr),
    )
    print(report.render())
    if not _write_json_report(args.out, report, _results_dir(args), "interp"):
        return 1
    if not _gate(report.min_speedup, args.min_speedup, "min speedup"):
        return 1
    if not _gate(
        report.geomean_speedup, args.min_geomean_speedup, "geomean speedup"
    ):
        return 1
    if not _gate(
        report.hooked_geomean_speedup,
        args.min_hooked_speedup,
        "hooked geomean speedup",
    ):
        return 1
    return 0


def cmd_bench_passes(args) -> int:
    from repro.evaluation.pass_bench import run_pass_bench

    report = run_pass_bench(
        benches=args.benches,
        repeat=args.repeat,
        progress=lambda name: print(f"timing {name}...", file=sys.stderr),
    )
    print(report.render())
    ok = _write_json_report(args.out, report, _results_dir(args), "passes")
    return 0 if ok else 1


def cmd_bench_sched(args) -> int:
    from repro.evaluation.sched_bench import QUICK_BENCHES, run_sched_bench

    benches = args.benches
    if not benches:
        benches = list(QUICK_BENCHES) if args.quick else None
    report = run_sched_bench(
        benches=benches,
        repeat=args.repeat,
        progress=lambda name: print(f"timing {name}...", file=sys.stderr),
        jobs=args.jobs,
    )
    print(report.render())
    if not _write_json_report(args.out, report, _results_dir(args), "sched"):
        return 1
    if not _gate(report.min_speedup, args.min_speedup, "min speedup"):
        return 1
    if not _gate(
        report.aggregate_batched_speedup,
        args.min_batched_speedup,
        "aggregate batched speedup",
    ):
        return 1
    return 0


def _resolve_run(store, ref, kind):
    """A ``bench-diff`` operand: a run ref in the store, or a JSON file.

    File operands may be raw ``BENCH_*.json`` reports or serialized
    :class:`RunRecord` payloads; store operands are run-id prefixes,
    ``latest``, or ``latest~N``.
    """
    import json

    path = Path(ref)
    if path.is_file():
        return json.loads(path.read_text())
    return store.load(ref, kind)


def cmd_bench_diff(args) -> int:
    from repro.obs.results import ResultsStore, diff, format_history

    results_dir = _results_dir(args) or DEFAULT_RESULTS_DIR
    store = ResultsStore(results_dir)
    if args.list:
        runs = store.load_runs(args.kind)
        print(format_history(runs))
        for problem in store.problems:
            print(f"warning: skipped {problem}", file=sys.stderr)
        return 0
    if args.base is None or args.head is None:
        print(
            "error: bench-diff needs BASE and HEAD (or --list)",
            file=sys.stderr,
        )
        return 2
    tolerances = {}
    for spec in args.tolerance or ():
        pattern, sep, value = spec.partition("=")
        if not sep:
            print(
                f"error: bad --tolerance {spec!r} (want PATTERN=FRACTION)",
                file=sys.stderr,
            )
            return 2
        try:
            tolerances[pattern] = float(value)
        except ValueError:
            print(
                f"error: bad --tolerance fraction {value!r}",
                file=sys.stderr,
            )
            return 2
    try:
        base = _resolve_run(store, args.base, args.kind)
        head = _resolve_run(store, args.head, args.kind)
        result = diff(
            base,
            head,
            tolerances=tolerances,
            default_tolerance=args.default_tolerance,
            kind=args.kind,
        )
    except (KeyError, ValueError, OSError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(result.render())
    if not result.entries:
        print(
            "error: no comparable metrics between base and head",
            file=sys.stderr,
        )
        return 2
    if not result.ok:
        print(
            f"error: {len(result.regressions)} gated regression(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_serve_status(args) -> int:
    import json

    from repro.service.client import ServiceClient

    try:
        with ServiceClient(
            socket_path=None if args.host is not None else args.socket,
            host=args.host,
            port=args.port,
            timeout=args.timeout,
        ) as client:
            status = client.status()
    except (OSError, ConnectionError) as exc:
        print(f"error: cannot reach daemon: {exc}", file=sys.stderr)
        return 1
    status.pop("event", None)
    status.pop("id", None)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    if args.prom:
        from repro.obs import prometheus_text, status_gauges

        print(
            prometheus_text(
                status.get("metrics", {}),
                extra_gauges=status_gauges(status),
            ),
            end="",
        )
        return 0
    queue = status.get("queue", {})
    workers = status.get("workers", {})
    print(
        f"daemon run {status.get('run')} "
        f"(protocol {status.get('protocol')}), "
        f"up {status.get('uptime_seconds', 0.0):.1f}s, "
        f"{'accepting' if status.get('accepting') else 'draining'}"
    )
    depth = ", ".join(
        f"{state}={queue[state]}" for state in sorted(queue) if queue[state]
    )
    print(f"queue: {depth or 'empty'}; retries: {status.get('retries', 0)}")
    print(
        f"workers: {workers.get('alive', '?')}/"
        f"{workers.get('configured', '?')} alive"
    )
    for job in status.get("in_flight", []):
        bench = f" {job['bench']}" if job.get("bench") else ""
        print(
            f"  running {job['job']} ({job['op']}{bench}) "
            f"for {job['age_seconds']:.1f}s, retries {job['retries']}"
        )
    counters = status.get("metrics", {}).get("counters", {})
    if counters:
        print(f"metrics: {len(counters)} counters "
              f"(use --json or --prom for values)")
    return 0


def cmd_suite(args) -> int:
    return _traced(args, lambda: _cmd_suite(args))


class _SuiteProgress:
    """Observer printing one line per finished benchmark (``--stats``).

    Implements the :class:`repro.service.jobs.EvaluationObserver`
    protocol; the parallel suite runner reports whole-benchmark rows as
    ``stage="bench"`` completions.
    """

    def __init__(self) -> None:
        self.done = 0

    def job_started(self, job) -> None:  # pragma: no cover - protocol
        pass

    def stage_completed(self, job, bench, stage, outcome, seconds) -> None:
        if stage == "bench":
            self.done += 1
            print(
                f"  [{self.done}] {bench}: {seconds:.2f}s", file=sys.stderr
            )

    def artifact_stored(self, job, kind, key, outcome) -> None:
        pass

    def job_finished(self, job) -> None:  # pragma: no cover - protocol
        pass


def _cmd_suite(args) -> int:
    from repro.evaluation.parallel_runner import (
        SuiteInterrupted,
        effective_jobs,
        run_suite,
    )
    from repro.evaluation.reporting import (
        format_analysis_stats,
        format_interp_stats,
        format_stage_stats,
    )

    try:
        fig9, report, _runner = run_suite(
            machine=MachineConfig(cores=args.cores),
            jobs=effective_jobs(args.jobs),
            cache_dir=args.cache_dir,
            observer=_SuiteProgress() if args.stats else None,
        )
    except SuiteInterrupted as exc:
        # Persist whatever completed before the interrupt, then report
        # the conventional SIGINT exit status.
        print("suite interrupted", file=sys.stderr)
        if args.report:
            _write_json_report(
                args.report, exc.report, _results_dir(args), "suite"
            )
        return 130
    print(fig9.render())
    if args.stats:
        print()
        print(format_stage_stats(report.stages))
        if report.analyses:
            print()
            print(format_analysis_stats(report.analyses))
        if report.interp:
            print()
            print(format_interp_stats(report.interp))
        print(f"suite wall-clock: {report.wall_seconds:.2f}s "
              f"(jobs={report.jobs})")
    if args.report:
        env = report.environment
        print(
            "environment: Python {python} ({implementation}) on "
            "{platform}, {cpu_count} cpus, code {code}".format(
                python=env.get("python"),
                implementation=env.get("implementation"),
                platform=env.get("platform"),
                cpu_count=env.get("cpu_count"),
                code=report.code_version,
            ),
            file=sys.stderr,
        )
        if not _write_json_report(
            args.report, report, _results_dir(args), "suite"
        ):
            return 1
    return 0


def cmd_serve(args) -> int:
    import tempfile

    from repro.service.daemon import serve_forever
    from repro.service.orchestrator import Orchestrator

    scratch = None
    cache_dir = args.cache_dir
    if cache_dir is None:
        # The daemon's whole point is cross-request warmth, so it always
        # runs over a cache -- a scratch one when none was given.
        scratch = tempfile.TemporaryDirectory(prefix="repro-serve-cache-")
        cache_dir = scratch.name
    orchestrator = Orchestrator(
        cache=cache_dir,
        workers=args.workers,
        default_timeout=args.job_timeout,
        max_retries=args.max_retries,
    )
    where = (
        f"{args.host}:{args.port}" if args.host is not None else args.socket
    )
    print(
        f"repro serve: listening on {where} "
        f"(cache {cache_dir}, workers {args.workers})",
        file=sys.stderr,
    )
    try:
        serve_forever(
            orchestrator,
            socket_path=None if args.host is not None else args.socket,
            host=args.host,
            port=args.port,
            drain_timeout=args.drain_timeout,
            log_path=args.log,
            trace_dir=args.trace_dir,
            heartbeat=args.heartbeat,
        )
    except KeyboardInterrupt:  # pragma: no cover - loops without signal
        pass                   # handler support fall through to here
    finally:
        if scratch is not None:
            scratch.cleanup()
    print("repro serve: drained", file=sys.stderr)
    return 0


def cmd_trace(args) -> int:
    from repro.evaluation.runner import EvaluationRunner
    from repro.obs import (
        REGISTRY,
        tracing,
        validate_chrome_trace,
        write_chrome_trace,
    )

    replay_machine = _parse_machine(args.machine) if args.machine else None
    with tracing() as tracer:
        runner = EvaluationRunner()
        run = runner.helix_run(args.bench)

    extra_events = []
    if args.sim_timeline:
        from repro.obs.timeline import run_timeline, timeline_events

        segments = run_timeline(run.executor, machine=replay_machine)
        sim_machine = replay_machine or run.executor.machine
        # Simulated time gets its own trace "process" so Perfetto keeps
        # its cycle clock apart from the wall-clock spans.
        extra_events = timeline_events(segments, sim_machine, pid=0)

    payload = write_chrome_trace(
        args.out,
        tracer.finished(),
        registry_snapshot=REGISTRY.snapshot(),
        extra_events=extra_events,
    )
    problems = validate_chrome_trace(payload)
    if problems:  # pragma: no cover - would be an exporter bug
        for problem in problems:
            print(f"error: invalid trace: {problem}", file=sys.stderr)
        return 1
    spans = sum(
        1 for e in payload["traceEvents"] if e.get("ph") == "X"
    )
    print(
        f"{args.bench}: {spans} spans -> {args.out} "
        f"(speedup {run.speedup:.2f}x, open in ui.perfetto.dev)",
        file=sys.stderr,
    )
    return 0 if run.output_matches else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="HELIX reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace_help = "write a Chrome/Perfetto trace of this command to PATH"
    results_help = (
        "versioned results-store directory recording this run for "
        "`repro bench-diff` (default $REPRO_RESULTS_DIR or "
        f"{DEFAULT_RESULTS_DIR}; empty string disables)"
    )

    p = sub.add_parser("run", help="compile and run a MiniC file")
    p.add_argument("file")
    p.add_argument("--trace", default=None, metavar="PATH", help=trace_help)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("ir", help="dump compiled IR of a MiniC file")
    p.add_argument("file")
    p.set_defaults(func=cmd_ir)

    p = sub.add_parser("parallelize", help="HELIX-parallelize and simulate")
    p.add_argument("file")
    p.add_argument("--cores", type=int, default=6)
    p.set_defaults(func=cmd_parallelize)

    p = sub.add_parser(
        "compile",
        help="profile, select and transform without executing",
    )
    p.add_argument("file")
    p.add_argument("--cores", type=int, default=6)
    p.add_argument(
        "--pass-stats",
        action="store_true",
        help="print the analysis manager's hit/miss/invalidation table",
    )
    p.add_argument("--trace", default=None, metavar="PATH", help=trace_help)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("bench", help="run a suite benchmark")
    p.add_argument("name")
    p.add_argument("--cores", type=int, default=6)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "bench-interp",
        help="time tree vs decoded vs superblock interpreter backends",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="small representative subset (CI smoke)",
    )
    p.add_argument(
        "--benches",
        nargs="+",
        default=None,
        metavar="NAME",
        help="explicit benchmark names (overrides --quick)",
    )
    p.add_argument(
        "--scale",
        choices=("train", "ref"),
        default="train",
        help="benchmark input scale (default train)",
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="timing runs per backend; minimum is reported",
    )
    p.add_argument(
        "--out",
        default="BENCH_interp.json",
        metavar="PATH",
        help="JSON report path (empty string disables)",
    )
    p.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero if any program speedup is below X",
    )
    p.add_argument(
        "--min-geomean-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero if the geomean superblock speedup is below X",
    )
    p.add_argument(
        "--min-hooked-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero if the geomean hooked-superblock speedup over "
        "the hooked decoded variant is below X",
    )
    p.add_argument(
        "--results-dir", default=None, metavar="DIR", help=results_help
    )
    p.set_defaults(func=cmd_bench_interp)

    p = sub.add_parser(
        "bench-passes",
        help="time cold pipelines: versioned analysis cache vs recompute",
    )
    p.add_argument(
        "--benches",
        nargs="+",
        default=None,
        metavar="NAME",
        help="explicit benchmark names (default: representative subset)",
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="timing runs per side; minimum is reported",
    )
    p.add_argument(
        "--out",
        default="BENCH_passes.json",
        metavar="PATH",
        help="JSON report path (empty string disables)",
    )
    p.add_argument(
        "--results-dir", default=None, metavar="DIR", help=results_help
    )
    p.set_defaults(func=cmd_bench_passes)

    p = sub.add_parser(
        "bench-sched",
        help="time compiled vs reference trace schedulers on sweep replay",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="small representative subset (CI smoke)",
    )
    p.add_argument(
        "--benches",
        nargs="+",
        default=None,
        metavar="NAME",
        help="explicit benchmark names (overrides --quick)",
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="timing runs per engine; minimum is reported",
    )
    p.add_argument(
        "--out",
        default="BENCH_sched.json",
        metavar="PATH",
        help="JSON report path (empty string disables)",
    )
    p.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero if any benchmark's sweep speedup is below X",
    )
    p.add_argument(
        "--min-batched-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero if the batched engine's aggregate gain over "
        "the per-machine compiled engine is below X",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="shard the batched lane's scheduling pass over N processes",
    )
    p.add_argument(
        "--results-dir", default=None, metavar="DIR", help=results_help
    )
    p.set_defaults(func=cmd_bench_sched)

    p = sub.add_parser("suite", help="Figure 9 across the whole suite")
    p.add_argument("--cores", type=int, default=6)
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="benchmark pipelines to run in parallel processes "
        "(0 = one per CPU)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="persistent evaluation cache directory (warm runs skip "
        "all interpretation)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage wall-clock and cache-hit counters",
    )
    p.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write a machine-readable JSON report",
    )
    p.add_argument("--trace", default=None, metavar="PATH", help=trace_help)
    p.add_argument(
        "--results-dir", default=None, metavar="DIR", help=results_help
    )
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser(
        "bench-diff",
        help="regression-diff two recorded bench/suite runs",
        description=(
            "Compare two runs recorded in the results store (or raw "
            "report/record JSON files).  BASE and HEAD are run-id "
            "prefixes, 'latest', 'latest~N', or file paths.  Exits 1 "
            "when any metric drops by more than its tolerance, 2 on "
            "usage/lookup errors."
        ),
    )
    p.add_argument("base", nargs="?", default=None,
                   help="baseline run ref or report file")
    p.add_argument("head", nargs="?", default=None,
                   help="candidate run ref or report file")
    p.add_argument(
        "--kind",
        choices=("interp", "sched", "passes", "suite"),
        default=None,
        help="report kind (inferred from the payload when omitted)",
    )
    p.add_argument(
        "--results-dir", default=None, metavar="DIR", help=results_help
    )
    p.add_argument(
        "--tolerance",
        action="append",
        default=None,
        metavar="PATTERN=FRACTION",
        help="per-metric allowed relative drop, fnmatch pattern "
        "(e.g. 'summary.*=0.2'); repeatable, most specific wins",
    )
    p.add_argument(
        "--default-tolerance",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="allowed relative drop for unmatched metrics (default 0.05)",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="list recorded run history instead of diffing",
    )
    p.set_defaults(func=cmd_bench_diff)

    p = sub.add_parser(
        "serve",
        help="run the compile/run daemon (JSON-lines over a socket)",
    )
    p.add_argument(
        "--socket",
        default="repro.sock",
        metavar="PATH",
        help="Unix socket to listen on (default ./repro.sock)",
    )
    p.add_argument(
        "--host",
        default=None,
        metavar="HOST",
        help="listen on TCP HOST:PORT instead of the Unix socket",
    )
    p.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="PORT",
        help="TCP port (0 = ephemeral; only with --host)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="artifact-store cache directory (default: scratch dir "
        "that lives as long as the daemon)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent job-executing worker threads (default 2)",
    )
    p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job wall-clock budget (default unbounded)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=1,
        metavar="N",
        help="requeues per job after transient failures (default 1)",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="grace period for in-flight jobs on SIGTERM (default 60)",
    )
    p.add_argument(
        "--log",
        default=None,
        metavar="PATH",
        help="append every job event to this JSON-lines log "
        "(each line stamped with a sequence number and the run id)",
    )
    p.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write a Perfetto trace file per traced job "
        "(jobs submitted with \"trace\": true, and all trace ops)",
    )
    p.add_argument(
        "--heartbeat",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="interval between liveness records in the job log "
        "(default 15; <= 0 disables)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "serve-status",
        help="query a running daemon's live status (queue, workers, metrics)",
    )
    p.add_argument(
        "--socket",
        default="repro.sock",
        metavar="PATH",
        help="daemon Unix socket (default ./repro.sock)",
    )
    p.add_argument(
        "--host",
        default=None,
        metavar="HOST",
        help="connect over TCP HOST:PORT instead of the Unix socket",
    )
    p.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="TCP port (only with --host)",
    )
    p.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="connection/read timeout (default 10)",
    )
    fmt = p.add_mutually_exclusive_group()
    fmt.add_argument(
        "--json", action="store_true",
        help="print the full status payload as JSON",
    )
    fmt.add_argument(
        "--prom", action="store_true",
        help="print metrics in Prometheus text exposition format",
    )
    p.set_defaults(func=cmd_serve_status)

    p = sub.add_parser(
        "trace",
        help="run one benchmark pipeline and export a Perfetto trace",
    )
    p.add_argument("bench", help="benchmark name (see `repro suite`)")
    p.add_argument(
        "-o",
        "--out",
        default="trace.json",
        metavar="PATH",
        help="Chrome trace-event JSON output path (default trace.json)",
    )
    p.add_argument(
        "--machine",
        default=None,
        metavar="CORES[:PREFETCH]",
        help="replay machine for the simulated timeline "
        "(e.g. 4 or 8:matched; default: the executing machine)",
    )
    p.add_argument(
        "--sim-timeline",
        action="store_true",
        help="add one simulated-time track per core "
        "(compute/stall/signal/transfer segments)",
    )
    p.set_defaults(func=cmd_trace)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-print (e.g.
        # `repro bench-diff ... | head`); exit quietly instead of
        # dumping a traceback.  Point stdout at devnull so the
        # interpreter's shutdown flush does not raise again.
        import os
        import sys

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
