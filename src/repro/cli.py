"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE.mc``            -- compile and run a MiniC program sequentially.
* ``parallelize FILE.mc``    -- full HELIX pipeline + simulated speedup.
* ``ir FILE.mc``             -- dump the compiled IR.
* ``bench NAME``             -- run one of the 13 suite benchmarks.
* ``suite``                  -- Figure 9 over the whole suite.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import MachineConfig, compile_minic, parallelize_and_run
from repro.ir import module_to_str
from repro.runtime import run_module


def _load(path: str):
    source = Path(path).read_text()
    return compile_minic(source, name=Path(path).stem)


def cmd_run(args) -> int:
    module = _load(args.file)
    result = run_module(module)
    for line in result.output:
        print(line)
    print(
        f"[{result.instructions:,} instructions, {result.cycles:,} cycles]",
        file=sys.stderr,
    )
    return 0


def cmd_ir(args) -> int:
    print(module_to_str(_load(args.file)))
    return 0


def cmd_parallelize(args) -> int:
    module = _load(args.file)
    machine = MachineConfig(cores=args.cores)
    result = parallelize_and_run(module, machine)
    print(f"chosen loops:      {result.chosen_loops}")
    print(f"sequential cycles: {result.sequential.cycles:,}")
    print(f"parallel cycles:   {result.parallel.cycles:,}")
    print(f"speedup:           {result.speedup:.2f}x on {args.cores} cores")
    print(f"output identical:  {result.output_matches}")
    if not result.output_matches:
        return 1
    return 0


def cmd_bench(args) -> int:
    from repro.bench import compile_benchmark, get_benchmark

    spec = get_benchmark(args.name)
    print(f"{spec.name}: {spec.description}")
    ref = compile_benchmark(args.name, "ref")
    train = compile_benchmark(args.name, "train")
    machine = MachineConfig(cores=args.cores)
    result = parallelize_and_run(ref, machine, train_module=train)
    print(
        f"speedup {result.speedup:.2f}x on {args.cores} cores "
        f"(paper ~{spec.paper_speedup_6}x on 6)"
    )
    return 0 if result.output_matches else 1


def cmd_suite(args) -> int:
    from repro.evaluation import figures
    from repro.evaluation.runner import EvaluationRunner

    runner = EvaluationRunner(MachineConfig(cores=6))
    print(figures.figure9(runner).render())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="HELIX reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="compile and run a MiniC file")
    p.add_argument("file")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("ir", help="dump compiled IR of a MiniC file")
    p.add_argument("file")
    p.set_defaults(func=cmd_ir)

    p = sub.add_parser("parallelize", help="HELIX-parallelize and simulate")
    p.add_argument("file")
    p.add_argument("--cores", type=int, default=6)
    p.set_defaults(func=cmd_parallelize)

    p = sub.add_parser("bench", help="run a suite benchmark")
    p.add_argument("name")
    p.add_argument("--cores", type=int, default=6)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("suite", help="Figure 9 across the whole suite")
    p.set_defaults(func=cmd_suite)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
