"""Top-level public API of the HELIX reproduction.

The three calls most users need::

    module = compile_minic(source_text)          # MiniC -> IR
    result = parallelize(module)                 # profile, select, transform
    outcome = parallelize_and_run(module)        # ... and simulate

``parallelize`` runs the full automatic pipeline of the paper: a profiling
run (training input), loop selection over the dynamic loop nesting graph
with the Equation 1 model, and the Steps 1-9 transformation of every
chosen loop.  ``parallelize_and_run`` additionally executes both versions
on the simulated machine, checks that the parallel program produces
bit-identical output, and reports the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.loopnest import LoopId
from repro.analysis.manager import AnalysisManager
from repro.core.loopinfo import HelixOptions, ParallelizedLoop
from repro.core.parallelizer import parallelize_module
from repro.core.selection import LoopSelection, SelectionConfig, choose_loops
from repro.frontend import compile_source
from repro.ir import Module
from repro.runtime.interpreter import ExecutionResult, run_module
from repro.runtime.machine import MachineConfig
from repro.runtime.parallel import (
    LoopRunStats,
    ParallelExecutor,
    ParallelRunResult,
)
from repro.runtime.profiler import ProfileData, profile_module


def compile_minic(source: str, name: str = "program") -> Module:
    """Compile MiniC source text to a verified IR module."""
    return compile_source(source, name)


@dataclass
class HelixResult:
    """Everything produced by one end-to-end HELIX run."""

    original: Module
    transformed: Module
    infos: List[ParallelizedLoop]
    selection: Optional[LoopSelection]
    machine: MachineConfig
    profile: Optional[ProfileData] = None
    sequential: Optional[ExecutionResult] = None
    parallel: Optional[ParallelRunResult] = None
    executor: Optional[ParallelExecutor] = None

    @property
    def chosen_loops(self) -> List[LoopId]:
        return [info.loop_id for info in self.infos]

    @property
    def speedup(self) -> float:
        """Whole-program speedup: sequential cycles / parallel cycles."""
        if self.sequential is None or self.parallel is None:
            raise ValueError("run the programs first (parallelize_and_run)")
        if self.parallel.cycles <= 0:
            return 1.0
        return self.sequential.cycles / self.parallel.cycles

    @property
    def output_matches(self) -> bool:
        """Whether parallel execution reproduced the sequential output."""
        if self.sequential is None or self.parallel is None:
            raise ValueError("run the programs first (parallelize_and_run)")
        return self.sequential.output == self.parallel.output

    def loop_stats(self) -> Dict[LoopId, LoopRunStats]:
        if self.parallel is None:
            return {}
        return self.parallel.loop_stats


def parallelize(
    module: Module,
    machine: Optional[MachineConfig] = None,
    options: Optional[HelixOptions] = None,
    selection_config: Optional[SelectionConfig] = None,
    loop_ids: Optional[Sequence[LoopId]] = None,
    train_module: Optional[Module] = None,
    profile: Optional[ProfileData] = None,
    manager: Optional[AnalysisManager] = None,
) -> HelixResult:
    """Run the automatic pipeline: profile, select, transform.

    ``loop_ids`` overrides automatic selection; ``train_module`` supplies a
    separate training-input build of the program for profiling (defaults
    to ``module`` itself); a precomputed ``profile`` skips the profiling
    run entirely.  ``manager`` supplies a shared versioned analysis cache
    (one is created per call otherwise).
    """
    machine = machine or MachineConfig()
    manager = manager or AnalysisManager()
    selection = None
    if loop_ids is None:
        if profile is None:
            profile = profile_module(train_module or module, machine)
        config = selection_config or SelectionConfig(
            machine=machine, cores=machine.cores
        )
        selection = choose_loops(module, profile, config, manager=manager)
        loop_ids = selection.chosen
    transformed, infos = parallelize_module(
        module, loop_ids, machine, options, manager=manager
    )
    return HelixResult(
        original=module,
        transformed=transformed,
        infos=infos,
        selection=selection,
        machine=machine,
        profile=profile,
    )


def parallelize_and_run(
    module: Module,
    machine: Optional[MachineConfig] = None,
    options: Optional[HelixOptions] = None,
    selection_config: Optional[SelectionConfig] = None,
    loop_ids: Optional[Sequence[LoopId]] = None,
    train_module: Optional[Module] = None,
    record_traces: bool = True,
    manager: Optional[AnalysisManager] = None,
) -> HelixResult:
    """Full pipeline plus simulation of both versions."""
    result = parallelize(
        module,
        machine=machine,
        options=options,
        selection_config=selection_config,
        loop_ids=loop_ids,
        train_module=train_module,
        manager=manager,
    )
    result.sequential = run_module(module, result.machine)
    executor = ParallelExecutor(
        result.transformed,
        result.infos,
        result.machine,
        record_traces=record_traces,
    )
    result.parallel = executor.execute()
    result.executor = executor
    return result
