"""Dead code elimination.

Removes pure instructions whose destination register is never read.  Run
after HELIX's scheduling passes in tests to confirm they do not strand
values, and available to users as an ordinary cleanup pass.
"""

from __future__ import annotations

from typing import Set

from repro.ir import Function, Module


def eliminate_dead_code(func: Function) -> int:
    """Iteratively remove dead pure instructions; returns removal count."""
    removed = 0
    changed = True
    while changed:
        changed = False
        used: Set[int] = set()
        for block in func.blocks.values():
            for instr in block.instructions:
                for reg in instr.uses():
                    used.add(reg.uid)
        for block in func.blocks.values():
            keep = []
            for instr in block.instructions:
                dead = (
                    instr.dest is not None
                    and not instr.has_side_effects
                    and not instr.is_terminator
                    and instr.dest.uid not in used
                )
                if dead:
                    removed += 1
                    changed = True
                else:
                    keep.append(instr)
            block.instructions = keep
    if removed:
        func.bump_version()
    return removed


def eliminate_dead_code_module(module: Module) -> int:
    """DCE over every function of ``module``."""
    return sum(eliminate_dead_code(f) for f in module.functions.values())
