"""Copy propagation and CFG simplification.

``propagate_copies`` forwards ``x = mov y`` within basic blocks (safe in
the non-SSA IR as long as neither side is redefined in between).
``simplify_cfg`` merges straight-line block chains and removes
unreachable blocks, shrinking the code the HELIX passes must scan.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir import Function, Module, Opcode
from repro.ir.operands import Const, Operand, VReg


def propagate_copies(func: Function) -> int:
    """Intra-block copy propagation; returns the number of uses rewritten."""
    rewrites = 0
    for block in func.blocks.values():
        # uid -> operand it currently copies (register or constant).
        copies: Dict[int, Operand] = {}
        new_instrs = []
        for instr in block.instructions:
            def resolve(op: Operand) -> Operand:
                seen: Set[int] = set()
                while isinstance(op, VReg) and op.uid in copies:
                    if op.uid in seen:  # defensive: cyclic copies
                        break
                    seen.add(op.uid)
                    op = copies[op.uid]
                return op

            args = tuple(resolve(a) for a in instr.args)
            if any(x is not y for x, y in zip(args, instr.args)):
                instr = instr.clone(args=args)
                rewrites += 1

            if instr.dest is not None:
                uid = instr.dest.uid
                # Any redefinition invalidates copies of and through uid.
                copies.pop(uid, None)
                stale = [
                    k
                    for k, v in copies.items()
                    if isinstance(v, VReg) and v.uid == uid
                ]
                for k in stale:
                    del copies[k]
                if instr.opcode is Opcode.MOV:
                    source = instr.args[0]
                    if isinstance(source, (VReg, Const)):
                        if not (
                            isinstance(source, VReg) and source.uid == uid
                        ):
                            copies[uid] = source
            new_instrs.append(instr)
        block.instructions = new_instrs
    if rewrites:
        func.bump_version()
    return rewrites


def simplify_cfg(func: Function) -> int:
    """Merge trivial chains and drop unreachable blocks; returns removals."""
    removed = 0
    changed = True
    while changed:
        changed = False

        # Drop unreachable blocks.
        reachable = {func.entry.name}
        work = [func.entry.name]
        while work:
            name = work.pop()
            for succ in func.blocks[name].successor_names():
                if succ not in reachable:
                    reachable.add(succ)
                    work.append(succ)
        for name in list(func.blocks):
            if name not in reachable:
                func.remove_block(name)
                removed += 1
                changed = True

        # Merge A -> B when A ends in BR B and B has exactly one pred.
        preds: Dict[str, list] = {name: [] for name in func.blocks}
        for name, block in func.blocks.items():
            for succ in block.successor_names():
                preds[succ].append(name)
        for name in list(func.blocks):
            block = func.blocks.get(name)
            if block is None:
                continue
            term = block.terminator
            if term is None or term.opcode is not Opcode.BR:
                continue
            succ_name = term.targets[0]
            if succ_name == name or succ_name == func.entry.name:
                continue
            if preds.get(succ_name) != [name]:
                continue
            succ = func.blocks[succ_name]
            block.instructions = block.instructions[:-1] + succ.instructions
            func.remove_block(succ_name)
            removed += 1
            changed = True
            break  # predecessor map is stale; recompute
    return removed


def optimize_module(module: Module) -> Dict[str, int]:
    """Run the generic pipeline (fold, propagate, DCE, simplify) to a
    fixed point; returns per-pass rewrite counts."""
    from repro.obs import get_tracer
    from repro.transform.constfold import fold_constants
    from repro.transform.dce import eliminate_dead_code

    tracer = get_tracer()
    totals = {"folded": 0, "copies": 0, "dce": 0, "cfg": 0}
    for func in module.functions.values():
        with tracer.span("pass.optimize", cat="transform", func=func.name):
            for _ in range(8):
                with tracer.span("pass.constfold", cat="transform"):
                    folded = fold_constants(func)
                with tracer.span("pass.copyprop", cat="transform"):
                    copies = propagate_copies(func)
                with tracer.span("pass.dce", cat="transform"):
                    dce = eliminate_dead_code(func)
                with tracer.span("pass.simplify_cfg", cat="transform"):
                    cfg = simplify_cfg(func)
                totals["folded"] += folded
                totals["copies"] += copies
                totals["dce"] += dce
                totals["cfg"] += cfg
                if not (folded or copies or dce or cfg):
                    break
    return totals
