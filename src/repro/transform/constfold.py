"""Constant folding and algebraic simplification.

Part of the generic optimization suite (ILDJIT's role in the original
system).  Folds arithmetic over constant operands with the interpreter's
own semantics (64-bit wrap-around, C division), simplifies identities
(``x+0``, ``x*1``, ``x*0``), and turns constant conditional branches into
unconditional ones.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir import Function, Instruction, Module, Opcode
from repro.ir.operands import Const, Operand, VReg
from repro.ir.types import Type


def _fold_binary(opcode: Opcode, a, b):
    """Evaluate a binary opcode over Python values, or None if undefined."""
    from repro.runtime.interpreter import _BINARY_HANDLERS, RuntimeFault

    handler = _BINARY_HANDLERS.get(opcode)
    if handler is None:
        return None
    try:
        return handler(a, b)
    except (RuntimeFault, ZeroDivisionError):
        return None


def _const_for(value, type_: Type) -> Const:
    if type_ is Type.FLOAT:
        return Const.float(float(value))
    return Const.int(int(value))


def _algebraic(instr: Instruction) -> Optional[Operand]:
    """Identity simplifications returning a replacement operand."""
    a, b = instr.args
    if instr.opcode is Opcode.ADD:
        if isinstance(b, Const) and b.value == 0:
            return a
        if isinstance(a, Const) and a.value == 0:
            return b
    elif instr.opcode is Opcode.SUB:
        if isinstance(b, Const) and b.value == 0:
            return a
    elif instr.opcode is Opcode.MUL:
        if isinstance(b, Const) and b.value == 1:
            return a
        if isinstance(a, Const) and a.value == 1:
            return b
        if (
            isinstance(b, Const)
            and b.value == 0
            and instr.dest is not None
        ):
            return _const_for(0, instr.dest.type)
    elif instr.opcode in (Opcode.DIV,):
        if isinstance(b, Const) and b.value == 1:
            return a
    elif instr.opcode in (Opcode.OR, Opcode.XOR):
        if isinstance(b, Const) and b.value == 0:
            return a
    elif instr.opcode in (Opcode.SHL, Opcode.SHR):
        if isinstance(b, Const) and b.value == 0:
            return a
    return None


_BINARY_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.EQ,
        Opcode.NE,
        Opcode.LT,
        Opcode.LE,
        Opcode.GT,
        Opcode.GE,
    }
)


def fold_constants(func: Function) -> int:
    """One folding pass over ``func``; returns the number of rewrites.

    Uses a per-block view of known-constant registers (registers written
    exactly once in the whole function with a constant also participate,
    which covers the frontend's materialized literals).
    """
    rewrites = 0

    # Registers defined exactly once, by a constant MOV.
    def_count: Dict[int, int] = {}
    const_defs: Dict[int, Const] = {}
    for instr in func.instructions():
        if instr.dest is not None:
            def_count[instr.dest.uid] = def_count.get(instr.dest.uid, 0) + 1
            if instr.opcode is Opcode.MOV and isinstance(instr.args[0], Const):
                const_defs[instr.dest.uid] = instr.args[0]
    global_consts = {
        uid: c for uid, c in const_defs.items() if def_count[uid] == 1
    }

    for block in func.blocks.values():
        local_consts: Dict[int, Const] = {}

        def resolve(op: Operand) -> Operand:
            if isinstance(op, VReg):
                if op.uid in local_consts:
                    return local_consts[op.uid]
                if op.uid in global_consts:
                    return global_consts[op.uid]
            return op

        new_instrs = []
        for instr in block.instructions:
            args = tuple(resolve(a) for a in instr.args)
            changed = any(x is not y for x, y in zip(args, instr.args))

            if instr.opcode in _BINARY_OPS and instr.dest is not None:
                a, b = args
                if isinstance(a, Const) and isinstance(b, Const):
                    value = _fold_binary(instr.opcode, a.value, b.value)
                    if value is not None:
                        folded = _const_for(value, instr.dest.type)
                        new_instrs.append(
                            Instruction(
                                Opcode.MOV, dest=instr.dest, args=(folded,)
                            )
                        )
                        local_consts[instr.dest.uid] = folded
                        rewrites += 1
                        continue
                temp = instr.clone(args=args) if changed else instr
                replacement = _algebraic(temp)
                if replacement is not None:
                    new_instrs.append(
                        Instruction(
                            Opcode.MOV, dest=instr.dest, args=(replacement,)
                        )
                    )
                    if isinstance(replacement, Const):
                        local_consts[instr.dest.uid] = replacement
                    else:
                        local_consts.pop(instr.dest.uid, None)
                    rewrites += 1
                    continue

            if instr.opcode is Opcode.NEG and isinstance(args[0], Const):
                value = args[0].value
                folded = _const_for(
                    -value if isinstance(value, float) else -value,
                    instr.dest.type,
                )
                new_instrs.append(
                    Instruction(Opcode.MOV, dest=instr.dest, args=(folded,))
                )
                local_consts[instr.dest.uid] = folded
                rewrites += 1
                continue

            if instr.opcode is Opcode.CBR and isinstance(args[0], Const):
                taken = instr.targets[0] if args[0].value != 0 else instr.targets[1]
                new_instrs.append(Instruction(Opcode.BR, targets=(taken,)))
                rewrites += 1
                continue

            if changed:
                instr = instr.clone(args=args)
                rewrites += 1

            # Track constants flowing through MOVs inside the block.
            if instr.dest is not None:
                if instr.opcode is Opcode.MOV and isinstance(
                    instr.args[0], Const
                ):
                    local_consts[instr.dest.uid] = instr.args[0]
                else:
                    local_consts.pop(instr.dest.uid, None)
            new_instrs.append(instr)
        block.instructions = new_instrs
    if rewrites:
        func.bump_version()
    return rewrites


def fold_constants_module(module: Module) -> int:
    """Fold constants in every function."""
    return sum(fold_constants(f) for f in module.functions.values())
