"""Generic IR transformations used by (and tested independently of) HELIX.

* :mod:`repro.transform.inline` -- function inlining (the mechanism behind
  HELIX Step 5's segment shrinking).
* :mod:`repro.transform.normalize` -- loop normalization into the
  prologue/body form of HELIX Step 1.
* :mod:`repro.transform.dce` -- dead code elimination.
"""

from repro.transform.inline import InlineError, can_inline, inline_call
from repro.transform.normalize import NormalizedLoop, normalize_loop
from repro.transform.dce import eliminate_dead_code

__all__ = [
    "inline_call",
    "can_inline",
    "InlineError",
    "normalize_loop",
    "NormalizedLoop",
    "eliminate_dead_code",
]
