"""Function inlining.

HELIX Step 5 inlines a call when a data dependence connects the call to
another instruction of the loop being parallelized -- the dependence
endpoints then become ordinary instructions and the sequential segment can
shrink around them.  The paper's heuristic (and ours): never inline a call
sitting inside a subloop of the target loop, and never inline recursive
functions.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.ir import (
    BasicBlock,
    Function,
    Instruction,
    Module,
    Opcode,
)
from repro.ir.operands import Operand, Symbol, VReg

_inline_counter = itertools.count(1)


class InlineError(Exception):
    """The requested call site cannot be inlined."""


def can_inline(
    module: Module,
    call: Instruction,
    max_callee_instructions: int = 400,
    callgraph: Optional[CallGraph] = None,
) -> bool:
    """Cheap feasibility check (existence, size, non-recursion).

    ``callgraph`` lets callers probing many sites share one call graph
    (e.g. from the analysis manager) instead of rebuilding it per query.
    """
    if call.opcode is not Opcode.CALL or call.callee not in module.functions:
        return False
    callee = module.functions[call.callee]
    if callee.instruction_count() > max_callee_instructions:
        return False
    # Direct or mutual recursion would require unbounded expansion.
    if callgraph is None:
        callgraph = build_callgraph(module)
    return not callgraph.is_recursive(call.callee)


def inline_call(
    module: Module, caller: Function, call: Instruction
) -> Dict[str, str]:
    """Inline ``call`` into ``caller``; returns cloned-block name mapping.

    The callee body is cloned with fresh registers and block names; its
    local arrays become (uniquely renamed) locals of the caller.  ``RET v``
    becomes a move into the call's destination plus a jump to the
    continuation block.

    Note: frame-local arrays of the callee become a single caller-frame
    array shared by what were previously distinct activations.  MiniC
    treats local arrays as uninitialized storage (programs must write
    before reading), so this is semantics-preserving for conforming
    programs -- the same contract a C compiler relies on.
    """
    if call.callee not in module.functions:
        raise InlineError(f"unknown callee {call.callee!r}")
    callee = module.functions[call.callee]
    site_block = caller.find_block_of(call)
    if site_block is None:
        raise InlineError("call instruction is not in the caller")

    tag = f"inl{next(_inline_counter)}"

    # Split the call block: [before call] -> callee entry ... -> cont.
    index = next(
        i for i, instr in enumerate(site_block.instructions) if instr is call
    )
    cont_block = BasicBlock(f"{tag}_cont")
    cont_block.instructions = site_block.instructions[index + 1:]
    site_block.instructions = site_block.instructions[:index]
    caller.add_block(cont_block)

    # Fresh registers for every callee register.
    reg_map: Dict[int, VReg] = {}

    def map_reg(reg: VReg) -> VReg:
        mapped = reg_map.get(reg.uid)
        if mapped is None:
            mapped = caller.new_vreg(reg.type, reg.name)
            reg_map[reg.uid] = mapped
        return mapped

    # Rename callee locals into the caller frame.
    local_map: Dict[str, Symbol] = {}
    for symbol in callee.locals.values():
        new_name = f"{tag}_{symbol.name}"
        local_map[symbol.name] = caller.add_local_array(
            new_name, symbol.elem_type, symbol.size
        )

    def map_operand(op: Operand) -> Operand:
        if isinstance(op, VReg):
            return map_reg(op)
        if isinstance(op, Symbol) and op.function == callee.name:
            return local_map[op.name]
        return op

    block_map: Dict[str, str] = {
        name: f"{tag}_{name}" for name in callee.blocks
    }

    # Bind arguments.
    for param, arg in zip(callee.params, call.args):
        site_block.append(
            Instruction(Opcode.MOV, dest=map_reg(param), args=(arg,))
        )
    site_block.append(
        Instruction(Opcode.BR, targets=(block_map[callee.entry.name],))
    )

    # Clone the body.
    for name, block in callee.blocks.items():
        clone = BasicBlock(block_map[name])
        for instr in block.instructions:
            if instr.opcode is Opcode.RET:
                if instr.args and call.dest is not None:
                    clone.append(
                        Instruction(
                            Opcode.MOV,
                            dest=call.dest,
                            args=(map_operand(instr.args[0]),),
                        )
                    )
                clone.append(Instruction(Opcode.BR, targets=(cont_block.name,)))
            else:
                clone.append(
                    instr.clone(
                        dest=map_reg(instr.dest) if instr.dest is not None else None,
                        args=tuple(map_operand(a) for a in instr.args),
                        targets=tuple(block_map[t] for t in instr.targets),
                    )
                )
        caller.add_block(clone)

    # Block registrations above already bumped the version; one more bump
    # covers the in-place split of the call site's instruction list.
    caller.bump_version()
    return block_map
