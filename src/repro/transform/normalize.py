"""Loop normalization (HELIX Step 1).

Brings a natural loop into the paper's normal form:

* a unique *preheader* (single edge into the header from outside);
* a unique *latch* carrying the only back edge;
* a partition of the loop blocks into the **prologue** -- the minimum set
  of instructions that must execute to decide whether the next iteration's
  prologue executes (formally: blocks *not* post-dominated, within the
  loop, by the unified latch) -- and the **body** (the rest).  Loop exits
  can only originate in the prologue; once control crosses a
  prologue->body edge, the next iteration is certain to start.

The partition is what Step 3 needs: ``NEXT_ITER`` is inserted on every
prologue->body crossing (each crossed exactly once per completing
iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.analysis.cfg import CFGView
from repro.analysis.loops import Loop
from repro.ir import Function, Instruction, Opcode


@dataclass
class NormalizedLoop:
    """The result of normalizing one loop."""

    func: Function
    header: str
    preheader: str
    latch: str
    blocks: Set[str]
    prologue_blocks: Set[str] = field(default_factory=set)
    body_blocks: Set[str] = field(default_factory=set)
    #: Edges (prologue block -> body block) where iteration i+1 may start.
    crossing_edges: List[Tuple[str, str]] = field(default_factory=list)
    #: Exit edges (block inside -> first block outside).
    exit_edges: List[Tuple[str, str]] = field(default_factory=list)


def _ensure_preheader(func: Function, loop: Loop, cfg: CFGView) -> Tuple[str, CFGView]:
    """Create (or find) the unique preheader of ``loop``."""
    outside_preds = [
        p for p in cfg.preds[loop.header] if p not in loop.blocks
    ]
    if len(outside_preds) == 1:
        pred = func.blocks[outside_preds[0]]
        term = pred.terminator
        if term is not None and term.opcode is Opcode.BR:
            return outside_preds[0], cfg
    pre = func.new_block("pre")
    pre.append(Instruction(Opcode.BR, targets=(loop.header,)))
    for pred_name in outside_preds:
        func.blocks[pred_name].retarget(loop.header, pre.name)
    return pre.name, CFGView(func)


def _ensure_single_latch(
    func: Function, loop: Loop, cfg: CFGView
) -> Tuple[str, CFGView]:
    """Merge multiple back edges through one unified latch block."""
    latches = sorted(loop.latches)
    if len(latches) == 1:
        latch_block = func.blocks[latches[0]]
        term = latch_block.terminator
        if term is not None and term.opcode is Opcode.BR:
            return latches[0], cfg
    latch = func.new_block("latch")
    latch.append(Instruction(Opcode.BR, targets=(loop.header,)))
    for name in latches:
        func.blocks[name].retarget(loop.header, latch.name)
    loop.blocks.add(latch.name)
    loop.latches = {latch.name}
    return latch.name, CFGView(func)


def _loop_post_dominators(
    func: Function, loop_blocks: Set[str], header: str, latch: str, cfg: CFGView
) -> Set[str]:
    """Blocks of the loop post-dominated by ``latch`` *within* the loop.

    Computed directly: a block is post-dominated by the latch iff every
    path from it that stays in the iteration (no back edge) reaches the
    latch rather than leaving the loop.  Equivalently: the block cannot
    reach an exit edge without first passing through the latch.
    """
    # Backward reachability to "escape" (an exit edge source's exiting
    # branch) without passing through the latch.
    can_escape: Set[str] = set()
    work: List[str] = []
    for name in loop_blocks:
        if name == latch:
            continue
        for succ in cfg.succs[name]:
            if succ not in loop_blocks:
                can_escape.add(name)
                work.append(name)
                break
    while work:
        node = work.pop()
        for pred in cfg.preds[node]:
            if pred in loop_blocks and pred != latch and pred not in can_escape:
                can_escape.add(pred)
                work.append(pred)
    return {name for name in loop_blocks if name not in can_escape and name != latch} | {
        latch
    }


def normalize_loop(func: Function, loop: Loop) -> NormalizedLoop:
    """Normalize ``loop`` in place and return the region description."""
    cfg = CFGView(func)
    preheader, cfg = _ensure_preheader(func, loop, cfg)
    latch, cfg = _ensure_single_latch(func, loop, cfg)

    post_dominated = _loop_post_dominators(func, loop.blocks, loop.header, latch, cfg)
    body = set(post_dominated)
    prologue = {name for name in loop.blocks if name not in body}

    # An exit-free loop would have an empty prologue; keep the header in
    # the prologue so iteration hand-off still has a well-defined point.
    if not prologue:
        prologue = {loop.header}
        body.discard(loop.header)

    crossing = []
    exits = []
    for name in sorted(loop.blocks):
        for succ in cfg.succs[name]:
            if name in prologue and succ in body:
                crossing.append((name, succ))
            if succ not in loop.blocks:
                exits.append((name, succ))

    return NormalizedLoop(
        func=func,
        header=loop.header,
        preheader=preheader,
        latch=latch,
        blocks=set(loop.blocks),
        prologue_blocks=prologue,
        body_blocks=body,
        crossing_edges=crossing,
        exit_edges=exits,
    )
