"""MiniC sources of the 13 benchmark programs.

Each module exposes ``source(scale)`` returning the program text for the
``"train"`` or ``"ref"`` input scale.  The programs are deterministic
(LCG-seeded) and print checksums, which the test suite uses to verify that
HELIX-parallelized execution is bit-identical to sequential execution.
"""

from repro.bench.programs import (  # noqa: F401
    ammp,
    art,
    bzip2,
    crafty,
    equake,
    gap,
    gzip,
    mcf,
    mesa,
    parser,
    twolf,
    vortex,
    vpr,
)
