"""188.ammp -- molecular dynamics with neighbor lists.

The force loop iterates over atoms; each atom walks its neighbor list
(indirect loads), computes pairwise forces into its *own* force slots
(iteration-private, affine index) and accumulates potential energy -- a
short sequential segment at the end of a long body.  Position integration
is element-wise DOALL.
"""

_PARAMS = {
    "train": {"STEPS": 9},
    "ref": {"STEPS": 40},
}

_TEMPLATE = """
int ATOMS = 96;
int NB = 10;
int STEPS = {STEPS};

float px[96];
float py[96];
float fx[96];
float fy[96];
int nbr[960];
float energy_acc = 0.0;
int seed = 31;

void build_neighbors() {{
    // Refresh half the entries each call; the LCG carries across
    // entries (sequential).
    int i;
    for (i = 0; i < ATOMS * NB; i = i + 2) {{
        seed = (seed * 1103515245 + 12345) % 2147483648;
        int cand = seed % ATOMS;
        if (cand % 7 == 3) {{ cand = (cand + 11) % ATOMS; }}
        nbr[i] = cand;
    }}
}}

void forces() {{
    int a;
    for (a = 0; a < ATOMS; a++) {{
        float sfx = 0.0;
        float sfy = 0.0;
        float e = 0.0;
        int n;
        for (n = 0; n < NB; n++) {{
            int b = nbr[a * NB + n];
            float dx = px[a] - px[b];
            float dy = py[a] - py[b];
            float r2 = dx * dx + dy * dy + 0.01;
            float inv = 1.0 / r2;
            float f = (inv - 0.5 * inv * inv) * 0.3;
            sfx = sfx + f * dx;
            sfy = sfy + f * dy;
            e = e + inv * 0.25;
        }}
        fx[a] = sfx;
        fy[a] = sfy;
        // Sequential segment: potential-energy accumulation.
        energy_acc = energy_acc + e;
    }}
}}

void integrate() {{
    int a;
    for (a = 0; a < ATOMS; a++) {{
        px[a] = px[a] + fx[a] * 0.001;
        py[a] = py[a] + fy[a] * 0.001;
    }}
}}

float bond_energy() {{
    // Bonded-pair chain: each bond term feeds the next (sequential).
    float e = 0.0;
    int b;
    for (b = 1; b < ATOMS; b++) {{
        float dx = px[b] - px[b - 1];
        float dy = py[b] - py[b - 1];
        float r2 = dx * dx + dy * dy + 0.02;
        e = e * 0.5 + r2 * 0.3 + e / (r2 + 1.0);
    }}
    return e;
}}

void main() {{
    int i;
    build_neighbors();
    for (i = 0; i < ATOMS; i++) {{
        px[i] = (i % 10) * 0.7;
        py[i] = (i % 7) * 1.1;
    }}
    int t;
    float bond_total = 0.0;
    for (t = 0; t < STEPS; t++) {{
        build_neighbors();
        forces();
        integrate();
        bond_total = bond_total + bond_energy();
    }}
    float chk = 0.0;
    for (i = 0; i < ATOMS; i++) {{
        chk = chk + px[i] + py[i] * 0.5;
    }}
    print(energy_acc);
    print(bond_total);
    print(chk);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
