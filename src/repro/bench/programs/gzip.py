"""164.gzip -- LZ77 compression.

The hot code is the longest-match search: for each input position, walk a
hash chain of earlier positions and compare windows byte by byte
(data-dependent inner loop = irregular control flow), keeping the best
match (max-reduction segment).  The outer position loop advances by the
match length -- a data-dependent stride that keeps it sequential, exactly
why HELIX picks the inner candidate loops for gzip.
"""

_PARAMS = {
    "train": {"INPUT": 420},
    "ref": {"INPUT": 1900},
}

_TEMPLATE = """
int INPUT = {INPUT};
int WIN = 1024;
int CAND = 24;
int MAXM = 32;

int window[1024];
int chain[1024];
int head[64];
int lit_count = 0;
int match_count = 0;
int out_bits = 0;
int seed = 99;

void fill_window() {{
    int i;
    for (i = 0; i < WIN; i++) {{
        seed = (seed * 1103515245 + 12345) % 2147483648;
        window[i] = (seed / 64) % 17;
        chain[i] = 0;
    }}
}}

int hash3(int pos) {{
    int h = window[pos] * 17 + window[pos + 1] * 5 + window[pos + 2];
    return h % 64;
}}

int longest_match(int pos) {{
    int best = 2;
    int c;
    int cand = head[hash3(pos)];
    for (c = 0; c < CAND; c++) {{
        // Candidate positions derive from the chain start; the window
        // compare loop has a data-dependent trip count.
        int p2 = (cand + c * 37) % (pos + 1);
        // Fixed-width similarity prescreen (rolling weighted distance).
        int sim = 0;
        int d;
        for (d = 0; d < 5; d++) {{
            int diff = window[p2 + d] - window[pos + d];
            if (diff < 0) {{ diff = -diff; }}
            sim = sim * 2 + 16 - diff;
            sim = sim % 65521;
        }}
        int len = 0;
        while (len < MAXM && pos + len < WIN - 1 &&
               window[p2 + len] == window[pos + len]) {{
            len++;
        }}
        int score = len * 4 + sim % 4 - (c & 3);
        if (score > best * 4) {{
            best = len;
        }}
    }}
    return best;
}}

void main() {{
    fill_window();
    int pos = 0;
    int processed = 0;
    while (processed < INPUT && pos < WIN - MAXM - 2) {{
        int h = hash3(pos);
        int m = longest_match(pos);
        // Update the hash chain (sequential bookkeeping).
        chain[pos] = head[h];
        head[h] = pos;
        // Huffman-style bit accounting: a running code state per symbol.
        int codes = m + 2;
        int cstate = out_bits % 509;
        int ci = 0;
        while (ci < codes) {{
            cstate = (cstate * 2 + window[(pos + ci) % WIN]) % 509;
            out_bits = out_bits + 9 - cstate % 4;
            ci++;
        }}
        if (m > 2) {{
            match_count++;
            out_bits = out_bits + 12;
            pos = pos + m;
        }} else {{
            lit_count++;
            out_bits = out_bits + 9;
            pos = pos + 1;
        }}
        if (pos >= WIN - MAXM - 2) {{
            pos = pos % 97;
        }}
        processed++;
    }}
    print(lit_count);
    print(match_count);
    print(out_bits);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
