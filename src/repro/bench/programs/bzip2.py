"""256.bzip2 -- block-sorting compression.

Three archetypal phases per block: per-position sort-key computation
(heavy DOALL), a byte histogram whose data-dependent increments serialize
(selection must reject it), and rank assignment from the histogram
prefix (also sequential).  The DOALL key phase dominates, giving a
mid-range speedup (~2x).
"""

_PARAMS = {
    "train": {"BLOCKS": 10},
    "ref": {"BLOCKS": 44},
}

_TEMPLATE = """
int BLOCK = 96;
int BLOCKS = {BLOCKS};

int data[96];
int keys[96];
int hist[64];
int ranks[64];
int mtf[48];
int out_check = 0;
int seed = 3;

void fill_block(int b) {{
    int i;
    for (i = 0; i < BLOCK; i++) {{
        seed = (seed * 1103515245 + 12345) % 2147483648;
        data[i] = (seed / 32 + b) % 64;
    }}
}}

void compute_keys() {{
    // Sort keys: compare a rotation window per position (heavy DOALL).
    int i;
    for (i = 0; i < BLOCK; i++) {{
        int k = 0;
        int d;
        for (d = 0; d < 24; d++) {{
            int p1 = (i + d) % BLOCK;
            k = k * 3 + data[p1];
            k = k % 65521;
        }}
        keys[i] = k;
    }}
}}

void histogram() {{
    // Serializing: increments at data-dependent indices.
    int i;
    for (i = 0; i < 64; i++) {{
        hist[i] = 0;
    }}
    for (i = 0; i < BLOCK; i++) {{
        hist[data[i]] = hist[data[i]] + 1;
    }}
}}

int mtf_encode() {{
    // Move-to-front: the table mutates per symbol (sequential).
    int i;
    for (i = 0; i < 48; i++) {{
        mtf[i] = i;
    }}
    int out = 0;
    for (i = 0; i < BLOCK; i++) {{
        int sym = data[i] % 48;
        int pos = 0;
        while (pos < 48 && mtf[pos] != sym) {{
            pos++;
        }}
        if (pos >= 48) {{ pos = 47; }}
        out = (out * 7 + pos) % 1000003;
        int k = pos;
        while (k > 0) {{
            mtf[k] = mtf[k - 1];
            k--;
        }}
        mtf[0] = sym;
    }}
    return out;
}}

void assign_ranks() {{
    // Prefix sum: inherently sequential.
    int c = 0;
    int i;
    for (i = 0; i < 64; i++) {{
        ranks[i] = c;
        c = c + hist[i];
    }}
}}

void main() {{
    int b;
    for (b = 0; b < BLOCKS; b++) {{
        fill_block(b);
        compute_keys();
        histogram();
        int mtfc = mtf_encode();
        assign_ranks();
        int i;
        int local = 0;
        for (i = 0; i < BLOCK; i++) {{
            local = local + keys[i] % 64 + ranks[data[i]];
        }}
        out_check = (out_check + local + mtfc) % 1000000007;
    }}
    print(out_check);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
