"""197.parser -- link grammar parser (dictionary machinery).

Dominated by hash-bucket list chasing with data-dependent chain lengths
and by updates of shared match counts at data-dependent indices -- both
hostile to iteration-level parallelism.  The one profitable loop is the
per-sentence word-scoring scan whose body carries only a small
accumulator, giving parser its modest paper speedup (~1.4x).
"""

_PARAMS = {
    "train": {"SENTENCES": 34},
    "ref": {"SENTENCES": 150},
}

_TEMPLATE = """
int WORDS = 48;
int BUCKETS = 32;
int DICT = 256;
int SENTENCES = {SENTENCES};

int bucket_head[32];
int dict_next[256];
int dict_key[256];
int dict_score[256];
int match_count[32];
int sentence[48];
int seed = 17;

void build_dictionary() {{
    int i;
    for (i = 0; i < DICT; i++) {{
        seed = (seed * 1103515245 + 12345) % 2147483648;
        dict_key[i] = seed % 997;
        dict_score[i] = seed % 23;
        dict_next[i] = 0;
    }}
    for (i = 0; i < BUCKETS; i++) {{
        bucket_head[i] = (i * 8) % DICT;
    }}
    // Thread bucket chains through the dictionary.
    for (i = 0; i < DICT; i++) {{
        dict_next[i] = (i + BUCKETS) % DICT;
    }}
}}

int lookup(int key) {{
    int b = key % BUCKETS;
    int node = bucket_head[b];
    int hops = 0;
    int found = -1;
    while (hops < 8 && found < 0) {{
        if (dict_key[node] % 997 == key % 997) {{
            found = node;
        }}
        node = dict_next[node];
        hops++;
    }}
    if (found < 0) {{ found = node; }}
    return found;
}}

void main() {{
    build_dictionary();
    int s;
    int total = 0;
    for (s = 0; s < SENTENCES; s++) {{
        // Load the sentence (word ids derived from the sentence index).
        int w;
        for (w = 0; w < WORDS; w++) {{
            sentence[w] = (w * 131 + s * 17) % 997;
        }}
        // Score words: list chasing per word, shared count updates.
        int score = 0;
        for (w = 0; w < WORDS; w++) {{
            int node = lookup(sentence[w]);
            score = score + dict_score[node];
            match_count[node % BUCKETS] = match_count[node % BUCKETS] + 1;
        }}
        total = total + score;
        // Linkage pass: each word's link count feeds the next word's --
        // inherently sequential, like the parser's chart updates.
        int links = 0;
        for (w = 1; w < WORDS; w++) {{
            links = (links * 3 + sentence[w] + sentence[w - 1]) % 1009;
            int probe = links % 16 + 4;
            int q = 0;
            while (q < probe) {{
                links = links + dict_score[(links + q) % DICT];
                q++;
            }}
        }}
        total = (total + links) % 1000000007;
    }}
    int chk = 0;
    int i;
    for (i = 0; i < BUCKETS; i++) {{
        chk = chk + match_count[i] * (i + 1);
    }}
    print(total);
    print(chk);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
