"""255.vortex -- object-oriented database.

Objects live behind a handle table (double indirection); transactions
dispatch on object type and update fields through small helper functions,
so the dependence endpoints cross calls -- exercising Step 5's
dependence-driven inlining.  Index-list appends carry a cursor dependence.
Moderate speedup, as in the paper (~1.6x).
"""

_PARAMS = {
    "train": {"TXNS": 26},
    "ref": {"TXNS": 110},
}

_TEMPLATE = """
int OBJS = 128;
int TXNS = {TXNS};

int handle[128];
int obj_type[128];
int obj_a[128];
int obj_b[128];
int index_list[256];
int index_len = 0;
int commit_count = 0;
int seed = 77;

void build_db() {{
    int i;
    for (i = 0; i < OBJS; i++) {{
        seed = (seed * 1103515245 + 12345) % 2147483648;
        handle[i] = (i * 53 + 7) % OBJS;
        obj_type[i] = seed % 3;
        obj_a[i] = seed % 211;
        obj_b[i] = (seed / 512) % 211;
    }}
}}

int score_object(int o) {{
    int v = obj_a[o] * 3 + o;
    int k;
    for (k = 0; k < 12; k++) {{
        v = (v * 5 + k) % 4093;
    }}
    return v;
}}

int touch_object(int o) {{
    // Field update through a helper: a dependence endpoint inside a call.
    obj_b[o] = (obj_b[o] + 13) % 211;
    return obj_b[o];
}}

void main() {{
    build_db();
    int t;
    for (t = 0; t < TXNS; t++) {{
        // Scan all objects through their handles; mostly parallel work
        // with an index-append segment for qualifying objects.
        int i;
        int batch = 0;
        for (i = 0; i < OBJS; i++) {{
            int o = handle[i];
            int s = score_object(o);
            if (obj_type[o] == 1 && s % 7 < 2) {{
                int nb = touch_object(o);
                index_list[index_len % 256] = o + nb;
                index_len = index_len + 1;
                batch = batch + 1;
            }}
        }}
        commit_count = commit_count + batch;
        // Commit: compact the index list (run-length chain, sequential).
        int run = 0;
        int j;
        for (j = 1; j < 256; j++) {{
            int prev = index_list[j - 1];
            int curv = index_list[j];
            if (curv == prev) {{ run++; }} else {{
                run = (run * 3 + curv % 17 + curv / 29) % 1009;
            }}
            index_list[j] = (curv + run % 3 + run / 251) % 100003;
        }}
    }}
    int chk = 0;
    int i;
    for (i = 0; i < 256; i++) {{
        chk = chk + index_list[i] * (i % 13 + 1);
    }}
    print(commit_count);
    print(index_len);
    print(chk);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
