"""186.crafty -- chess position evaluation inside a search loop.

Crafty's time is dominated by a deeply sequential game/search loop; the
only loop-level parallelism lies in small board-scan kernels (material
count, mobility, king safety) of ~64 iterations with tiny bodies.  HELIX
finds little to use, matching the paper's near-flat crafty bars.
"""

_PARAMS = {
    "train": {"MOVES": 55},
    "ref": {"MOVES": 240},
}

_TEMPLATE = """
int MOVES = {MOVES};

int board[64];
int ptable[64];
int mobility[64];
int seed = 21;
int total_eval = 0;

void init_board() {{
    int i;
    for (i = 0; i < 64; i++) {{
        seed = (seed * 1103515245 + 12345) % 2147483648;
        board[i] = seed % 13 - 6;
        ptable[i] = (i * 7) % 23;
        mobility[i] = 0;
    }}
}}

int material() {{
    // Heavier per-square evaluation with piece-square interpolation;
    // the running score makes this scan sequential.
    int s = 0;
    int i;
    for (i = 0; i < 64; i++) {{
        int piece = board[i];
        if (piece < 0) {{ piece = -piece; }}
        int pst = (ptable[i] * (64 - i) + ptable[63 - i] * i) / 64;
        int blend = (s / 8) % 32;
        int tropism = (s % 7) * (pst % 5);
        s = s + piece * 100 + pst + blend + tropism;
        s = s % 1000003;
    }}
    return s;
}}

int king_safety(int kpos) {{
    int danger = 0;
    int d;
    for (d = 0; d < 24; d++) {{
        int sq = (kpos + d * 9 + 64) % 64;
        if (board[sq] < 0) {{
            danger = danger + mobility[sq] + 3;
        }}
        danger = (danger * 5 + sq) % 9973;
    }}
    return danger;
}}

void main() {{
    init_board();
    int m;
    int alpha = -100000;
    for (m = 0; m < MOVES; m++) {{
        // Make a move (sequential board mutation).
        int from = (m * 17 + seed % 7) % 64;
        int to = (m * 29 + 11) % 64;
        int captured = board[to];
        board[to] = board[from];
        board[from] = 0;

        // Mobility scan over squares.
        int i;
        for (i = 0; i < 64; i++) {{
            int reach = 0;
            int d;
            for (d = 0; d < 3; d++) {{
                int sq = (i + d * 7 + 1) % 64;
                if (board[sq] == 0) {{ reach++; }}
            }}
            mobility[i] = reach;
        }}

        int score = material() - king_safety(to % 64);
        if (score > alpha) {{
            alpha = score;
        }} else {{
            // Undo the move (search backtracking).
            board[from] = board[to];
            board[to] = captured;
        }}
        total_eval = total_eval + score % 64;
    }}
    print(alpha);
    print(total_eval);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
