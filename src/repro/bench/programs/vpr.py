"""175.vpr -- FPGA placement and routing.

The placement cost evaluator walks all nets computing bounding boxes from
pin positions (per-net work is parallel; the cost accumulator is a short
trailing segment), and a router-like pass expands wavefronts with
data-dependent extents.  Lands around the paper's ~2x.
"""

_PARAMS = {
    "train": {"ITERS": 16},
    "ref": {"ITERS": 70},
}

_TEMPLATE = """
int NETS = 56;
int PINS = 8;
int GRID = 24;
int ITERS = {ITERS};

int pinx[448];
int piny[448];
int net_weight[56];
int total_cost = 0;
int route_len = 0;
int seed = 57;

void place_pins(int it) {{
    // Pure hash of (pin, iteration): each pin is independent (DOALL).
    int i;
    for (i = 0; i < NETS * PINS; i++) {{
        int h = (i * 2654435761 + it * 40503) % 2147483648;
        pinx[i] = h % GRID;
        piny[i] = (h / 1024) % GRID;
    }}
}}

void main() {{
    int w;
    for (w = 0; w < NETS; w++) {{
        net_weight[w] = w % 5 + 1;
    }}
    int it;
    for (it = 0; it < ITERS; it++) {{
        place_pins(it);
        // Net bounding-box cost: parallel per net, accumulator segment.
        int cost = 0;
        int n;
        for (n = 0; n < NETS; n++) {{
            int minx = GRID;
            int maxx = 0;
            int miny = GRID;
            int maxy = 0;
            int p;
            for (p = 0; p < PINS; p++) {{
                int x = pinx[n * PINS + p];
                int y = piny[n * PINS + p];
                if (x < minx) {{ minx = x; }}
                if (x > maxx) {{ maxx = x; }}
                if (y < miny) {{ miny = y; }}
                if (y > maxy) {{ maxy = y; }}
            }}
            int bb = (maxx - minx) + (maxy - miny);
            cost = cost + bb * net_weight[n % 56];
        }}
        total_cost = (total_cost + cost) % 1000000007;

        // Legalization sweep: running offset carried across pins.
        int off = 0;
        int lp;
        for (lp = 0; lp < NETS * PINS; lp++) {{
            off = (off * 3 + pinx[lp] - piny[lp] + GRID) % 97;
            if (off > 64) {{
                pinx[lp] = (pinx[lp] + off % 3) % GRID;
            }}
        }}

        // Router-like wavefront: data-dependent expansion length.
        int n2;
        for (n2 = 0; n2 < NETS; n2++) {{
            int x = pinx[n2 * PINS];
            int y = piny[n2 * PINS];
            int tx = pinx[n2 * PINS + 1];
            int ty = piny[n2 * PINS + 1];
            int steps = 0;
            while ((x != tx || y != ty) && steps < 40) {{
                if (x < tx) {{ x++; }} else {{
                    if (x > tx) {{ x = x - 1; }} else {{
                        if (y < ty) {{ y++; }} else {{ y = y - 1; }}
                    }}
                }}
                steps++;
            }}
            route_len = route_len + steps;
        }}
    }}
    print(total_cost);
    print(route_len);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
