"""300.twolf -- standard-cell placement by simulated annealing.

The move loop carries the LCG random-number generator (a short sequential
segment at the *top* of each iteration), evaluates the cost of a proposed
cell swap over that cell's nets (long parallel stretch), and commits
rarely taken accepts into shared placement arrays (a conditional-producer
segment whose data transfer is infrequent -- the paper's Figure 2 story).
"""

_PARAMS = {
    "train": {"MOVES": 42},
    "ref": {"MOVES": 185},
}

_TEMPLATE = """
int CELLS = 64;
int NETS = 48;
int FAN = 6;
int MOVES = {MOVES};

int cellx[64];
int celly[64];
int net_cell[288];
int cost_now = 0;
int accepts = 0;
int rng = 12345;

void init_placement() {{
    int i;
    for (i = 0; i < CELLS; i++) {{
        cellx[i] = (i * 13) % 32;
        celly[i] = (i * 7) % 32;
    }}
    for (i = 0; i < NETS * FAN; i++) {{
        rng = (rng * 1103515245 + 12345) % 2147483648;
        net_cell[i] = rng % CELLS;
    }}
}}

int net_span(int n, int moved, int nx, int ny) {{
    int minx = 99;
    int maxx = -99;
    int miny = 99;
    int maxy = -99;
    int f;
    for (f = 0; f < FAN; f++) {{
        int c = net_cell[n * FAN + f];
        int xx = cellx[c];
        int yy = celly[c];
        if (c == moved) {{ xx = nx; yy = ny; }}
        if (xx < minx) {{ minx = xx; }}
        if (xx > maxx) {{ maxx = xx; }}
        if (yy < miny) {{ miny = yy; }}
        if (yy > maxy) {{ maxy = yy; }}
    }}
    return maxx - minx + maxy - miny;
}}

void main() {{
    init_placement();
    int m;
    for (m = 0; m < MOVES; m++) {{
        // Sequential segment: the RNG carries across iterations.
        rng = (rng * 1103515245 + 12345) % 2147483648;
        int cell = rng % CELLS;
        int nx = (rng / 64) % 32;
        int ny = (rng / 2048) % 32;

        // Parallel: evaluate span delta over all nets.
        int delta = 0;
        int n;
        for (n = 0; n < NETS; n++) {{
            int before = net_span(n, -1, 0, 0);
            int after = net_span(n, cell, nx, ny);
            delta = delta + after - before;
        }}

        // Rarely taken accept: shared placement update.
        if (delta < 0) {{
            cellx[cell] = nx;
            celly[cell] = ny;
            cost_now = cost_now + delta;
            accepts++;
        }}
    }}
    int chk = 0;
    int i;
    for (i = 0; i < CELLS; i++) {{
        chk = chk + cellx[i] * 3 + celly[i];
    }}
    print(accepts);
    print(cost_now);
    print(chk);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
