"""179.art -- Adaptive Resonance Theory neural network.

Models the original's structure: ``scan_recognize`` sweeps input windows
through the F1->F2 neuron layers (wide DOALL loops over neurons), a
winner-take-all pass (max reduction), and a training update of the winning
neuron's weights.  ``reset_nodes`` is called both from ``main`` and from
the scan loop -- the two-parent shape of the paper's Figure 8 dynamic loop
nesting graph.  Almost all time is in DOALL code, which is why art is the
paper's best speedup (4.12x).
"""

_PARAMS = {
    "train": {"PASSES": 7},
    "ref": {"PASSES": 30},
}

_TEMPLATE = """
int F1 = 80;
int F2 = 48;
int PASSES = {PASSES};

float inp[80];
float f1_act[80];
float f2_act[48];
float weights[3840];
int winner_hist[48];
int seed = 13;

void reset_nodes() {{
    int i;
    for (i = 0; i < F1; i++) {{
        f1_act[i] = 0.0;
    }}
    for (i = 0; i < F2; i++) {{
        f2_act[i] = 0.0;
    }}
}}

void load_input(int pass) {{
    int i;
    for (i = 0; i < F1; i++) {{
        int v = (i * 37 + pass * 101 + 29) % 255;
        inp[i] = v * 0.0039;
    }}
}}

int scan_pass(int pass) {{
    load_input(pass);
    reset_nodes();
    int j;
    // F2 activation: wide DOALL over output neurons.
    for (j = 0; j < F2; j++) {{
        float s = 0.0;
        int i;
        for (i = 0; i < F1; i++) {{
            s = s + weights[j * F1 + i] * inp[i];
        }}
        f2_act[j] = s;
    }}
    // Vigilance check: running norm over F2 (sequential).
    float vig = 0.0;
    for (j = 0; j < F2; j++) {{
        vig = vig * 0.9 + f2_act[j] * 0.1 + vig / (f2_act[j] + 2.0);
        vig = vig + (vig * 0.5) / (j + 3.0) - vig / (f2_act[j] + 4.0);
    }}
    f2_act[0] = f2_act[0] + vig * 0.0001;
    // Winner-take-all: max reduction.
    int best = 0;
    float bestv = -1.0;
    for (j = 0; j < F2; j++) {{
        if (f2_act[j] > bestv) {{
            bestv = f2_act[j];
            best = j;
        }}
    }}
    return best;
}}

void train_winner(int best) {{
    int i;
    for (i = 0; i < F1; i++) {{
        weights[best * F1 + i] =
            weights[best * F1 + i] * 0.92 + inp[i] * 0.08;
    }}
}}

void main() {{
    int i;
    int p;
    for (i = 0; i < 3840; i++) {{
        int h = (i * 2654435761 + 12345) % 2147483648;
        weights[i] = (h % 1000) * 0.001;
    }}
    reset_nodes();
    for (p = 0; p < PASSES; p++) {{
        int best = scan_pass(p);
        winner_hist[best] = winner_hist[best] + 1;
        train_winner(best);
    }}
    float wsum = 0.0;
    for (i = 0; i < 3840; i++) {{
        wsum = wsum + weights[i];
    }}
    int hsum = 0;
    for (i = 0; i < F2; i++) {{
        hsum = hsum + winner_hist[i] * (i + 1);
    }}
    print(wsum);
    print(hsum);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
