"""183.equake -- seismic wave propagation.

The hot kernel of equake is ``smvp``, a sparse matrix-vector product in
CSR form, inside a time-integration loop.  Rows are independent (DOALL
with indirect column loads); the integration updates are element-wise
DOALL; the per-step error norm is a reduction the selection algorithm must
price (accumulator segment).
"""

_PARAMS = {
    "train": {"STEPS": 14},
    "ref": {"STEPS": 64},
}

_TEMPLATE = """
int ROWS = 100;
int NNZ = 6;
int STEPS = {STEPS};

int colidx[600];
float aval[600];
int rowstart[101];
float x[100];
float y[100];
float disp[100];
float vel[100];
float norms[100];
int seed = 7;

void build_matrix() {{
    int i;
    int k = 0;
    for (i = 0; i < ROWS; i++) {{
        rowstart[i] = k;
        int n;
        for (n = 0; n < NNZ; n++) {{
            int c = i + n * 7 - 21;
            if (c < 0) {{ c = -c; }}
            colidx[k] = c % ROWS;
            seed = (seed * 1103515245 + 12345) % 2147483648;
            aval[k] = 0.001 + (seed % 97) * 0.0021;
            k++;
        }}
    }}
    rowstart[ROWS] = k;
}}

void smvp() {{
    int i;
    for (i = 0; i < ROWS; i++) {{
        float s = 0.0;
        int k;
        int lo = rowstart[i];
        int hi = rowstart[i + 1];
        for (k = lo; k < hi; k++) {{
            s = s + aval[k] * x[colidx[k]];
        }}
        y[i] = s;
    }}
}}

void integrate() {{
    int i;
    for (i = 0; i < ROWS; i++) {{
        float a = y[i] - 0.02 * vel[i] - 0.1 * disp[i];
        vel[i] = vel[i] + 0.05 * a;
        disp[i] = disp[i] + 0.05 * vel[i];
        x[i] = disp[i];
        norms[i] = disp[i] * disp[i];
    }}
}}

void main() {{
    int i;
    int t;
    build_matrix();
    for (i = 0; i < ROWS; i++) {{
        x[i] = (i % 13) * 0.05;
        disp[i] = x[i];
        vel[i] = 0.0;
    }}
    float energy = 0.0;
    for (t = 0; t < STEPS; t++) {{
        smvp();
        integrate();
        // Absorbing boundary: each boundary node feeds the next.
        float bc = 0.0;
        int bnode;
        for (bnode = 1; bnode < 64; bnode++) {{
            bc = bc * 0.6 + disp[bnode] - disp[bnode - 1];
            x[0] = x[0] + bc * 0.001;
        }}
        // Error norm: a reduction over the per-row squares.
        float e = 0.0;
        for (i = 0; i < ROWS; i++) {{
            e = e + norms[i];
        }}
        energy = energy + e * 0.01;
    }}
    float chk = 0.0;
    for (i = 0; i < ROWS; i++) {{
        chk = chk + disp[i] * (i % 7 + 1);
    }}
    print(energy);
    print(chk);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
