"""177.mesa -- 3-D graphics rasterization.

Models span-based triangle rasterization: the chosen loop iterates over
scanline spans; each span shades a run of pixels (iteration-private
z-buffer and color-buffer accesses, a small lighting loop per pixel) and
accumulates a drawn-pixel count -- a short sequential segment at the end
of a long, mostly parallel span body.
"""

_PARAMS = {
    "train": {"FRAMES": 6},
    "ref": {"FRAMES": 26},
}

_TEMPLATE = """
int W = 32;
int H = 28;
int FRAMES = {FRAMES};

int zbuf[896];
int cbuf[896];
int lights[6];
int texture[896];
int drawn_total = 0;

void clear_buffers() {{
    int p;
    for (p = 0; p < W * H; p++) {{
        zbuf[p] = 255;
        cbuf[p] = 0;
    }}
}}

int render_frame(int f) {{
    int yrow;
    int drawn = 0;
    for (yrow = 0; yrow < H; yrow++) {{
        // One span per row: shade W pixels (all private accesses).
        int hits = 0;
        int xcol;
        for (xcol = 0; xcol < W; xcol++) {{
            int p = yrow * W + xcol;
            int z = (xcol * 3 + yrow * 5 + f * 7) % 256;
            int color = (xcol * xcol + yrow) % 64;
            int l;
            for (l = 0; l < 6; l++) {{
                int d = xcol - lights[l];
                if (d < 0) {{ d = -d; }}
                color = color + (lights[l] * 3) / (d + 1);
            }}
            // Bilinear-ish texture filter over neighbour texels.
            int tex = 0;
            int tap;
            for (tap = 0; tap < 4; tap++) {{
                int tp = (p + tap * 7) % (W * H);
                tex = (tex * 3 + texture[tp] + tap) % 509;
            }}
            color = color + tex % 16;
            if (z < zbuf[p]) {{
                zbuf[p] = z;
                cbuf[p] = color;
                hits++;
            }}
        }}
        // Sequential segment: per-span drawn accumulation.
        drawn = drawn + hits;
    }}
    return drawn;
}}

void main() {{
    int f;
    int i;
    for (i = 0; i < 6; i++) {{
        lights[i] = (i * 11 + 3) % W;
    }}
    for (i = 0; i < W * H; i++) {{
        texture[i] = (i * 2654435761) % 256;
    }}
    clear_buffers();
    int composite = 0;
    for (f = 0; f < FRAMES; f++) {{
        int d = render_frame(f);
        drawn_total = drawn_total + d;
        // Frame composition: two alpha-blend scans with carried state
        // (forward and backward), like mesa's span compositing.
        int acc = 0;
        int pix;
        for (pix = 0; pix < W * H; pix++) {{
            acc = (acc * 7 + cbuf[pix]) % 509;
            acc = acc + zbuf[pix] / (acc % 13 + 2);
        }}
        int acc2 = 0;
        for (pix = W * H - 1; pix >= 0; pix--) {{
            acc2 = (acc2 * 5 + zbuf[pix]) % 521;
            acc2 = acc2 + cbuf[pix] / (acc2 % 11 + 3);
        }}
        composite = (composite + acc + acc2) % 1000003;
        if (f % 16 == 15) {{
            clear_buffers();
        }}
    }}
    int chk = 0;
    for (i = 0; i < W * H; i++) {{
        chk = chk + cbuf[i] * (i % 5 + 1) + zbuf[i];
    }}
    print(drawn_total);
    print(composite);
    print(chk);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
