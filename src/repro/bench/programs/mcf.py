"""181.mcf -- minimum-cost network flow (network simplex).

Two archetypal loops: the entering-arc *pricing scan* (computes reduced
costs over all arcs; carries only a min-reduction, but its body is small,
so parallelizing it barely pays -- the paper's mcf is its second-lowest
speedup) and the *tree update*, a pointer-chasing walk along parent links
that is inherently sequential and must be rejected by loop selection.
"""

_PARAMS = {
    "train": {"PIVOTS": 48},
    "ref": {"PIVOTS": 210},
}

_TEMPLATE = """
int ARCS = 90;
int NODES = 64;
int PIVOTS = {PIVOTS};

int tail[90];
int head[90];
int cost[90];
int flow[90];
int potential[64];
int parent[64];
int depth[64];
int seed = 5;

void build_network() {{
    int i;
    for (i = 0; i < ARCS; i++) {{
        seed = (seed * 1103515245 + 12345) % 2147483648;
        tail[i] = seed % NODES;
        head[i] = (seed / 128) % NODES;
        cost[i] = seed % 50 + 1;
        flow[i] = 0;
    }}
    for (i = 0; i < NODES; i++) {{
        parent[i] = i / 2;
        depth[i] = i % 8;
        potential[i] = (i * 13) % 40;
    }}
}}

int price_arcs() {{
    // Entering-arc scan: reduced cost over all arcs, min reduction.
    int bestArc = -1;
    int bestRed = 0;
    int a;
    for (a = 0; a < ARCS; a++) {{
        int red = cost[a] - potential[tail[a]] + potential[head[a]];
        // Smoothed congestion estimate per arc.
        int est = red;
        int k;
        for (k = 0; k < 2; k++) {{
            est = (est * 3 + cost[(a + k) % 90] - k) % 1021;
        }}
        if (flow[a] % 3 == 0 && red * 8 + est % 8 < bestRed * 8) {{
            bestRed = red;
            bestArc = a;
        }}
    }}
    return bestArc;
}}

void update_tree(int arc) {{
    // Pointer chase toward the root: inherently sequential.
    int u = tail[arc];
    int hops = 0;
    while (u != 0 && hops < 48) {{
        potential[u] = potential[u] + 1 + (depth[u] + hops) % 3;
        depth[u] = (depth[u] + 1) % 8;
        u = parent[u];
        hops++;
    }}
    flow[arc] = flow[arc] + 1;
    // Dual update walks over the node chain (sequential).
    int carry = 0;
    int n;
    for (n = 1; n < NODES; n++) {{
        carry = (carry + potential[n] - potential[n - 1]) % 613;
        if (carry < 0) {{ carry = carry + 613; }}
        potential[n] = potential[n] + carry % 2;
        depth[n] = (depth[n] * 3 + carry) % 4093;
    }}
    int carry2 = 0;
    for (n = NODES - 2; n >= 0; n--) {{
        carry2 = (carry2 * 5 + potential[n + 1] % 17) % 2039;
        if (carry2 % 9 == 4) {{
            potential[n] = potential[n] + 1;
        }}
    }}
    // Basis refactorization sweep (sequential chain with division).
    int basis = 1;
    for (n = 0; n < NODES; n++) {{
        basis = (basis * 31 + potential[n]) % 65521;
        basis = basis + depth[n] / (basis % 7 + 2);
    }}
    depth[0] = (depth[0] + basis) % 4093;
}}

void main() {{
    build_network();
    int p;
    int done = 0;
    for (p = 0; p < PIVOTS; p++) {{
        int arc = price_arcs();
        if (arc < 0) {{
            // Degenerate pivot: fall back to a round-robin arc.
            arc = p % ARCS;
            done++;
            potential[p % NODES] = potential[p % NODES] - 1;
        }}
        update_tree(arc);
    }}
    int chk = 0;
    int i;
    for (i = 0; i < NODES; i++) {{
        chk = chk + potential[i] * (i % 9 + 1);
    }}
    int fsum = 0;
    for (i = 0; i < ARCS; i++) {{
        fsum = fsum + flow[i];
    }}
    print(chk);
    print(fsum);
    print(done);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
