"""254.gap -- computer algebra (polynomial / big-number arithmetic).

Polynomial products give coefficient-wise DOALL inner loops (the
``res[i+j]`` accesses are affine and iteration-local per inner loop), but
every product is followed by a carry-propagation pass whose cross-element
dependence (``res[k+1] += res[k] / BASE``) is genuinely sequential -- the
mix lands gap near the paper's ~1.8x.
"""

_PARAMS = {
    "train": {"ROUNDS": 12},
    "ref": {"ROUNDS": 52},
}

_TEMPLATE = """
int DEG = 48;
int BASE = 100;
int ROUNDS = {ROUNDS};

int pa[48];
int pb[48];
int res[96];
int seed = 41;
int checksum = 0;

void randomize() {{
    int i;
    for (i = 0; i < DEG; i++) {{
        seed = (seed * 1103515245 + 12345) % 2147483648;
        pa[i] = seed % BASE;
        pb[i] = (seed / 1024) % BASE;
    }}
}}

void poly_mul() {{
    // Convolution form: each output coefficient is independent (DOALL
    // over k with an inner reduction into a private register).
    int k;
    for (k = 0; k < 2 * DEG - 1; k++) {{
        int s = 0;
        int lo = k - DEG + 1;
        if (lo < 0) {{ lo = 0; }}
        int hi = k;
        if (hi > DEG - 1) {{ hi = DEG - 1; }}
        int i;
        for (i = lo; i <= hi; i++) {{
            s = s + pa[i] * pb[k - i];
        }}
        res[k] = s;
    }}
    res[2 * DEG - 1] = 0;
}}

void carry_propagate() {{
    // Sequential: each digit feeds the next.
    int k;
    for (k = 0; k < 2 * DEG - 1; k++) {{
        int c = res[k] / BASE;
        res[k] = res[k] % BASE;
        res[k + 1] = res[k + 1] + c;
    }}
}}

int normalize() {{
    // Big-number normalization: remainder chains with division.
    int rem = 0;
    int k;
    for (k = 2 * DEG - 1; k >= 0; k--) {{
        int v = rem * BASE + res[k];
        int q = v / 7;
        rem = v - q * 7;
        res[k] = (res[k] + q % 3) % BASE;
    }}
    int rem2 = 0;
    for (k = 0; k < 2 * DEG; k++) {{
        int v2 = rem2 * BASE + res[k];
        int q2 = v2 / 11;
        rem2 = v2 - q2 * 11;
        res[k] = (res[k] + q2 % 2) % BASE;
    }}
    return rem + rem2;
}}

void main() {{
    int r;
    int remsum = 0;
    for (r = 0; r < ROUNDS; r++) {{
        randomize();
        poly_mul();
        carry_propagate();
        remsum = (remsum + normalize()) % 1009;
        int i;
        int local = 0;
        for (i = 0; i < 2 * DEG; i++) {{
            local = local + res[i] * (i % 11 + 1);
        }}
        checksum = (checksum + local) % 1000000007;
    }}
    print(checksum);
    print(remsum);
}}
"""


def source(scale: str = "ref") -> str:
    return _TEMPLATE.format(**_PARAMS[scale])
