"""Registry of the 13 benchmark programs."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.bench.programs import (
    ammp,
    art,
    bzip2,
    crafty,
    equake,
    gap,
    gzip,
    mcf,
    mesa,
    parser,
    twolf,
    vortex,
    vpr,
)
from repro.ir import Module


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: sources per input scale plus paper-side context."""

    name: str
    description: str
    source: Callable[[str], str]
    #: Approximate 6-core whole-program speedup read off the paper's
    #: Figure 9 (used as the shape target in EXPERIMENTS.md).
    paper_speedup_6: float
    #: What the synthetic program models from the original benchmark.
    modeled: str


#: Paper Figure 9 values are approximate bar readings; the geometric mean
#: (2.25x) and the maximum (4.12x, art) are stated exactly in the text.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec(
            "gzip",
            "LZ77 compression: hash-chain longest-match search",
            gzip.source,
            1.9,
            "inner candidate-match loops with a max-reduction segment; "
            "outer position loop with data-dependent advance",
        ),
        BenchmarkSpec(
            "vpr",
            "FPGA placement: net bounding-box cost + annealing moves",
            vpr.source,
            2.0,
            "per-net cost loops (mostly parallel) with a cost accumulator "
            "segment and an RNG-carried move loop",
        ),
        BenchmarkSpec(
            "mesa",
            "3-D rasterization: span shading with z-buffer test",
            mesa.source,
            2.6,
            "per-pixel DOALL shading with iteration-private z-buffer "
            "accesses and a small drawn-count segment",
        ),
        BenchmarkSpec(
            "art",
            "Adaptive Resonance Theory image recognition",
            art.source,
            4.1,
            "F1/F2 neuron scans: wide DOALL loops; reset_nodes called "
            "from two distinct loops (the paper's Figure 8 graph shape)",
        ),
        BenchmarkSpec(
            "mcf",
            "Minimum-cost flow: network simplex",
            mcf.source,
            1.3,
            "entering-arc scan with a min-reduction; tree update by "
            "pointer chasing (sequential, rejected by selection)",
        ),
        BenchmarkSpec(
            "equake",
            "Seismic wave propagation: sparse matrix-vector kernel",
            equake.source,
            2.9,
            "CSR smvp rows as DOALL, time-integration updates, and an "
            "error-norm accumulator segment",
        ),
        BenchmarkSpec(
            "crafty",
            "Chess: board evaluation inside a search loop",
            crafty.source,
            1.35,
            "small per-square scan loops under a deeply sequential "
            "game loop; little exploitable parallel time",
        ),
        BenchmarkSpec(
            "ammp",
            "Molecular dynamics: neighbor-list force computation",
            ammp.source,
            2.2,
            "per-atom force DOALL with indirect neighbor loads and an "
            "energy accumulator segment",
        ),
        BenchmarkSpec(
            "parser",
            "Link grammar parsing: dictionary list chasing",
            parser.source,
            1.4,
            "hash-bucket list traversal with data-dependent lengths and "
            "shared count updates",
        ),
        BenchmarkSpec(
            "gap",
            "Computer algebra: polynomial arithmetic",
            gap.source,
            1.8,
            "coefficient-wise DOALL products plus a sequential carry "
            "propagation pass",
        ),
        BenchmarkSpec(
            "vortex",
            "Object database: typed object updates through handles",
            vortex.source,
            1.6,
            "handle indirection, call-heavy field updates (exercises "
            "Step 5 inlining) and index-list append segments",
        ),
        BenchmarkSpec(
            "bzip2",
            "Block compression: counting sort and key ranking",
            bzip2.source,
            2.0,
            "heavy DOALL key computation, a serializing histogram loop "
            "(rejected), and rank assignment",
        ),
        BenchmarkSpec(
            "twolf",
            "Standard-cell placement: simulated annealing",
            twolf.source,
            2.2,
            "LCG-carried move generation (small segment) with parallel "
            "cost evaluation and rarely-taken accept updates",
        ),
    ]
}


def benchmark_names() -> List[str]:
    """Suite order as in the paper's tables."""
    return [
        "gzip",
        "vpr",
        "mesa",
        "art",
        "mcf",
        "equake",
        "crafty",
        "ammp",
        "parser",
        "gap",
        "vortex",
        "bzip2",
        "twolf",
    ]


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {benchmark_names()}"
        ) from None


def compile_benchmark(name: str, scale: str = "ref") -> Module:
    """Compile one benchmark at the given input scale ('train'/'ref')."""
    from repro.frontend import compile_source

    spec = get_benchmark(name)
    return compile_source(spec.source(scale), f"{name}.{scale}")


_fingerprints: Dict[Tuple[str, str], str] = {}


def benchmark_fingerprint(name: str, scale: str = "ref") -> str:
    """Content hash of one benchmark's source at ``scale``.

    The evaluation disk cache keys every artifact on this, so editing a
    benchmark program invalidates exactly that benchmark's entries.
    """
    key = (name, scale)
    if key not in _fingerprints:
        source = get_benchmark(name).source(scale)
        digest = hashlib.sha256(f"{name}.{scale}\0{source}".encode())
        _fingerprints[key] = digest.hexdigest()[:24]
    return _fingerprints[key]
