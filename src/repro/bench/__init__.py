"""The benchmark suite: 13 SPEC-CPU2000-like MiniC programs.

The paper evaluates 13 of the 15 C benchmarks of SPEC CPU2000 (176.gcc and
253.perlbmk are excluded there because the pointer analysis runs out of
memory).  SPEC sources and inputs are proprietary, so each program here is
a synthetic MiniC workload written to mirror the *loop structure* of the
original benchmark's hot code -- nesting shape, density of loop-carried
dependences, balance of parallel versus sequential-segment code, and
control/memory irregularity -- which are the properties HELIX's behaviour
depends on.  Every program has a ``train`` and a ``ref`` input scale,
preserving the paper's profile-on-train / measure-on-ref methodology.
"""

from repro.bench.suite import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_fingerprint,
    benchmark_names,
    compile_benchmark,
    get_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "benchmark_fingerprint",
    "benchmark_names",
    "get_benchmark",
    "compile_benchmark",
]
