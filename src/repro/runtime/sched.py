"""Invocation schedulers: the compiled engine and its reference twin.

:func:`schedule_compact` is the production scheduler.  It consumes the
:class:`~repro.runtime.trace.TraceProgram` compiled once per trace and
reconstructs the parallel schedule of one invocation under a
:class:`~repro.runtime.machine.MachineConfig`.  Because duplicate
filtering, producer sets, word counts and wait/signal pairing were
resolved at pack time, the per-machine walk touches only integers plus
the previous iteration's signal timetable, and two common shapes skip
the walk entirely:

* **counted DOALL** (counted loop, no waits/signals/transfers at all):
  the finish time is ``conf + max per-core span sum``, computed by
  slicing the precomputed span column;
* **single core, no prefetching**: every stalling wait completes
  exactly ``signal_latency`` after the thread reaches it (the
  predecessor's signal time can never exceed the successor's clock on
  one core), so the signal timetable is never materialized.

:func:`schedule_invocation_reference` is the original per-event
interpreter over the raw :class:`~repro.runtime.trace.InvocationTrace`.
It is kept as the differential oracle -- ``tests/test_sched_differential``
and ``repro bench-sched`` enforce field-exact :class:`ScheduleResult`
equality between the two engines -- and is still written for clarity,
not speed (its only performance fixes are hoisting the producer-set
rebuild and the usually-redundant interval sort out of the hot loop).

Both engines implement the same model (see
:mod:`repro.runtime.parallel` for the methodology): per-core clocks with
round-robin iteration assignment, pull-based signal completion
``max(t, ts) + L``, helper-thread prefetch agendas, data forwarding
charged per word actually produced by the predecessor, and memory
barriers on non-TSO machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.loopinfo import ParallelizedLoop
from repro.runtime.machine import MachineConfig, PrefetchMode
from repro.runtime.trace import (
    CTRL_DEP,
    OP_SIGNAL,
    OP_WAIT,
    OP_WAIT_SYNC,
    OP_XFER,
    CompactInvocationTrace,
    InvocationTrace,
)


@dataclass
class ScheduleResult:
    """Timing of one invocation under a specific machine."""

    parallel_cycles: int
    sequential_cycles: int
    signals: int = 0
    waits: int = 0
    wait_stall_cycles: int = 0
    transfer_words: int = 0
    segment_cycles: int = 0
    #: Busy compute cycles across all cores: every iteration's
    #: sequential span plus the memory-barrier cost of each recorded
    #: wait/signal (zero on TSO machines).
    compute_cycles: int = 0
    #: Cycles spent receiving iteration-start control signals (the
    #: successor's wait on the predecessor's IterationFlag store);
    #: always zero for counted loops, which derive iteration numbers
    #: locally.
    signal_cycles: int = 0
    #: Cycles spent forwarding data words between cores.
    transfer_cycles: int = 0

    def overhead_breakdown(self) -> Dict[str, int]:
        """Where the busy cycles of this invocation went.

        The four buckets are disjoint: together with the per-thread
        configuration cost, the wind-down collection and per-core idle
        time they account exactly for ``parallel_cycles * cores`` (the
        simulated-time timeline exporter places every bucket on its
        core; ``tests/test_timeline.py`` asserts the accounting).
        """
        return {
            "compute": self.compute_cycles,
            "wait_stall": self.wait_stall_cycles,
            "signal": self.signal_cycles,
            "transfer": self.transfer_cycles,
        }


def _merge_segments(
    intervals: List[Tuple[int, int]], needs_sort: bool
) -> int:
    """Total busy time of the merged wait->signal intervals."""
    if needs_sort:
        intervals.sort()
    merged_start, merged_end = intervals[0]
    total = 0
    for start, end in intervals[1:]:
        if start <= merged_end:
            if end > merged_end:
                merged_end = end
        else:
            total += merged_end - merged_start
            merged_start, merged_end = start, end
    return total + (merged_end - merged_start)


def schedule_compact(
    trace: CompactInvocationTrace,
    loop: ParallelizedLoop,
    machine: MachineConfig,
) -> ScheduleResult:
    """Reconstruct the parallel schedule of one invocation (compiled).

    Field-exact with :func:`schedule_invocation_reference` on the
    equivalent :class:`InvocationTrace`.
    """
    seq = trace.end_cycles - trace.start_cycles
    prog = trace.program
    n = len(prog.spans)
    if n == 0:
        # Zero-iteration invocation: the loop body never ran, so no
        # threads were configured and nothing needs collecting -- the
        # invocation costs exactly its sequential span.
        return ScheduleResult(parallel_cycles=seq, sequential_cycles=seq)

    cores = machine.cores
    latency = machine.signal_latency
    counted = loop.counted
    conf = machine.config_cycles_per_thread * max(cores - 1, 1)
    # The main thread collects the exit variable and stops the parallel
    # threads once the last iteration retires.
    wind_down = latency + cores - 1

    signals = prog.signals if counted else prog.signals + prog.next_iters
    stats = ScheduleResult(
        parallel_cycles=0,
        sequential_cycles=seq,
        signals=signals,
        waits=prog.waits,
        transfer_words=prog.transfer_words,
    )

    # Fast path: counted DOALL.  No waits, signals or transfers exist
    # anywhere in the trace (duplicates would imply a kept first
    # occurrence, so there are no elided barrier events either) and a
    # counted loop ignores next_iter for timing, so every core just runs
    # its round-robin share of the spans back to back.
    if counted and prog.active_ops == 0:
        spans = prog.spans
        busy = max(sum(spans[c::cores]) for c in range(min(cores, n)))
        stats.parallel_cycles = conf + busy + wind_down
        stats.compute_cycles = prog.span_total  # barrier_events == 0 here
        return stats

    fast = machine.prefetched_signal_latency
    mode = machine.effective_prefetch_mode
    transfer = machine.word_transfer_cycles
    # Section 2.3: without total store ordering every synchronizing load
    # and store needs a memory barrier.
    barrier = 0 if machine.total_store_ordering else machine.barrier_cycles

    op_, a1_, a2_, at_ = prog.op, prog.a1, prog.a2, prog.at
    pre_, off, tail = prog.pre, prog.off, prog.tail
    it_start, it_end = trace.it_start, trace.it_end
    has_next = prog.has_next
    slots = [0] * prog.slot_count
    stall = 0
    seg = 0
    sig = 0
    stats.compute_cycles = prog.span_total + barrier * prog.barrier_events
    stats.transfer_cycles = prog.transfer_words * transfer

    # Fast path: one core, no prefetching.  Iterations run back to back
    # on a single clock, so any predecessor signal time is <= the
    # current clock: every stalling wait (and the control wait) completes
    # exactly ``latency`` later and the signal timetable is never needed.
    if cores == 1 and mode is PrefetchMode.NONE:
        t = conf
        # On one clock the predecessor's control signal is always in the
        # past, so every iteration start costs exactly one pull latency.
        if not counted and n > 1:
            stats.signal_cycles = latency * (n - 1)
        for i in range(n):
            if i and not counted:
                assert has_next[i - 1], "iteration without start signal"
                t += latency
            last = it_start[i]
            intervals: List[Tuple[int, int]] = []
            needs_sort = False
            for j in range(off[i], off[i + 1]):
                t += at_[j] - last
                last = at_[j]
                if barrier:
                    t += pre_[j] * barrier
                o = op_[j]
                if o == OP_WAIT_SYNC:
                    t += barrier + latency
                    stall += latency
                    slots[a2_[j]] = t
                elif o == OP_WAIT:
                    t += barrier
                    slots[a2_[j]] = t
                elif o == OP_SIGNAL:
                    t += barrier
                    slot = a2_[j]
                    if slot >= 0:
                        opened = slots[slot]
                        if intervals and opened < intervals[-1][0]:
                            needs_sort = True
                        intervals.append((opened, t))
                elif o == OP_XFER:
                    t += a1_[j] * transfer
                # OP_NEXT: the successor's control wait resolves to
                # ``t + latency`` regardless of the exact signal time.
            t += it_end[i] - last
            if barrier:
                t += tail[i] * barrier
            if intervals:
                seg += _merge_segments(intervals, needs_sort)
        stats.parallel_cycles = t + wind_down
        stats.wait_stall_cycles = stall
        stats.segment_cycles = seg
        return stats

    # General walk.
    mode_none = mode is PrefetchMode.NONE
    mode_ideal = mode is PrefetchMode.IDEAL
    helix = mode is PrefetchMode.HELIX
    do_helper = helix or mode is PrefetchMode.MATCHED
    helix_agenda: Tuple[int, ...] = ()
    ctrl_helix_agenda: Tuple[int, ...] = ()
    if helix:
        helix_agenda = tuple(loop.helper_order)
        ctrl_helix_agenda = (CTRL_DEP,) + helix_agenda

    core_free = [conf] * cores
    helper_free = [0] * cores
    prev_sig: Dict[int, int] = {}
    prev_next: Optional[int] = None
    max_end = 0

    for i in range(n):
        core = i % cores

        # Helper-thread prefetch agenda for this iteration.
        pf: Optional[Dict[int, int]] = None
        if do_helper and i > 0:
            pf = {}
            if counted:
                agenda = helix_agenda if helix else prog.agendas[i]
            else:
                agenda = (
                    ctrl_helix_agenda
                    if helix
                    else (CTRL_DEP,) + prog.agendas[i]
                )
            cursor = helper_free[core]
            for dep in agenda:
                if dep in pf:
                    continue
                ts = prev_next if dep == CTRL_DEP else prev_sig.get(dep)
                if ts is None:
                    continue
                cursor = (cursor if cursor > ts else ts) + latency
                pf[dep] = cursor
            helper_free[core] = cursor

        # Iteration start: counted loops derive their iteration numbers
        # locally (Step 3); other loops wait for the predecessor's
        # control signal (the IterationFlag store).
        t = core_free[core]
        if i > 0 and not counted:
            assert prev_next is not None, "iteration without start signal"
            ts = prev_next
            started = t
            if mode_none:
                t = (t if t > ts else ts) + latency
            elif mode_ideal:
                t = (t if t > ts else ts) + fast
            else:
                pull = (t if t > ts else ts) + latency
                done = pf.get(CTRL_DEP) if pf is not None else None
                if done is None:
                    t = pull
                else:
                    alt = t + fast
                    if done > alt:
                        alt = done
                    t = pull if pull < alt else alt
            sig += t - started

        cur_sig: Dict[int, int] = {}
        cur_next: Optional[int] = None
        intervals = []
        needs_sort = False
        last = it_start[i]

        for j in range(off[i], off[i + 1]):
            t += at_[j] - last
            last = at_[j]
            if barrier:
                t += pre_[j] * barrier
            o = op_[j]
            if o == OP_WAIT_SYNC:
                t += barrier
                ts = prev_sig[a1_[j]]  # pack-time guarantee: present
                if mode_none:
                    arrival = (t if t > ts else ts) + latency
                elif mode_ideal:
                    arrival = (t if t > ts else ts) + fast
                else:
                    pull = (t if t > ts else ts) + latency
                    done = pf.get(a1_[j]) if pf is not None else None
                    if done is None:
                        arrival = pull
                    else:
                        alt = t + fast
                        if done > alt:
                            alt = done
                        arrival = pull if pull < alt else alt
                if arrival > t:
                    stall += arrival - t
                    t = arrival
                slots[a2_[j]] = t
            elif o == OP_WAIT:
                t += barrier
                slots[a2_[j]] = t
            elif o == OP_SIGNAL:
                t += barrier
                cur_sig[a1_[j]] = t
                slot = a2_[j]
                if slot >= 0:
                    opened = slots[slot]
                    if intervals and opened < intervals[-1][0]:
                        needs_sort = True
                    intervals.append((opened, t))
            elif o == OP_XFER:
                t += a1_[j] * transfer
            else:  # OP_NEXT
                cur_next = t

        t += it_end[i] - last
        if barrier:
            t += tail[i] * barrier
        core_free[core] = t
        if t > max_end:
            max_end = t
        if intervals:
            seg += _merge_segments(intervals, needs_sort)
        prev_sig = cur_sig
        prev_next = cur_next

    stats.parallel_cycles = max_end + wind_down
    stats.wait_stall_cycles = stall
    stats.segment_cycles = seg
    stats.signal_cycles = sig
    return stats


def schedule_invocation_reference(
    trace: InvocationTrace,
    loop: ParallelizedLoop,
    machine: MachineConfig,
) -> ScheduleResult:
    """Reconstruct the parallel schedule of one invocation.

    The original per-event interpreter over the raw trace, kept as the
    differential oracle for :func:`schedule_compact`.
    """
    cores = machine.cores
    latency = machine.signal_latency
    fast = machine.prefetched_signal_latency
    mode = machine.effective_prefetch_mode
    transfer = machine.word_transfer_cycles
    conf = machine.config_cycles_per_thread * max(cores - 1, 1)
    # Section 2.3: without total store ordering every synchronizing load
    # and store needs a memory barrier.
    barrier = 0 if machine.total_store_ordering else machine.barrier_cycles

    core_free = [float(conf)] * cores
    helper_free = [0.0] * cores
    prev_sig: Dict[int, float] = {}
    prev_produced: Set[int] = set()
    prev_next_time: Optional[float] = None
    iteration_ends: List[float] = []
    barrier_events = 0
    span_total = 0

    stats = ScheduleResult(
        parallel_cycles=0,
        sequential_cycles=trace.end_cycles - trace.start_cycles,
    )

    def pull_complete(t: float, ts: float) -> float:
        return max(t, ts) + latency

    def wait_complete(t: float, ts: float, prefetch_done: Optional[float]) -> float:
        if mode is PrefetchMode.NONE:
            return pull_complete(t, ts)
        if mode is PrefetchMode.IDEAL:
            return max(t, ts) + fast
        if prefetch_done is None:
            return pull_complete(t, ts)
        return min(pull_complete(t, ts), max(t + fast, prefetch_done))

    for i, iteration in enumerate(trace.iterations):
        core = i % cores

        # Helper-thread prefetch agenda for this iteration.
        prefetch_done: Dict[int, float] = {}
        if mode in (PrefetchMode.HELIX, PrefetchMode.MATCHED) and i > 0:
            ctrl_agenda = [] if loop.counted else [CTRL_DEP]
            if mode is PrefetchMode.HELIX:
                agenda = ctrl_agenda + list(loop.helper_order)
            else:
                agenda = ctrl_agenda + [
                    dep for kind, dep, _at in iteration.events if kind == "w"
                ]
            cursor = helper_free[core]
            for dep in agenda:
                if dep in prefetch_done:
                    continue
                ts = prev_next_time if dep == CTRL_DEP else prev_sig.get(dep)
                if ts is None:
                    continue
                done = max(cursor, ts) + latency
                prefetch_done[dep] = done
                cursor = done
            helper_free[core] = cursor

        # Iteration start: counted loops derive their iteration numbers
        # locally (Step 3); other loops wait for the predecessor's control
        # signal (the IterationFlag store).
        t = core_free[core]
        if i > 0 and not loop.counted:
            assert prev_next_time is not None, "iteration without start signal"
            started = t
            t = wait_complete(t, prev_next_time, prefetch_done.get(CTRL_DEP))
            stats.signal_cycles += int(t - started)

        cur_sig: Dict[int, float] = {}
        cur_next: Optional[float] = None
        cur_produced: Set[int] = set()
        waited: Set[int] = set()
        transferred: Set[int] = set()
        segment_opens: Dict[int, float] = {}
        segment_intervals: List[Tuple[float, float]] = []
        # Events are appended in cycle order, so wait->signal intervals
        # usually open in increasing order too; sort only when a nested
        # pairing actually violated it.
        intervals_sorted = True
        last = iteration.start_cycles

        for kind, dep, at in iteration.events:
            t += at - last
            last = at
            if kind == "w":
                stats.waits += 1
                barrier_events += 1
                t += barrier
                if dep in waited or dep in cur_sig:
                    continue
                waited.add(dep)
                if i == 0:
                    segment_opens[dep] = t
                    continue
                ts = prev_sig.get(dep)
                if ts is None:
                    segment_opens[dep] = t
                    continue
                arrival = wait_complete(t, ts, prefetch_done.get(dep))
                if arrival > t:
                    stats.wait_stall_cycles += int(arrival - t)
                    t = arrival
                segment_opens[dep] = t
            elif kind == "s":
                barrier_events += 1
                t += barrier
                if dep not in cur_sig:
                    cur_sig[dep] = t
                    stats.signals += 1
                    opened = segment_opens.pop(dep, None)
                    if opened is not None:
                        if (
                            segment_intervals
                            and opened < segment_intervals[-1][0]
                        ):
                            intervals_sorted = False
                        segment_intervals.append((opened, t))
            elif kind == "n":
                if cur_next is None:
                    cur_next = t
                    if not loop.counted:
                        stats.signals += 1
            elif kind == "x":
                if dep in prev_produced and dep not in transferred:
                    transferred.add(dep)
                    words = iteration.words.get(dep, 1)
                    t += words * transfer
                    stats.transfer_words += words
            else:  # 'p' producer marks only feed the next iteration's set.
                cur_produced.add(dep)

        t += iteration.end_cycles - last
        span_total += iteration.end_cycles - iteration.start_cycles
        core_free[core] = t
        iteration_ends.append(t)

        # Merge segment intervals for the busy-time statistic.
        if segment_intervals:
            if not intervals_sorted:
                segment_intervals.sort()
            merged_start, merged_end = segment_intervals[0]
            for start, end in segment_intervals[1:]:
                if start <= merged_end:
                    merged_end = max(merged_end, end)
                else:
                    stats.segment_cycles += int(merged_end - merged_start)
                    merged_start, merged_end = start, end
            stats.segment_cycles += int(merged_end - merged_start)

        prev_sig = cur_sig
        prev_next_time = cur_next
        prev_produced = cur_produced

    stats.compute_cycles = span_total + barrier * barrier_events
    stats.transfer_cycles = stats.transfer_words * transfer

    if not iteration_ends:
        # Zero-iteration invocation: the loop body never ran, so no
        # threads were configured and nothing needs collecting -- the
        # invocation costs exactly its sequential span.
        stats.parallel_cycles = stats.sequential_cycles
        return stats

    # Main thread collects the exit variable and stops parallel threads.
    finish = max(iteration_ends)
    finish += latency + max(cores - 1, 0)
    stats.parallel_cycles = int(finish)
    return stats
