"""Invocation schedulers: the compiled engine and its reference twin.

:func:`schedule_compact` is the production scheduler.  It consumes the
:class:`~repro.runtime.trace.TraceProgram` compiled once per trace and
reconstructs the parallel schedule of one invocation under a
:class:`~repro.runtime.machine.MachineConfig`.  Because duplicate
filtering, producer sets, word counts and wait/signal pairing were
resolved at pack time, the per-machine walk touches only integers plus
the previous iteration's signal timetable, and two common shapes skip
the walk entirely:

* **counted DOALL** (counted loop, no waits/signals/transfers at all):
  the finish time is ``conf + max per-core span sum``, computed by
  slicing the precomputed span column;
* **single core, no prefetching**: every stalling wait completes
  exactly ``signal_latency`` after the thread reaches it (the
  predecessor's signal time can never exceed the successor's clock on
  one core), so the signal timetable is never materialized.

:func:`schedule_compact_many` is the batched variant behind machine-grid
sweeps: it walks the opcode stream **once** while advancing every swept
machine's per-core integer clocks in lockstep (flat ``array('q')`` clock
and signal-timetable columns, per-machine latency/barrier constants
hoisted into parallel columns, prefetch agendas resolved to signal-op
indices once per trace).  Machines a fast path covers -- the counted
DOALL closed form, deduplicated by core count, or the single-core
no-prefetch walk -- are peeled out before the lockstep walk.  Its
columns are field-exact with per-machine :func:`schedule_compact`.

:func:`schedule_invocation_reference` is the original per-event
interpreter over the raw :class:`~repro.runtime.trace.InvocationTrace`.
It is kept as the differential oracle -- ``tests/test_sched_differential``
and ``repro bench-sched`` enforce field-exact :class:`ScheduleResult`
equality between the two engines -- and is still written for clarity,
not speed (its only performance fixes are hoisting the producer-set
rebuild and the usually-redundant interval sort out of the hot loop).

Both engines implement the same model (see
:mod:`repro.runtime.parallel` for the methodology): per-core clocks with
round-robin iteration assignment, pull-based signal completion
``max(t, ts) + L``, helper-thread prefetch agendas, data forwarding
charged per word actually produced by the predecessor, and memory
barriers on non-TSO machines.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.loopinfo import ParallelizedLoop
from repro.runtime.machine import MachineConfig, PrefetchMode
from repro.runtime.trace import (
    CTRL_DEP,
    OP_SIGNAL,
    OP_WAIT,
    OP_WAIT_SYNC,
    OP_XFER,
    CompactInvocationTrace,
    InvocationTrace,
    TraceProgram,
)


@dataclass
class ScheduleResult:
    """Timing of one invocation under a specific machine."""

    parallel_cycles: int
    sequential_cycles: int
    signals: int = 0
    waits: int = 0
    wait_stall_cycles: int = 0
    transfer_words: int = 0
    segment_cycles: int = 0
    #: Busy compute cycles across all cores: every iteration's
    #: sequential span plus the memory-barrier cost of each recorded
    #: wait/signal (zero on TSO machines).
    compute_cycles: int = 0
    #: Cycles spent receiving iteration-start control signals (the
    #: successor's wait on the predecessor's IterationFlag store);
    #: always zero for counted loops, which derive iteration numbers
    #: locally.
    signal_cycles: int = 0
    #: Cycles spent forwarding data words between cores.
    transfer_cycles: int = 0

    def overhead_breakdown(self) -> Dict[str, int]:
        """Where the busy cycles of this invocation went.

        The four buckets are disjoint: together with the per-thread
        configuration cost, the wind-down collection and per-core idle
        time they account exactly for ``parallel_cycles * cores`` (the
        simulated-time timeline exporter places every bucket on its
        core; ``tests/test_timeline.py`` asserts the accounting).
        """
        return {
            "compute": self.compute_cycles,
            "wait_stall": self.wait_stall_cycles,
            "signal": self.signal_cycles,
            "transfer": self.transfer_cycles,
        }


def _merge_segments(
    intervals: List[Tuple[int, int]], needs_sort: bool
) -> int:
    """Total busy time of the merged wait->signal intervals."""
    if needs_sort:
        intervals.sort()
    merged_start, merged_end = intervals[0]
    total = 0
    for start, end in intervals[1:]:
        if start <= merged_end:
            if end > merged_end:
                merged_end = end
        else:
            total += merged_end - merged_start
            merged_start, merged_end = start, end
    return total + (merged_end - merged_start)


def schedule_compact(
    trace: CompactInvocationTrace,
    loop: ParallelizedLoop,
    machine: MachineConfig,
) -> ScheduleResult:
    """Reconstruct the parallel schedule of one invocation (compiled).

    Field-exact with :func:`schedule_invocation_reference` on the
    equivalent :class:`InvocationTrace`.
    """
    seq = trace.end_cycles - trace.start_cycles
    prog = trace.program
    n = len(prog.spans)
    if n == 0:
        # Zero-iteration invocation: the loop body never ran, so no
        # threads were configured and nothing needs collecting -- the
        # invocation costs exactly its sequential span.
        return ScheduleResult(parallel_cycles=seq, sequential_cycles=seq)

    cores = machine.cores
    latency = machine.signal_latency
    counted = loop.counted
    conf = machine.config_cycles_per_thread * max(cores - 1, 1)
    # The main thread collects the exit variable and stops the parallel
    # threads once the last iteration retires.
    wind_down = latency + cores - 1

    signals = prog.signals if counted else prog.signals + prog.next_iters
    stats = ScheduleResult(
        parallel_cycles=0,
        sequential_cycles=seq,
        signals=signals,
        waits=prog.waits,
        transfer_words=prog.transfer_words,
    )

    # Fast path: counted DOALL.  No waits, signals or transfers exist
    # anywhere in the trace (duplicates would imply a kept first
    # occurrence, so there are no elided barrier events either) and a
    # counted loop ignores next_iter for timing, so every core just runs
    # its round-robin share of the spans back to back.
    if counted and prog.active_ops == 0:
        spans = prog.spans
        busy = max(sum(spans[c::cores]) for c in range(min(cores, n)))
        stats.parallel_cycles = conf + busy + wind_down
        stats.compute_cycles = prog.span_total  # barrier_events == 0 here
        return stats

    fast = machine.prefetched_signal_latency
    mode = machine.effective_prefetch_mode
    transfer = machine.word_transfer_cycles
    # Section 2.3: without total store ordering every synchronizing load
    # and store needs a memory barrier.
    barrier = 0 if machine.total_store_ordering else machine.barrier_cycles

    op_, a1_, a2_, at_ = prog.op, prog.a1, prog.a2, prog.at
    pre_, off, tail = prog.pre, prog.off, prog.tail
    it_start, it_end = trace.it_start, trace.it_end
    has_next = prog.has_next
    slots = [0] * prog.slot_count
    stall = 0
    seg = 0
    sig = 0
    stats.compute_cycles = prog.span_total + barrier * prog.barrier_events
    stats.transfer_cycles = prog.transfer_words * transfer

    # Fast path: one core, no prefetching.  Iterations run back to back
    # on a single clock, so any predecessor signal time is <= the
    # current clock: every stalling wait (and the control wait) completes
    # exactly ``latency`` later and the signal timetable is never needed.
    if cores == 1 and mode is PrefetchMode.NONE:
        t = conf
        # On one clock the predecessor's control signal is always in the
        # past, so every iteration start costs exactly one pull latency.
        if not counted and n > 1:
            stats.signal_cycles = latency * (n - 1)
        for i in range(n):
            if i and not counted:
                assert has_next[i - 1], "iteration without start signal"
                t += latency
            last = it_start[i]
            intervals: List[Tuple[int, int]] = []
            needs_sort = False
            for j in range(off[i], off[i + 1]):
                t += at_[j] - last
                last = at_[j]
                if barrier:
                    t += pre_[j] * barrier
                o = op_[j]
                if o == OP_WAIT_SYNC:
                    t += barrier + latency
                    stall += latency
                    slots[a2_[j]] = t
                elif o == OP_WAIT:
                    t += barrier
                    slots[a2_[j]] = t
                elif o == OP_SIGNAL:
                    t += barrier
                    slot = a2_[j]
                    if slot >= 0:
                        opened = slots[slot]
                        if intervals and opened < intervals[-1][0]:
                            needs_sort = True
                        intervals.append((opened, t))
                elif o == OP_XFER:
                    t += a1_[j] * transfer
                # OP_NEXT: the successor's control wait resolves to
                # ``t + latency`` regardless of the exact signal time.
            t += it_end[i] - last
            if barrier:
                t += tail[i] * barrier
            if intervals:
                seg += _merge_segments(intervals, needs_sort)
        stats.parallel_cycles = t + wind_down
        stats.wait_stall_cycles = stall
        stats.segment_cycles = seg
        return stats

    # General walk.
    mode_none = mode is PrefetchMode.NONE
    mode_ideal = mode is PrefetchMode.IDEAL
    helix = mode is PrefetchMode.HELIX
    do_helper = helix or mode is PrefetchMode.MATCHED
    helix_agenda: Tuple[int, ...] = ()
    ctrl_helix_agenda: Tuple[int, ...] = ()
    if helix:
        helix_agenda = tuple(loop.helper_order)
        ctrl_helix_agenda = (CTRL_DEP,) + helix_agenda

    core_free = [conf] * cores
    helper_free = [0] * cores
    prev_sig: Dict[int, int] = {}
    prev_next: Optional[int] = None
    max_end = 0

    for i in range(n):
        core = i % cores

        # Helper-thread prefetch agenda for this iteration.
        pf: Optional[Dict[int, int]] = None
        if do_helper and i > 0:
            pf = {}
            if counted:
                agenda = helix_agenda if helix else prog.agendas[i]
            else:
                agenda = (
                    ctrl_helix_agenda
                    if helix
                    else (CTRL_DEP,) + prog.agendas[i]
                )
            cursor = helper_free[core]
            for dep in agenda:
                if dep in pf:
                    continue
                ts = prev_next if dep == CTRL_DEP else prev_sig.get(dep)
                if ts is None:
                    continue
                cursor = (cursor if cursor > ts else ts) + latency
                pf[dep] = cursor
            helper_free[core] = cursor

        # Iteration start: counted loops derive their iteration numbers
        # locally (Step 3); other loops wait for the predecessor's
        # control signal (the IterationFlag store).
        t = core_free[core]
        if i > 0 and not counted:
            assert prev_next is not None, "iteration without start signal"
            ts = prev_next
            started = t
            if mode_none:
                t = (t if t > ts else ts) + latency
            elif mode_ideal:
                t = (t if t > ts else ts) + fast
            else:
                pull = (t if t > ts else ts) + latency
                done = pf.get(CTRL_DEP) if pf is not None else None
                if done is None:
                    t = pull
                else:
                    alt = t + fast
                    if done > alt:
                        alt = done
                    t = pull if pull < alt else alt
            sig += t - started

        cur_sig: Dict[int, int] = {}
        cur_next: Optional[int] = None
        intervals = []
        needs_sort = False
        last = it_start[i]

        for j in range(off[i], off[i + 1]):
            t += at_[j] - last
            last = at_[j]
            if barrier:
                t += pre_[j] * barrier
            o = op_[j]
            if o == OP_WAIT_SYNC:
                t += barrier
                ts = prev_sig[a1_[j]]  # pack-time guarantee: present
                if mode_none:
                    arrival = (t if t > ts else ts) + latency
                elif mode_ideal:
                    arrival = (t if t > ts else ts) + fast
                else:
                    pull = (t if t > ts else ts) + latency
                    done = pf.get(a1_[j]) if pf is not None else None
                    if done is None:
                        arrival = pull
                    else:
                        alt = t + fast
                        if done > alt:
                            alt = done
                        arrival = pull if pull < alt else alt
                if arrival > t:
                    stall += arrival - t
                    t = arrival
                slots[a2_[j]] = t
            elif o == OP_WAIT:
                t += barrier
                slots[a2_[j]] = t
            elif o == OP_SIGNAL:
                t += barrier
                cur_sig[a1_[j]] = t
                slot = a2_[j]
                if slot >= 0:
                    opened = slots[slot]
                    if intervals and opened < intervals[-1][0]:
                        needs_sort = True
                    intervals.append((opened, t))
            elif o == OP_XFER:
                t += a1_[j] * transfer
            else:  # OP_NEXT
                cur_next = t

        t += it_end[i] - last
        if barrier:
            t += tail[i] * barrier
        core_free[core] = t
        if t > max_end:
            max_end = t
        if intervals:
            seg += _merge_segments(intervals, needs_sort)
        prev_sig = cur_sig
        prev_next = cur_next

    stats.parallel_cycles = max_end + wind_down
    stats.wait_stall_cycles = stall
    stats.segment_cycles = seg
    stats.signal_cycles = sig
    return stats


#: Agenda-entry sentinel: prefetch the predecessor's control signal
#: (the IterationFlag store) rather than a data dependence.
_CTRL_SRC = -2


def _resolve_agendas(
    prog: TraceProgram, helix_order: Tuple[int, ...], counted: bool
) -> Tuple[List[int], List[int], List[Tuple[int, ...]], List[Tuple[int, ...]]]:
    """Resolve both helper-thread agenda flavours to signal-op indices.

    Machine-independent: done once per trace and shared by every helper
    machine in a :func:`schedule_compact_many` call.  For each iteration
    the deduplicated agenda (``MATCHED``: the iteration's wait deps;
    ``HELIX``: the loop's static helper order; both prefixed with the
    control signal on non-counted loops) is reduced to the entries whose
    dependence the previous iteration actually signalled, each entry
    being the flat op index of that signal (or :data:`_CTRL_SRC`).
    Consumers are resolved to positions in the entry list: ``mt_pos[j]``
    / ``hx_pos[j]`` give op ``j``'s prefetch slot, -1 when the helper
    never prefetched its dependence.
    """
    op_, a1_, off = prog.op, prog.a1, prog.off
    n = len(prog.spans)
    mt_pos = [-1] * len(op_)
    hx_pos = [-1] * len(op_)
    mt_entries: List[Tuple[int, ...]] = [()] * n
    hx_entries: List[Tuple[int, ...]] = [()] * n
    prev_sig_op: Dict[int, int] = {}
    for i in range(n):
        lo, hi = off[i], off[i + 1]
        if i > 0:
            ment: List[int] = []
            mpos: Dict[int, int] = {}
            hent: List[int] = []
            hpos: Dict[int, int] = {}
            if not counted:
                # The control signal is always available (every
                # non-last iteration of a non-counted loop executed a
                # next_iter) and always leads the agenda.
                mpos[CTRL_DEP] = 0
                ment.append(_CTRL_SRC)
                hpos[CTRL_DEP] = 0
                hent.append(_CTRL_SRC)
            for dep in prog.agendas[i]:
                if dep not in mpos:
                    source = prev_sig_op.get(dep)
                    if source is not None:
                        mpos[dep] = len(ment)
                        ment.append(source)
            for dep in helix_order:
                if dep not in hpos:
                    source = prev_sig_op.get(dep)
                    if source is not None:
                        hpos[dep] = len(hent)
                        hent.append(source)
            mt_entries[i] = tuple(ment)
            hx_entries[i] = tuple(hent)
            for j in range(lo, hi):
                if op_[j] == OP_WAIT_SYNC:
                    dep = a1_[j]
                    mt_pos[j] = mpos.get(dep, -1)
                    hx_pos[j] = hpos.get(dep, -1)
        cur: Dict[int, int] = {}
        for j in range(lo, hi):
            if op_[j] == OP_SIGNAL:
                cur[a1_[j]] = j
        prev_sig_op = cur
    return mt_pos, hx_pos, mt_entries, hx_entries


def schedule_compact_many(
    trace: CompactInvocationTrace,
    loop: ParallelizedLoop,
    machines: Sequence[MachineConfig],
) -> List[ScheduleResult]:
    """Schedule one invocation under every machine in a single walk.

    Returns one :class:`ScheduleResult` per machine, field-exact with
    ``[schedule_compact(trace, loop, m) for m in machines]`` (and hence
    with :func:`schedule_invocation_reference`).  The opcode stream is
    traversed once; per-machine state lives in parallel columns:

    * flat ``array('q')`` per-core clock and helper-clock columns, one
      contiguous block per machine;
    * a per-machine per-op signal timetable written at ``OP_SIGNAL`` and
      read back through the program's ``src`` column at
      ``OP_WAIT_SYNC`` -- no per-iteration dependence dicts;
    * prefetch agendas resolved once per trace to signal-op indices
      (:func:`_resolve_agendas`) and replayed per machine into a small
      positional buffer.

    Machines a closed form covers never enter the walk: zero-iteration
    invocations and counted DOALLs are solved directly (the DOALL busy
    term is deduplicated by core count), and single-core no-prefetch
    machines take :func:`schedule_compact`'s single-clock fast path.
    """
    count = len(machines)
    if count == 0:
        return []
    seq = trace.end_cycles - trace.start_cycles
    prog = trace.program
    n = len(prog.spans)
    if n == 0:
        # Zero-iteration invocation: costs its sequential span under
        # every machine (fresh objects -- results are mutable).
        return [
            ScheduleResult(parallel_cycles=seq, sequential_cycles=seq)
            for _ in range(count)
        ]
    counted = loop.counted
    results: List[Optional[ScheduleResult]] = [None] * count

    if counted and prog.active_ops == 0:
        # Counted DOALL: closed form for every machine; the busy term
        # (max per-core span sum) depends only on the core count, so
        # sweeps that vary latencies or prefetch modes at a fixed core
        # count price the spans once.
        spans = prog.spans
        span_total = prog.span_total
        busy_by_cores: Dict[int, int] = {}
        for mi, machine in enumerate(machines):
            cores = machine.cores
            busy = busy_by_cores.get(cores)
            if busy is None:
                busy = max(
                    sum(spans[c::cores]) for c in range(min(cores, n))
                )
                busy_by_cores[cores] = busy
            conf = machine.config_cycles_per_thread * max(cores - 1, 1)
            stats = ScheduleResult(
                parallel_cycles=conf
                + busy
                + machine.signal_latency
                + cores
                - 1,
                sequential_cycles=seq,
                signals=prog.signals,
                waits=prog.waits,
                transfer_words=prog.transfer_words,
            )
            stats.compute_cycles = span_total
            results[mi] = stats
        return results

    # Peel machines the single-clock fast path solves without a signal
    # timetable; everything else joins the lockstep walk.
    lock: List[int] = []
    for mi, machine in enumerate(machines):
        if (
            machine.cores == 1
            and machine.effective_prefetch_mode is PrefetchMode.NONE
        ):
            results[mi] = schedule_compact(trace, loop, machine)
        else:
            lock.append(mi)
    if len(lock) == 1:
        mi = lock[0]
        results[mi] = schedule_compact(trace, loop, machines[mi])
        return results
    if not lock:
        return results

    op_, a1_, a2_, at_ = prog.op, prog.a1, prog.a2, prog.at
    src_, pre_, off, tail = prog.src, prog.pre, prog.off, prog.tail
    it_start, it_end = trace.it_start, trace.it_end
    has_next = prog.has_next
    slot_count = prog.slot_count
    nops = len(op_)

    m = len(lock)
    # Hoisted per-machine latency/cost columns (index k over ``lock``).
    cores_ = [0] * m
    lat = [0] * m
    fastlat = [0] * m
    xfr = [0] * m
    bar = [0] * m
    base = [0] * m
    # Prefetch-mode classes: the arrival math differs per class, so the
    # per-event inner loops run straight-line over one class at a time.
    none_k: List[int] = []
    ideal_k: List[int] = []
    helper_k: List[int] = []
    use_helix = [False] * m
    clk = array("q")  # per-core clocks, machine blocks at base[k]
    hclk = array("q")  # helper-thread clocks, same layout
    zeros = bytes(8 * nops)
    evt: List[array] = []  # per-op signal timetable per machine
    slots: List[array] = []  # open segment slots per machine
    pfbuf: List[List[int]] = []  # positional prefetch times per machine
    prev_next: List[int] = [0] * m
    cur_next: List[int] = [0] * m
    tarr = [0] * m  # current iteration's thread clock per machine
    stall = [0] * m
    seg = [0] * m
    sigc = [0] * m
    maxend = [0] * m
    curcore = [0] * m
    ivl: List[List[Tuple[int, int]]] = [[] for _ in range(m)]
    srt = [False] * m

    need_helper = False
    for k, mi in enumerate(lock):
        machine = machines[mi]
        c = machine.cores
        cores_[k] = c
        lat[k] = machine.signal_latency
        fastlat[k] = machine.prefetched_signal_latency
        xfr[k] = machine.word_transfer_cycles
        bar[k] = (
            0 if machine.total_store_ordering else machine.barrier_cycles
        )
        base[k] = len(clk)
        conf = machine.config_cycles_per_thread * max(c - 1, 1)
        clk.extend([conf] * c)
        hclk.extend([0] * c)
        evt.append(array("q", zeros))
        slots.append(array("q", [0] * slot_count))
        mode = machine.effective_prefetch_mode
        if mode is PrefetchMode.NONE:
            none_k.append(k)
        elif mode is PrefetchMode.IDEAL:
            ideal_k.append(k)
        else:
            helper_k.append(k)
            use_helix[k] = mode is PrefetchMode.HELIX
            need_helper = True

    mt_pos: List[int] = []
    hx_pos: List[int] = []
    mt_entries: List[Tuple[int, ...]] = []
    hx_entries: List[Tuple[int, ...]] = []
    if need_helper:
        mt_pos, hx_pos, mt_entries, hx_entries = _resolve_agendas(
            prog, tuple(loop.helper_order), counted
        )
        max_entries = 0
        for entries in mt_entries:
            if len(entries) > max_entries:
                max_entries = len(entries)
        for entries in hx_entries:
            if len(entries) > max_entries:
                max_entries = len(entries)
        pfbuf = [[0] * max_entries for _ in range(m)]

    rng = range
    for i in rng(n):
        need_ctrl = i > 0 and not counted
        if need_ctrl:
            assert has_next[i - 1], "iteration without start signal"

        # Helper-thread prefetch agendas for this iteration.
        if helper_k and i > 0:
            for k in helper_k:
                entries = hx_entries[i] if use_helix[k] else mt_entries[i]
                if not entries:
                    continue
                hb = base[k] + i % cores_[k]
                cursor = hclk[hb]
                buf = pfbuf[k]
                ek = evt[k]
                latk = lat[k]
                pn = prev_next[k]
                pos = 0
                for source in entries:
                    ts = pn if source == -2 else ek[source]
                    cursor = (cursor if cursor > ts else ts) + latk
                    buf[pos] = cursor
                    pos += 1
                hclk[hb] = cursor

        # Iteration starts: counted loops derive iteration numbers
        # locally; others wait on the predecessor's control signal.
        for k in rng(m):
            core = i % cores_[k]
            curcore[k] = core
            t = clk[base[k] + core]
            tarr[k] = t
        if need_ctrl:
            for k in none_k:
                t = tarr[k]
                ts = prev_next[k]
                done = (t if t > ts else ts) + lat[k]
                sigc[k] += done - t
                tarr[k] = done
            for k in ideal_k:
                t = tarr[k]
                ts = prev_next[k]
                done = (t if t > ts else ts) + fastlat[k]
                sigc[k] += done - t
                tarr[k] = done
            for k in helper_k:
                t = tarr[k]
                ts = prev_next[k]
                pull = (t if t > ts else ts) + lat[k]
                # The control entry always leads the resolved agenda.
                alt = t + fastlat[k]
                done = pfbuf[k][0]
                if done > alt:
                    alt = done
                done = pull if pull < alt else alt
                sigc[k] += done - t
                tarr[k] = done

        last = it_start[i]
        for j in rng(off[i], off[i + 1]):
            atj = at_[j]
            d = atj - last
            last = atj
            o = op_[j]
            pj = pre_[j]
            if o == OP_WAIT_SYNC:
                bb = pj + 1
                sj = src_[j]
                a2j = a2_[j]
                for k in none_k:
                    t = tarr[k] + d + bb * bar[k]
                    ts = evt[k][sj]
                    arrival = (t if t > ts else ts) + lat[k]
                    if arrival > t:
                        stall[k] += arrival - t
                        t = arrival
                    slots[k][a2j] = t
                    tarr[k] = t
                for k in ideal_k:
                    t = tarr[k] + d + bb * bar[k]
                    ts = evt[k][sj]
                    arrival = (t if t > ts else ts) + fastlat[k]
                    if arrival > t:
                        stall[k] += arrival - t
                        t = arrival
                    slots[k][a2j] = t
                    tarr[k] = t
                if helper_k:
                    mp = mt_pos[j]
                    hp = hx_pos[j]
                    for k in helper_k:
                        t = tarr[k] + d + bb * bar[k]
                        ts = evt[k][sj]
                        arrival = (t if t > ts else ts) + lat[k]
                        pos = hp if use_helix[k] else mp
                        if pos >= 0:
                            alt = t + fastlat[k]
                            done = pfbuf[k][pos]
                            if done > alt:
                                alt = done
                            if alt < arrival:
                                arrival = alt
                        if arrival > t:
                            stall[k] += arrival - t
                            t = arrival
                        slots[k][a2j] = t
                        tarr[k] = t
            elif o == OP_WAIT:
                bb = pj + 1
                a2j = a2_[j]
                for k in rng(m):
                    t = tarr[k] + d + bb * bar[k]
                    slots[k][a2j] = t
                    tarr[k] = t
            elif o == OP_SIGNAL:
                bb = pj + 1
                a2j = a2_[j]
                if a2j >= 0:
                    for k in rng(m):
                        t = tarr[k] + d + bb * bar[k]
                        evt[k][j] = t
                        opened = slots[k][a2j]
                        iv = ivl[k]
                        if iv and opened < iv[-1][0]:
                            srt[k] = True
                        iv.append((opened, t))
                        tarr[k] = t
                else:
                    for k in rng(m):
                        t = tarr[k] + d + bb * bar[k]
                        evt[k][j] = t
                        tarr[k] = t
            elif o == OP_XFER:
                w = a1_[j]
                for k in rng(m):
                    tarr[k] += d + pj * bar[k] + w * xfr[k]
            else:  # OP_NEXT
                for k in rng(m):
                    t = tarr[k] + d + pj * bar[k]
                    cur_next[k] = t
                    tarr[k] = t

        for k in rng(m):
            t = tarr[k] + (it_end[i] - last) + tail[i] * bar[k]
            clk[base[k] + curcore[k]] = t
            if t > maxend[k]:
                maxend[k] = t
            iv = ivl[k]
            if iv:
                seg[k] += _merge_segments(iv, srt[k])
                iv.clear()
                srt[k] = False
            prev_next[k] = cur_next[k]

    signals = prog.signals if counted else prog.signals + prog.next_iters
    span_total = prog.span_total
    barrier_events = prog.barrier_events
    transfer_words = prog.transfer_words
    for k, mi in enumerate(lock):
        stats = ScheduleResult(
            parallel_cycles=maxend[k] + lat[k] + cores_[k] - 1,
            sequential_cycles=seq,
            signals=signals,
            waits=prog.waits,
            transfer_words=transfer_words,
        )
        stats.wait_stall_cycles = stall[k]
        stats.segment_cycles = seg[k]
        stats.signal_cycles = sigc[k]
        stats.compute_cycles = span_total + bar[k] * barrier_events
        stats.transfer_cycles = transfer_words * xfr[k]
        results[mi] = stats
    return results


#: Minimum cohort size worth the numpy dispatch overhead; smaller
#: groups take the per-trace lockstep engine instead.
_MIN_COHORT = 4


def trace_signature(trace: CompactInvocationTrace) -> Tuple:
    """Shape key of a trace: everything compilation depends on.

    :meth:`CompactInvocationTrace._compile` inspects only the event
    *kinds*, *dependences*, per-iteration slicing and ``xfer`` word
    counts -- never timestamps -- so two traces with equal signatures
    compile to structurally identical :class:`TraceProgram`\\ s whose
    ``at`` columns differ only in values.  :func:`schedule_many` groups
    traces by this key and schedules each cohort through one vectorized
    walk over a single representative program.
    """
    return (
        trace.ev_kind.tobytes(),
        trace.ev_dep.tobytes(),
        trace.ev_off.tobytes(),
        tuple(tuple(sorted(per.items())) for per in trace.words),
    )


def _schedule_cohort(
    traces: List[CompactInvocationTrace],
    loop: ParallelizedLoop,
    machines: Sequence[MachineConfig],
) -> List[List[ScheduleResult]]:
    """Schedule a cohort of shape-identical traces under every machine.

    The cohort dimension is vectorized with numpy: per-core clocks,
    signal timetables and segment slots become width-``C`` integer
    vectors (``C`` = cohort size) and every opcode advances all traces
    at once, so the per-op interpretive overhead is paid once per
    machine instead of once per trace per machine.  Only the
    representative trace is compiled; the others' ``at`` values are
    gathered from their raw event columns through the program's ``raw``
    index (see :func:`trace_signature` for why that is sound).

    Returns ``out[c][mi]``, field-exact with
    ``schedule_compact(traces[c], loop, machines[mi])``.
    """
    import numpy as np

    prog = traces[0].program
    cohort = len(traces)
    count = len(machines)
    n = len(prog.spans)
    counted = loop.counted
    seqs = [tr.end_cycles - tr.start_cycles for tr in traces]
    if n == 0:
        return [
            [
                ScheduleResult(parallel_cycles=s, sequential_cycles=s)
                for _ in range(count)
            ]
            for s in seqs
        ]

    it_s = np.empty((cohort, n), dtype=np.int64)
    it_e = np.empty((cohort, n), dtype=np.int64)
    for c, tr in enumerate(traces):
        it_s[c] = np.frombuffer(tr.it_start, dtype=np.int64)
        it_e[c] = np.frombuffer(tr.it_end, dtype=np.int64)
    sp = it_e - it_s  # per-iteration spans, (cohort, n)
    span_total = sp.sum(axis=1)

    waits = prog.waits
    transfer_words = prog.transfer_words
    barrier_events = prog.barrier_events
    out: List[List[Optional[ScheduleResult]]] = [
        [None] * count for _ in range(cohort)
    ]

    if counted and prog.active_ops == 0:
        # Counted DOALL: the closed form vectorizes directly; the busy
        # vector depends only on the core count, so it is shared across
        # latency/prefetch sweeps exactly like the scalar engine's.
        busy_by_cores: Dict[int, "np.ndarray"] = {}
        totals = span_total.tolist()
        for mi, machine in enumerate(machines):
            cores = machine.cores
            busy = busy_by_cores.get(cores)
            if busy is None:
                busy = sp[:, 0::cores].sum(axis=1)
                for c0 in range(1, min(cores, n)):
                    np.maximum(busy, sp[:, c0::cores].sum(axis=1), out=busy)
                busy_by_cores[cores] = busy
            conf = machine.config_cycles_per_thread * max(cores - 1, 1)
            par = (busy + (conf + machine.signal_latency + cores - 1)).tolist()
            for c in range(cohort):
                stats = ScheduleResult(
                    parallel_cycles=par[c],
                    sequential_cycles=seqs[c],
                    signals=prog.signals,
                    waits=waits,
                    transfer_words=transfer_words,
                )
                stats.compute_cycles = totals[c]
                out[c][mi] = stats
        return out  # type: ignore[return-value]

    op_, a1_, a2_, src_ = prog.op, prog.a1, prog.a2, prog.src
    pre_, off, tail_ = prog.pre, prog.off, prog.tail
    has_next = prog.has_next
    nops = len(op_)

    # Per-op time deltas, transposed so ``dt[j]`` is a contiguous
    # cohort-wide vector: dt[j] = at[j] - at[j-1] within an iteration,
    # at[j] - it_start[i] for its first op; et[i] closes the iteration.
    et = np.empty((n, cohort), dtype=np.int64)
    dt = None
    if nops:
        ev_at = np.empty((cohort, len(traces[0].ev_at)), dtype=np.int64)
        for c, tr in enumerate(traces):
            ev_at[c] = np.frombuffer(tr.ev_at, dtype=np.int64)
        at = ev_at[:, np.frombuffer(prog.raw, dtype=np.int64)]
        d = np.empty_like(at)
        d[:, 1:] = at[:, 1:] - at[:, :-1]
        for i in range(n):
            lo, hi = off[i], off[i + 1]
            if lo < hi:
                d[:, lo] = at[:, lo] - it_s[:, i]
                et[i] = it_e[:, i] - at[:, hi - 1]
            else:
                et[i] = sp[:, i]
        dt = np.ascontiguousarray(d.T)
    else:
        et[:] = sp.T

    mt_pos: List[int] = []
    hx_pos: List[int] = []
    mt_entries: List[Tuple[int, ...]] = []
    hx_entries: List[Tuple[int, ...]] = []
    if any(
        m.effective_prefetch_mode
        in (PrefetchMode.HELIX, PrefetchMode.MATCHED)
        for m in machines
    ):
        mt_pos, hx_pos, mt_entries, hx_entries = _resolve_agendas(
            prog, tuple(loop.helper_order), counted
        )

    signals = prog.signals if counted else prog.signals + prog.next_iters
    for mi, machine in enumerate(machines):
        cores = machine.cores
        lat = machine.signal_latency
        fast = machine.prefetched_signal_latency
        xfr = machine.word_transfer_cycles
        bar = 0 if machine.total_store_ordering else machine.barrier_cycles
        conf = machine.config_cycles_per_thread * max(cores - 1, 1)
        mode = machine.effective_prefetch_mode
        mode_none = mode is PrefetchMode.NONE
        mode_ideal = mode is PrefetchMode.IDEAL
        helix = mode is PrefetchMode.HELIX
        do_helper = helix or mode is PrefetchMode.MATCHED

        clk = np.full((cores, cohort), conf, dtype=np.int64)
        hclk = np.zeros((cores, cohort), dtype=np.int64) if do_helper else None
        evt = np.zeros((nops, cohort), dtype=np.int64)
        slots_t = np.zeros((prog.slot_count, cohort), dtype=np.int64)
        stall = np.zeros(cohort, dtype=np.int64)
        seg = np.zeros(cohort, dtype=np.int64)
        sigc = np.zeros(cohort, dtype=np.int64)
        maxend = np.zeros(cohort, dtype=np.int64)
        prev_next = None
        cur_next = None

        for i in range(n):
            core = i % cores
            need_ctrl = i > 0 and not counted
            if need_ctrl:
                assert has_next[i - 1], "iteration without start signal"

            pfv = None
            if do_helper and i > 0:
                entries = hx_entries[i] if helix else mt_entries[i]
                if entries:
                    cursor = hclk[core]
                    pfv = []
                    for source in entries:
                        ts = (
                            prev_next
                            if source == _CTRL_SRC
                            else evt[source]
                        )
                        cursor = np.maximum(cursor, ts) + lat
                        pfv.append(cursor)
                    hclk[core] = cursor

            t = clk[core]
            if need_ctrl:
                ts = prev_next
                started = t
                if mode_none:
                    t = np.maximum(t, ts) + lat
                elif mode_ideal:
                    t = np.maximum(t, ts) + fast
                else:
                    # The control entry always leads the resolved agenda.
                    pull = np.maximum(t, ts) + lat
                    t = np.minimum(pull, np.maximum(t + fast, pfv[0]))
                sigc += t - started

            ivl = []
            for j in range(off[i], off[i + 1]):
                o = op_[j]
                pj = pre_[j]
                if o == OP_WAIT_SYNC:
                    t = t + dt[j]
                    if bar:
                        t += (pj + 1) * bar
                    ts = evt[src_[j]]
                    if mode_none:
                        arrival = np.maximum(t, ts) + lat
                    elif mode_ideal:
                        arrival = np.maximum(t, ts) + fast
                    else:
                        arrival = np.maximum(t, ts) + lat
                        pos = hx_pos[j] if helix else mt_pos[j]
                        if pos >= 0:
                            np.minimum(
                                arrival,
                                np.maximum(t + fast, pfv[pos]),
                                out=arrival,
                            )
                    stall += arrival - t
                    t = arrival
                    slots_t[a2_[j]] = t
                elif o == OP_WAIT:
                    t = t + dt[j]
                    if bar:
                        t += (pj + 1) * bar
                    slots_t[a2_[j]] = t
                elif o == OP_SIGNAL:
                    t = t + dt[j]
                    if bar:
                        t += (pj + 1) * bar
                    evt[j] = t
                    slot = a2_[j]
                    if slot >= 0:
                        ivl.append((slots_t[slot], t))
                elif o == OP_XFER:
                    t = t + dt[j]
                    extra = pj * bar + a1_[j] * xfr
                    if extra:
                        t += extra
                else:  # OP_NEXT
                    t = t + dt[j]
                    if bar:
                        t += pj * bar
                    cur_next = t

            t = t + et[i]
            if bar:
                t += tail_[i] * bar
            clk[core] = t
            np.maximum(maxend, t, out=maxend)
            if ivl:
                if len(ivl) == 1:
                    seg += ivl[0][1] - ivl[0][0]
                else:
                    # Merge in append order for everyone, then redo the
                    # rare members whose openings were out of order with
                    # the scalar sort-and-merge.
                    violated = None
                    prev_open = ivl[0][0]
                    for s_, _e in ivl[1:]:
                        v = s_ < prev_open
                        violated = v if violated is None else violated | v
                        prev_open = s_
                    ms, me = ivl[0]
                    busy = np.zeros(cohort, dtype=np.int64)
                    for s_, e_ in ivl[1:]:
                        ov = s_ <= me
                        busy = np.where(ov, busy, busy + (me - ms))
                        ms = np.where(ov, ms, s_)
                        me = np.where(ov, np.maximum(me, e_), e_)
                    closed = busy + (me - ms)
                    if violated.any():
                        for c in np.nonzero(violated)[0]:
                            pairs = sorted(
                                (int(s_[c]), int(e_[c])) for s_, e_ in ivl
                            )
                            closed[c] = _merge_segments(pairs, False)
                    seg += closed
            prev_next = cur_next

        par = (maxend + (lat + cores - 1)).tolist()
        stall_l = stall.tolist()
        seg_l = seg.tolist()
        sigc_l = sigc.tolist()
        comp_l = (span_total + bar * barrier_events).tolist()
        transfer_cycles = transfer_words * xfr
        for c in range(cohort):
            stats = ScheduleResult(
                parallel_cycles=par[c],
                sequential_cycles=seqs[c],
                signals=signals,
                waits=waits,
                transfer_words=transfer_words,
            )
            stats.wait_stall_cycles = stall_l[c]
            stats.segment_cycles = seg_l[c]
            stats.signal_cycles = sigc_l[c]
            stats.compute_cycles = comp_l[c]
            stats.transfer_cycles = transfer_cycles
            out[c][mi] = stats
    return out  # type: ignore[return-value]


def schedule_many(
    traces: Sequence[CompactInvocationTrace],
    loops: Sequence[ParallelizedLoop],
    machines: Sequence[MachineConfig],
) -> List[List[ScheduleResult]]:
    """Schedule many invocations under many machines in one pass.

    ``loops[i]`` is the parallelized-loop info of ``traces[i]``.
    Returns ``columns[i][mi]``, field-exact with per-trace
    :func:`schedule_compact`.  Traces are grouped into cohorts of
    identical shape (:func:`trace_signature`); cohorts of at least
    :data:`_MIN_COHORT` members run through the numpy-vectorized
    :func:`_schedule_cohort` walk, the stragglers through the per-trace
    lockstep engine :func:`schedule_compact_many`.
    """
    results: List[Optional[List[ScheduleResult]]] = [None] * len(traces)
    if not traces:
        return []
    groups: Dict[Tuple, List[int]] = {}
    for idx, (trace, loop) in enumerate(zip(traces, loops)):
        key = (id(loop),) + trace_signature(trace)
        groups.setdefault(key, []).append(idx)
    for members in groups.values():
        if len(members) < _MIN_COHORT:
            for idx in members:
                results[idx] = schedule_compact_many(
                    traces[idx], loops[idx], machines
                )
        else:
            cols = _schedule_cohort(
                [traces[idx] for idx in members],
                loops[members[0]],
                machines,
            )
            for c, idx in enumerate(members):
                results[idx] = cols[c]
    return results  # type: ignore[return-value]


def schedule_invocation_reference(
    trace: InvocationTrace,
    loop: ParallelizedLoop,
    machine: MachineConfig,
) -> ScheduleResult:
    """Reconstruct the parallel schedule of one invocation.

    The original per-event interpreter over the raw trace, kept as the
    differential oracle for :func:`schedule_compact`.
    """
    cores = machine.cores
    latency = machine.signal_latency
    fast = machine.prefetched_signal_latency
    mode = machine.effective_prefetch_mode
    transfer = machine.word_transfer_cycles
    conf = machine.config_cycles_per_thread * max(cores - 1, 1)
    # Section 2.3: without total store ordering every synchronizing load
    # and store needs a memory barrier.
    barrier = 0 if machine.total_store_ordering else machine.barrier_cycles

    core_free = [float(conf)] * cores
    helper_free = [0.0] * cores
    prev_sig: Dict[int, float] = {}
    prev_produced: Set[int] = set()
    prev_next_time: Optional[float] = None
    iteration_ends: List[float] = []
    barrier_events = 0
    span_total = 0

    stats = ScheduleResult(
        parallel_cycles=0,
        sequential_cycles=trace.end_cycles - trace.start_cycles,
    )

    def pull_complete(t: float, ts: float) -> float:
        return max(t, ts) + latency

    def wait_complete(t: float, ts: float, prefetch_done: Optional[float]) -> float:
        if mode is PrefetchMode.NONE:
            return pull_complete(t, ts)
        if mode is PrefetchMode.IDEAL:
            return max(t, ts) + fast
        if prefetch_done is None:
            return pull_complete(t, ts)
        return min(pull_complete(t, ts), max(t + fast, prefetch_done))

    for i, iteration in enumerate(trace.iterations):
        core = i % cores

        # Helper-thread prefetch agenda for this iteration.
        prefetch_done: Dict[int, float] = {}
        if mode in (PrefetchMode.HELIX, PrefetchMode.MATCHED) and i > 0:
            ctrl_agenda = [] if loop.counted else [CTRL_DEP]
            if mode is PrefetchMode.HELIX:
                agenda = ctrl_agenda + list(loop.helper_order)
            else:
                agenda = ctrl_agenda + [
                    dep for kind, dep, _at in iteration.events if kind == "w"
                ]
            cursor = helper_free[core]
            for dep in agenda:
                if dep in prefetch_done:
                    continue
                ts = prev_next_time if dep == CTRL_DEP else prev_sig.get(dep)
                if ts is None:
                    continue
                done = max(cursor, ts) + latency
                prefetch_done[dep] = done
                cursor = done
            helper_free[core] = cursor

        # Iteration start: counted loops derive their iteration numbers
        # locally (Step 3); other loops wait for the predecessor's control
        # signal (the IterationFlag store).
        t = core_free[core]
        if i > 0 and not loop.counted:
            assert prev_next_time is not None, "iteration without start signal"
            started = t
            t = wait_complete(t, prev_next_time, prefetch_done.get(CTRL_DEP))
            stats.signal_cycles += int(t - started)

        cur_sig: Dict[int, float] = {}
        cur_next: Optional[float] = None
        cur_produced: Set[int] = set()
        waited: Set[int] = set()
        transferred: Set[int] = set()
        segment_opens: Dict[int, float] = {}
        segment_intervals: List[Tuple[float, float]] = []
        # Events are appended in cycle order, so wait->signal intervals
        # usually open in increasing order too; sort only when a nested
        # pairing actually violated it.
        intervals_sorted = True
        last = iteration.start_cycles

        for kind, dep, at in iteration.events:
            t += at - last
            last = at
            if kind == "w":
                stats.waits += 1
                barrier_events += 1
                t += barrier
                if dep in waited or dep in cur_sig:
                    continue
                waited.add(dep)
                if i == 0:
                    segment_opens[dep] = t
                    continue
                ts = prev_sig.get(dep)
                if ts is None:
                    segment_opens[dep] = t
                    continue
                arrival = wait_complete(t, ts, prefetch_done.get(dep))
                if arrival > t:
                    stats.wait_stall_cycles += int(arrival - t)
                    t = arrival
                segment_opens[dep] = t
            elif kind == "s":
                barrier_events += 1
                t += barrier
                if dep not in cur_sig:
                    cur_sig[dep] = t
                    stats.signals += 1
                    opened = segment_opens.pop(dep, None)
                    if opened is not None:
                        if (
                            segment_intervals
                            and opened < segment_intervals[-1][0]
                        ):
                            intervals_sorted = False
                        segment_intervals.append((opened, t))
            elif kind == "n":
                if cur_next is None:
                    cur_next = t
                    if not loop.counted:
                        stats.signals += 1
            elif kind == "x":
                if dep in prev_produced and dep not in transferred:
                    transferred.add(dep)
                    words = iteration.words.get(dep, 1)
                    t += words * transfer
                    stats.transfer_words += words
            else:  # 'p' producer marks only feed the next iteration's set.
                cur_produced.add(dep)

        t += iteration.end_cycles - last
        span_total += iteration.end_cycles - iteration.start_cycles
        core_free[core] = t
        iteration_ends.append(t)

        # Merge segment intervals for the busy-time statistic.
        if segment_intervals:
            if not intervals_sorted:
                segment_intervals.sort()
            merged_start, merged_end = segment_intervals[0]
            for start, end in segment_intervals[1:]:
                if start <= merged_end:
                    merged_end = max(merged_end, end)
                else:
                    stats.segment_cycles += int(merged_end - merged_start)
                    merged_start, merged_end = start, end
            stats.segment_cycles += int(merged_end - merged_start)

        prev_sig = cur_sig
        prev_next_time = cur_next
        prev_produced = cur_produced

    stats.compute_cycles = span_total + barrier * barrier_events
    stats.transfer_cycles = stats.transfer_words * transfer

    if not iteration_ends:
        # Zero-iteration invocation: the loop body never ran, so no
        # threads were configured and nothing needs collecting -- the
        # invocation costs exactly its sequential span.
        stats.parallel_cycles = stats.sequential_cycles
        return stats

    # Main thread collects the exit variable and stops parallel threads.
    finish = max(iteration_ends)
    finish += latency + max(cores - 1, 0)
    stats.parallel_cycles = int(finish)
    return stats
