"""Sequential IR interpreter with a cycle cost model.

The interpreter provides three services:

* **Functional execution** -- running MiniC programs (compiled to IR) to
  produce observable output; this is the correctness oracle used to check
  that HELIX-parallelized code computes exactly what the sequential code
  does.
* **Cycle accounting** -- every dynamic instruction is charged its
  :class:`~repro.runtime.machine.CostModel` cost, giving the sequential
  baseline times of the evaluation.
* **Hooks** -- block-transition and call events that the profiler
  (:mod:`repro.runtime.profiler`) and the parallel executor
  (:mod:`repro.runtime.parallel`) build on.

Integer semantics are C-like: 64-bit two's-complement wrap-around,
truncating division.  This keeps benchmark programs (hash functions, RNGs)
deterministic and portable.

Three execution backends share these semantics (selected per activation
by :meth:`Interpreter.call_function`):

* the **tree-walker** in this module -- simple, hookable everywhere, and
  the reference for subclasses that override the core execution methods;
* the **pre-decoded backend** (:mod:`repro.runtime.precompile`) -- each
  function is lowered once to slot-allocated, closure-compiled blocks and
  runs several times faster;
* the **superblock backend** (:mod:`repro.runtime.codegen`) -- basic
  blocks are fused into single-entry superblocks and each superblock is
  code-generated into one compiled Python function, removing the
  per-instruction closure calls entirely.

Selection is automatic and always bit-identical to the tree-walker:
uninstrumented runs use the superblock backend, listener/hook users
(profiler, parallel executor) the decoded backend's hooked variant, and
subclasses that override ``exec_instr``-level methods fall back to the
tree-walker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ir import BasicBlock, Function, Instruction, Module, Opcode
from repro.ir.operands import Const, Operand, Symbol, VReg
from repro.ir.types import Type
# Stdlib-only counter registry; deliberately not the repro.obs package
# root, which would pull the exporters into the interpreter's imports.
from repro.obs.metrics import REGISTRY
from repro.runtime.machine import MachineConfig

_INT_MASK = (1 << 64) - 1
_INT_SIGN = 1 << 63


def wrap_int(value: int) -> int:
    """Wrap a Python int to 64-bit two's complement."""
    value &= _INT_MASK
    if value & _INT_SIGN:
        value -= 1 << 64
    return value


def c_div(a: int, b: int) -> int:
    """C-style integer division (truncates toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_mod(a: int, b: int) -> int:
    """C-style remainder (sign of the dividend)."""
    return a - c_div(a, b) * b


class RuntimeFault(Exception):
    """A dynamic error: division by zero, out-of-bounds access, bad pointer."""


class ExecutionLimitExceeded(RuntimeFault):
    """The instruction budget was exhausted (probable infinite loop)."""


class Pointer:
    """A runtime pointer: a memory region plus an element offset."""

    __slots__ = ("store", "base", "region")

    def __init__(self, store: List, base: int, region: str) -> None:
        self.store = store
        self.base = base
        #: Region name, for diagnostics only.
        self.region = region

    def offset(self, delta: int) -> "Pointer":
        return Pointer(self.store, self.base + delta, self.region)

    def read(self, index: int):
        slot = self.base + index
        if slot < 0 or slot >= len(self.store):
            raise RuntimeFault(
                f"load out of bounds: {self.region}[{slot}] (size {len(self.store)})"
            )
        return self.store[slot]

    def write(self, index: int, value) -> None:
        slot = self.base + index
        if slot < 0 or slot >= len(self.store):
            raise RuntimeFault(
                f"store out of bounds: {self.region}[{slot}] (size {len(self.store)})"
            )
        self.store[slot] = value

    def __repr__(self) -> str:
        return f"<ptr {self.region}+{self.base}>"


@dataclass
class Frame:
    """One function activation: registers and frame-local array storage."""

    func: Function
    regs: Dict[int, object] = field(default_factory=dict)
    local_mem: Dict[str, List] = field(default_factory=dict)

    def local_region(self, symbol: Symbol) -> List:
        store = self.local_mem.get(symbol.name)
        if store is None:
            zero = 0.0 if symbol.elem_type is Type.FLOAT else 0
            store = [zero] * symbol.size
            self.local_mem[symbol.name] = store
        return store


@dataclass
class ExecutionResult:
    """Outcome of a program run."""

    output: List[str]
    cycles: int
    instructions: int
    return_value: object = None

    @property
    def output_text(self) -> str:
        return "\n".join(self.output)

    def to_dict(self) -> dict:
        """JSON-stable representation for the evaluation disk cache.

        ``return_value`` must be JSON-representable (int/float/str/None);
        entry points of the benchmark suite only ever return those.
        """
        return {
            "output": list(self.output),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "return_value": self.return_value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionResult":
        return cls(
            output=list(data["output"]),
            cycles=data["cycles"],
            instructions=data["instructions"],
            return_value=data.get("return_value"),
        )


def format_value(value) -> str:
    """Canonical rendering of a printed value (the oracle format)."""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


#: Overriding any of these (class- or instance-level) disables the decoded
#: backend: its closures fuse exactly this logic, so a replacement must run
#: on the tree-walker to take effect.
_TREE_FORCING = frozenset(
    {"exec_block", "exec_instr", "eval_operand", "eval_terminator", "charge"}
)

#: Overriding any of these selects the decoded backend's *hooked* variant,
#: which calls them at the same points as the tree-walker.
_HOOK_FORCING = frozenset({"on_block_entry", "exec_sync", "exec_xfer"})

#: Backend modes resolved per activation.
_BACKEND_TREE, _BACKEND_HOOKED, _BACKEND_FAST, _BACKEND_SUPER = 0, 1, 2, 3
_BACKEND_HOOKED_SUPER = 4

#: Registry counter names, indexed by backend mode.
_BACKEND_COUNTERS = (
    "interp.backend.tree",
    "interp.backend.hooked",
    "interp.backend.decoded",
    "interp.backend.superblock",
    "interp.backend.hooked_superblock",
)


class Interpreter:
    """Executes a :class:`~repro.ir.Module` sequentially.

    Subclasses (the parallel executor) may override :meth:`on_block_entry`
    to observe control flow, and reuse :meth:`exec_instr` /
    :meth:`eval_operand` to execute individual instructions.

    ``backend`` selects the execution engine: ``"auto"`` (default) uses
    the fastest backend that is bit-identical to the tree-walker (the
    superblock backend for uninstrumented runs, its *hooked* tier for
    hook/``count_loads`` users, the decoded hooked variant for
    listener-bearing runs) and falls back otherwise, ``"tree"`` always
    tree-walks, while ``"decoded"`` and ``"superblock"`` pin the fast
    path to one engine family and assert that it is usable (raising
    ``ValueError`` for subclasses that override core execution
    methods).

    ``block_profile`` optionally supplies dynamic block-entry counts
    keyed ``(function name, block name)`` (the shape of
    :attr:`repro.runtime.profiler.ProfileData.block_counts`); the
    superblock backend uses them for trace-guided chain formation --
    hot blocks seed chains first and hot CBR arms are fused.  Purely a
    performance hint -- never affects semantics.

    ``codegen_cache`` optionally supplies an artifact store (any object
    with ``load(kind, key)`` / ``store(kind, key, payload)``, in
    practice :class:`repro.artifacts.ArtifactStore`); the superblock
    tiers content-address their generated code through it so warm runs
    skip decode+codegen (see :mod:`repro.runtime.codegen`).
    """

    def __init__(
        self,
        module: Module,
        machine: Optional[MachineConfig] = None,
        max_instructions: Optional[int] = 500_000_000,
        backend: str = "auto",
        block_profile: Optional[Mapping[Tuple[str, str], int]] = None,
        codegen_cache=None,
    ) -> None:
        if backend not in ("auto", "superblock", "decoded", "tree"):
            raise ValueError(f"unknown interpreter backend {backend!r}")
        self.module = module
        self.machine = machine or MachineConfig()
        self.cost_model = self.machine.cost_model
        self.max_instructions = max_instructions
        self.memory: Dict[str, List] = {}
        self.output: List[str] = []
        self.cycles = 0
        self.instructions = 0
        self.call_depth = 0
        # Each IR-level call nests a few Python frames; keep the guest
        # limit comfortably under CPython's recursion limit so runaway
        # recursion surfaces as a clean RuntimeFault.
        self.max_call_depth = 200
        #: Optional hooks; see the profiler for usage.
        self.block_listener: Optional[
            Callable[[str, Optional[str], str, int], None]
        ] = None
        self.call_listener: Optional[Callable[[str, bool, int], None]] = None
        #: Count LOADG/LOADP executions into :attr:`load_count` (the
        #: parallel executor prices data forwarding from this).
        self.count_loads = False
        self.load_count = 0
        self.backend = backend
        self.block_profile = dict(block_profile) if block_profile else None
        #: Optional content-addressed store for generated superblock
        #: code; duck-typed so the runtime layer never imports the
        #: evaluation layer (see repro.artifacts.ArtifactStore).
        self.codegen_cache = codegen_cache
        cls = type(self)
        core_overrides = sorted(
            name
            for name in _TREE_FORCING
            if getattr(cls, name) is not getattr(Interpreter, name)
        )
        core_overridden = bool(core_overrides)
        if backend in ("decoded", "superblock") and core_overridden:
            raise ValueError(
                f"{cls.__name__} overrides core execution methods "
                f"({', '.join(core_overrides)}); the {backend} backend "
                "cannot honor them"
            )
        self._force_tree = backend == "tree" or core_overridden
        self._class_hooked = any(
            getattr(cls, name) is not getattr(Interpreter, name)
            for name in _HOOK_FORCING
        )
        # All per-function compiled caches key on ``Function.version``
        # alongside the name: IR mutation bumps the version, so a
        # post-mutation activation can never execute stale decoded or
        # generated code.
        #: (name, version, hooked, counting loads) -> DecodedFunction.
        self._decoded: Dict[Tuple[str, int, bool, bool], object] = {}
        #: (name, version) -> SuperblockFunction (uninstrumented tier).
        self._superblocks: Dict[Tuple[str, int], object] = {}
        #: (name, version, counting loads) -> hooked SuperblockFunction.
        self._hooked_superblocks: Dict[Tuple[str, int, bool], object] = {}
        # Imported here (not at module top) to break the import cycle;
        # by construction time repro.runtime is fully initialized.
        from repro.runtime import codegen, precompile

        self._precompile = precompile
        self._codegen = codegen
        self.reset_memory()

    # -- memory ------------------------------------------------------------

    def reset_memory(self) -> None:
        """(Re)initialize global memory from module initializers.

        Regions are reset *in place* so their backing lists stay stable
        across runs -- the decoded backend resolves global symbols to
        these lists at decode time.
        """
        memory = self.memory
        for name, init in self.module.global_inits.items():
            store = memory.get(name)
            if store is None:
                memory[name] = list(init)
            else:
                store[:] = init

    def region_of(self, symbol: Symbol, frame: Frame) -> List:
        if symbol.is_global:
            store = self.memory.get(symbol.name)
            if store is None:
                raise RuntimeFault(f"unknown global {symbol.name!r}")
            return store
        return frame.local_region(symbol)

    # -- running -----------------------------------------------------------

    def run(self, entry: str = "main", args: Sequence = ()) -> ExecutionResult:
        """Execute ``entry`` to completion and return the result."""
        self.output = []
        self.cycles = 0
        self.instructions = 0
        # A prior run that faulted mid-call left call_depth raised; reset
        # so re-running the same instance never trips the limit early.
        self.call_depth = 0
        self.reset_memory()
        # Count the backend this run selects, once per run -- never per
        # activation, which is the hot path.
        REGISTRY.inc(_BACKEND_COUNTERS[self._backend_mode()])
        func = self.module.functions[entry]
        value = self.call_function(func, list(args))
        return ExecutionResult(
            output=list(self.output),
            cycles=self.cycles,
            instructions=self.instructions,
            return_value=value,
        )

    def _backend_mode(self) -> int:
        """Resolve which engine executes the next activation.

        Runs once per activation, so the instance-override probes use
        ``frozenset.isdisjoint`` against ``__dict__`` (a handful of
        hash lookups) rather than a ``keys() &`` intersection, which
        allocates a fresh set per call.
        """
        if self._force_tree or not _TREE_FORCING.isdisjoint(self.__dict__):
            return _BACKEND_TREE
        if self.block_listener is not None or self.call_listener is not None:
            # Listeners observe *every* block entry and call edge;
            # fused chains cannot honor that, so demote to the decoded
            # hooked variant.
            return _BACKEND_HOOKED
        if (
            self._class_hooked
            or self.count_loads
            or not _HOOK_FORCING.isdisjoint(self.__dict__)
        ):
            # Hook overrides and load counting run on the hooked
            # superblock tier (same observation points, fused chains),
            # unless pinned to the decoded engine.
            if self.backend == "decoded":
                return _BACKEND_HOOKED
            return _BACKEND_HOOKED_SUPER
        if self.backend == "decoded":
            return _BACKEND_FAST
        return _BACKEND_SUPER

    def call_function(self, func: Function, args: Sequence) -> object:
        """Run one activation of ``func`` and return its value."""
        if len(args) != len(func.params):
            raise RuntimeFault(
                f"{func.name} called with {len(args)} args, "
                f"expects {len(func.params)}"
            )
        self.call_depth += 1
        if self.call_depth > self.max_call_depth:
            raise RuntimeFault("call depth limit exceeded")
        if self.call_listener is not None:
            self.call_listener(func.name, True, self.cycles)
        mode = self._backend_mode()
        if mode == _BACKEND_SUPER:
            value = self._call_super(func, args)
        elif mode == _BACKEND_HOOKED_SUPER:
            value = self._call_hooked_super(func, args)
        elif mode == _BACKEND_TREE:
            value = self._call_tree(func, args)
        else:
            value = self._call_decoded(func, args, mode == _BACKEND_HOOKED)
        if self.call_listener is not None:
            self.call_listener(func.name, False, self.cycles)
        self.call_depth -= 1
        return value

    def _call_tree(self, func: Function, args: Sequence) -> object:
        """Tree-walking activation (the reference engine)."""
        frame = Frame(func)
        for param, value in zip(func.params, args):
            frame.regs[param.uid] = value
        block = func.entry
        self.on_block_entry(frame, None, block)
        value = None
        while True:
            outcome = self.exec_block(frame, block)
            if outcome[0] == "ret":
                value = outcome[1]
                break
            next_block = func.blocks[outcome[1]]
            self.on_block_entry(frame, block, next_block)
            block = next_block
        return value

    def _decoded_for(self, func: Function, hooked: bool,
                     count_loads: bool = False):
        """The (cached) decoded form of ``func`` for one hook variant.

        Also the resolver behind the superblock tiers' lazy fallback
        decode: a generated function that never diverts to tier-2 never
        triggers a decode at all.
        """
        key = (func.name, func.version, hooked, hooked and count_loads)
        dfunc = self._decoded.get(key)
        if dfunc is None:
            dfunc = self._precompile.decode_function(
                self, func, hooked, hooked and count_loads
            )
            self._decoded[key] = dfunc
        return dfunc

    def _call_decoded(
        self, func: Function, args: Sequence, hooked: bool
    ) -> object:
        """Pre-decoded activation; decodes ``func`` on first use."""
        precompile = self._precompile
        dfunc = self._decoded_for(func, hooked, self.count_loads)
        frame = precompile.DecodedFrame(func, dfunc.nslots)
        slots = frame.slots
        for slot, value in zip(dfunc.param_slots, args):
            slots[slot] = value
        return precompile.execute_decoded(self, dfunc, frame, hooked)

    def _call_super(self, func: Function, args: Sequence) -> object:
        """Superblock code-generated activation; compiles on first use.

        The tier-2 fallback blocks decode lazily inside the compiled
        function, so a cold compile (or warm artifact hit) is
        decode-free.
        """
        codegen = self._codegen
        key = (func.name, func.version)
        sfunc = self._superblocks.get(key)
        if sfunc is None:
            sfunc = codegen.compile_superblocks(self, func)
            self._superblocks[key] = sfunc
        frame = self._precompile.DecodedFrame(func, sfunc.nslots)
        slots = frame.slots
        for slot, value in zip(sfunc.param_slots, args):
            slots[slot] = value
        return codegen.execute_superblocks(self, sfunc, frame)

    def _call_hooked_super(self, func: Function, args: Sequence) -> object:
        """Hooked superblock activation: fused chains that call
        ``on_block_entry`` / ``exec_sync`` / ``exec_xfer`` at the
        decoded hooked variant's exact observation points, with
        ``count_loads`` compiled to static per-segment increments."""
        codegen = self._codegen
        count_loads = self.count_loads
        key = (func.name, func.version, count_loads)
        sfunc = self._hooked_superblocks.get(key)
        if sfunc is None:
            sfunc = codegen.compile_superblocks(
                self, func, hooked=True, count_loads=count_loads
            )
            self._hooked_superblocks[key] = sfunc
        frame = self._precompile.DecodedFrame(func, sfunc.nslots)
        slots = frame.slots
        for slot, value in zip(sfunc.param_slots, args):
            slots[slot] = value
        return codegen.execute_hooked_superblocks(self, sfunc, frame)

    def on_block_entry(
        self, frame: Frame, prev: Optional[BasicBlock], block: BasicBlock
    ) -> None:
        """Hook called on every block entry (including function entry)."""
        if self.block_listener is not None:
            self.block_listener(
                frame.func.name,
                prev.name if prev is not None else None,
                block.name,
                self.cycles,
            )

    def exec_block(self, frame: Frame, block: BasicBlock) -> Tuple[str, object]:
        """Execute one block; returns ('ret', value) or ('jump', name)."""
        for instr in block.instructions:
            if instr.is_terminator:
                return self.eval_terminator(frame, instr)
            self.exec_instr(frame, instr)
        raise RuntimeFault(f"block {block.name} fell through without terminator")

    # -- instruction execution ------------------------------------------------

    def charge(self, instr: Instruction) -> None:
        """Account one dynamic instruction's cycles."""
        is_float = instr.dest is not None and instr.dest.type is Type.FLOAT
        self.cycles += self.cost_model.cycles(instr.opcode, is_float)
        self.instructions += 1
        if (
            self.max_instructions is not None
            and self.instructions > self.max_instructions
        ):
            raise ExecutionLimitExceeded(
                f"exceeded {self.max_instructions} instructions"
            )

    def eval_operand(self, operand: Operand, frame: Frame):
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, VReg):
            try:
                return frame.regs[operand.uid]
            except KeyError:
                raise RuntimeFault(
                    f"use of undefined register {operand} in {frame.func.name}"
                ) from None
        # Symbol operand outside LEA/LOADG/STOREG context: decay to pointer.
        return Pointer(self.region_of(operand, frame), 0, operand.name)

    def eval_terminator(self, frame: Frame, instr: Instruction) -> Tuple[str, object]:
        self.charge(instr)
        if instr.opcode is Opcode.RET:
            value = self.eval_operand(instr.args[0], frame) if instr.args else None
            return ("ret", value)
        if instr.opcode is Opcode.BR:
            return ("jump", instr.targets[0])
        # CBR
        cond = self.eval_operand(instr.args[0], frame)
        return ("jump", instr.targets[0] if cond != 0 else instr.targets[1])

    def exec_instr(self, frame: Frame, instr: Instruction) -> None:
        """Execute one non-terminator instruction.

        Dispatch is a precomputed ``Opcode -> handler`` table
        (:data:`_EXEC_HANDLERS`) rather than an ``if``/``elif`` chain, so
        the reference backend's cost per instruction doesn't grow with
        the opcode's position in the ISA.  Handlers route every operand
        through :meth:`eval_operand` (and sync ops through
        :meth:`exec_sync` / :meth:`exec_xfer`), preserving all subclass
        hook points.
        """
        if self.count_loads and instr.reads_memory:
            self.load_count += 1
        self.charge(instr)
        handler = _EXEC_HANDLERS.get(instr.opcode)
        if handler is None:  # pragma: no cover - verifier rejects these
            raise RuntimeFault(f"cannot execute opcode {instr.opcode}")
        handler(self, frame, instr)

    def exec_sync(self, frame: Frame, instr: Instruction) -> None:
        """Hook for WAIT/SIGNAL/NEXT_ITER (overridden by the executor)."""

    def exec_xfer(self, frame: Frame, instr: Instruction) -> None:
        """Hook for XFER data-forwarding markers."""


def _arith_div(a, b):
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise RuntimeFault("integer division by zero")
        return c_div(a, b)
    if b == 0:
        raise RuntimeFault("float division by zero")
    return a / b


def _arith_mod(a, b):
    if b == 0:
        raise RuntimeFault("modulo by zero")
    return c_mod(a, b)


def _shift_left(a, b):
    if b < 0 or b > 63:
        raise RuntimeFault(f"shift amount {b} out of range")
    return wrap_int(a << b)


def _shift_right(a, b):
    if b < 0 or b > 63:
        raise RuntimeFault(f"shift amount {b} out of range")
    return a >> b


def _add(a, b):
    result = a + b
    return wrap_int(result) if isinstance(result, int) else result


def _sub(a, b):
    result = a - b
    return wrap_int(result) if isinstance(result, int) else result


def _mul(a, b):
    result = a * b
    return wrap_int(result) if isinstance(result, int) else result


_BINARY_HANDLERS = {
    Opcode.ADD: _add,
    Opcode.SUB: _sub,
    Opcode.MUL: _mul,
    Opcode.DIV: _arith_div,
    Opcode.MOD: _arith_mod,
    Opcode.AND: lambda a, b: wrap_int(a & b),
    Opcode.OR: lambda a, b: wrap_int(a | b),
    Opcode.XOR: lambda a, b: wrap_int(a ^ b),
    Opcode.SHL: _shift_left,
    Opcode.SHR: _shift_right,
    Opcode.EQ: lambda a, b: 1 if a == b else 0,
    Opcode.NE: lambda a, b: 1 if a != b else 0,
    Opcode.LT: lambda a, b: 1 if a < b else 0,
    Opcode.LE: lambda a, b: 1 if a <= b else 0,
    Opcode.GT: lambda a, b: 1 if a > b else 0,
    Opcode.GE: lambda a, b: 1 if a >= b else 0,
}


# -- tree-walker dispatch table ----------------------------------------------
#
# One handler per opcode, bound into _EXEC_HANDLERS below.  Handlers take
# (interp, frame, instr) and must only touch operand/region state through
# the interpreter's overridable methods so subclass hooks keep working.


def _exec_mov(interp, frame, instr):
    frame.regs[instr.dest.uid] = interp.eval_operand(instr.args[0], frame)


def _make_exec_binary(handler):
    def run(interp, frame, instr):
        a = interp.eval_operand(instr.args[0], frame)
        b = interp.eval_operand(instr.args[1], frame)
        frame.regs[instr.dest.uid] = handler(a, b)

    return run


def _exec_neg(interp, frame, instr):
    a = interp.eval_operand(instr.args[0], frame)
    frame.regs[instr.dest.uid] = wrap_int(-a) if isinstance(a, int) else -a


def _exec_not(interp, frame, instr):
    a = interp.eval_operand(instr.args[0], frame)
    frame.regs[instr.dest.uid] = 1 if a == 0 else 0


def _exec_itof(interp, frame, instr):
    frame.regs[instr.dest.uid] = float(interp.eval_operand(instr.args[0], frame))


def _exec_ftoi(interp, frame, instr):
    frame.regs[instr.dest.uid] = wrap_int(
        int(interp.eval_operand(instr.args[0], frame))
    )


def _exec_lea(interp, frame, instr):
    symbol = instr.args[0]
    index = interp.eval_operand(instr.args[1], frame)
    store = interp.region_of(symbol, frame)
    frame.regs[instr.dest.uid] = Pointer(store, index, symbol.name)


def _exec_ptradd(interp, frame, instr):
    ptr = interp.eval_operand(instr.args[0], frame)
    delta = interp.eval_operand(instr.args[1], frame)
    if not isinstance(ptr, Pointer):
        raise RuntimeFault(f"PTRADD on non-pointer {ptr!r}")
    frame.regs[instr.dest.uid] = ptr.offset(delta)


def _exec_loadg(interp, frame, instr):
    symbol = instr.args[0]
    index = interp.eval_operand(instr.args[1], frame)
    store = interp.region_of(symbol, frame)
    if index < 0 or index >= len(store):
        raise RuntimeFault(
            f"load out of bounds: {symbol.name}[{index}] "
            f"(size {len(store)})"
        )
    frame.regs[instr.dest.uid] = store[index]


def _exec_storeg(interp, frame, instr):
    symbol = instr.args[0]
    index = interp.eval_operand(instr.args[1], frame)
    value = interp.eval_operand(instr.args[2], frame)
    store = interp.region_of(symbol, frame)
    if index < 0 or index >= len(store):
        raise RuntimeFault(
            f"store out of bounds: {symbol.name}[{index}] "
            f"(size {len(store)})"
        )
    store[index] = value


def _exec_loadp(interp, frame, instr):
    ptr = interp.eval_operand(instr.args[0], frame)
    index = interp.eval_operand(instr.args[1], frame)
    if not isinstance(ptr, Pointer):
        raise RuntimeFault(f"LOADP on non-pointer {ptr!r}")
    frame.regs[instr.dest.uid] = ptr.read(index)


def _exec_storep(interp, frame, instr):
    ptr = interp.eval_operand(instr.args[0], frame)
    index = interp.eval_operand(instr.args[1], frame)
    value = interp.eval_operand(instr.args[2], frame)
    if not isinstance(ptr, Pointer):
        raise RuntimeFault(f"STOREP on non-pointer {ptr!r}")
    ptr.write(index, value)


def _exec_call(interp, frame, instr):
    args = [interp.eval_operand(a, frame) for a in instr.args]
    callee = interp.module.functions[instr.callee]
    value = interp.call_function(callee, args)
    if instr.dest is not None:
        frame.regs[instr.dest.uid] = value


def _exec_print(interp, frame, instr):
    interp.output.append(format_value(interp.eval_operand(instr.args[0], frame)))


def _exec_sync_op(interp, frame, instr):
    # Synchronization pseudo-ops are timing-only; functionally inert.
    interp.exec_sync(frame, instr)


def _exec_xfer_op(interp, frame, instr):
    # Data-forwarding marker; functionally inert, timed by executor.
    interp.exec_xfer(frame, instr)


_EXEC_HANDLERS: Dict[Opcode, Callable] = {
    Opcode.MOV: _exec_mov,
    Opcode.NEG: _exec_neg,
    Opcode.NOT: _exec_not,
    Opcode.ITOF: _exec_itof,
    Opcode.FTOI: _exec_ftoi,
    Opcode.LEA: _exec_lea,
    Opcode.PTRADD: _exec_ptradd,
    Opcode.LOADG: _exec_loadg,
    Opcode.STOREG: _exec_storeg,
    Opcode.LOADP: _exec_loadp,
    Opcode.STOREP: _exec_storep,
    Opcode.CALL: _exec_call,
    Opcode.PRINT: _exec_print,
    Opcode.WAIT: _exec_sync_op,
    Opcode.SIGNAL: _exec_sync_op,
    Opcode.NEXT_ITER: _exec_sync_op,
    Opcode.XFER: _exec_xfer_op,
}
_EXEC_HANDLERS.update(
    {op: _make_exec_binary(h) for op, h in _BINARY_HANDLERS.items()}
)


def run_module(
    module: Module,
    machine: Optional[MachineConfig] = None,
    entry: str = "main",
    max_instructions: Optional[int] = 500_000_000,
    backend: str = "auto",
    block_profile: Optional[Mapping[Tuple[str, str], int]] = None,
    codegen_cache=None,
) -> ExecutionResult:
    """Convenience: interpret ``module`` sequentially and return the result."""
    interp = Interpreter(
        module,
        machine,
        max_instructions=max_instructions,
        backend=backend,
        block_profile=block_profile,
        codegen_cache=codegen_cache,
    )
    return interp.run(entry)
