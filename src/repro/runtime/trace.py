"""Recorded invocation traces and their compact ("compiled") form.

The parallel executor records one :class:`InvocationTrace` per dynamic
invocation of a parallelized loop: per-iteration event streams of
``wait``/``signal``/``next_iter``/``xfer`` executions stamped with
interpreter cycles.  Those traces are machine-independent, so every
figure of the evaluation replays them under swept
:class:`~repro.runtime.machine.MachineConfig`\\ s.

Replaying from the raw event lists is wasteful: every machine pays the
per-event string dispatch, the duplicate-wait/duplicate-signal
filtering, the producer-set rebuilds and the word-count lookups again,
even though none of that depends on the machine.  This module therefore
*compiles* a trace once into a :class:`CompactInvocationTrace`:

* the raw events are packed into flat ``array('q')`` kind/dep/at
  columns with per-iteration slices (lossless -- the original trace can
  be reconstructed exactly, and this is the serialized form);
* a derived :class:`TraceProgram` resolves everything the scheduler can
  know without a machine: duplicate waits/signals collapse to barrier
  counts, producer marks and non-forwarded consumer marks disappear,
  transferable ``xfer`` events carry their word counts inline, waits
  are split into *can-stall* (predecessor signalled the dependence) and
  *cannot-stall* variants, wait/signal pairs are pre-matched into
  segment slots, and the per-iteration deduped wait agendas for
  ``MATCHED`` prefetching are precomputed.  The aggregate ``waits``,
  ``signals`` and ``transfer_words`` statistics are machine-independent
  and precomputed outright.

:func:`repro.runtime.sched.schedule_compact` consumes the program; the
per-machine loop then touches only integers and small dicts of signal
times.

Serialization is versioned (:data:`TRACE_FORMAT_VERSION`);
:meth:`CompactInvocationTrace.from_dict` transparently accepts the
legacy per-iteration dict format that older evaluation caches stored.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.loopnest import LoopId
from repro.obs.metrics import REGISTRY

#: Synthetic dependence id of the control signal (IterationFlag).
CTRL_DEP = -1

#: Serialized compact-trace format generation.  Bump when the on-disk
#: shape changes; loading an unknown future version raises.
TRACE_FORMAT_VERSION = 2

#: Raw event kind codes (the packed ``ev_kind`` column).
KIND_WAIT, KIND_SIGNAL, KIND_NEXT, KIND_XFER, KIND_PRODUCE = range(5)

_KIND_TO_CODE = {"w": KIND_WAIT, "s": KIND_SIGNAL, "n": KIND_NEXT,
                 "x": KIND_XFER, "p": KIND_PRODUCE}
_CODE_TO_KIND = "wsnxp"

#: Compiled opcodes (the :class:`TraceProgram` ``op`` column).
#: ``OP_WAIT`` is a first wait that cannot stall (first iteration, or
#: the predecessor never signalled the dependence); ``OP_WAIT_SYNC``
#: runs the full stall/prefetch logic.
OP_WAIT, OP_WAIT_SYNC, OP_SIGNAL, OP_NEXT, OP_XFER = range(5)


@dataclass
class IterationTrace:
    """Events of one loop iteration, stamped with interpreter cycles."""

    start_cycles: int
    end_cycles: int = 0
    #: (kind, dep_id, abs_cycles): 'w' wait, 's' signal, 'n' next_iter,
    #: 'x' consumer mark (dep carries data), 'p' producer mark.
    events: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Words carried per dependence (for 'x' events).
    words: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-stable representation (tuples become lists, int keys
        become strings; :meth:`from_dict` restores both)."""
        return {
            "start_cycles": self.start_cycles,
            "end_cycles": self.end_cycles,
            "events": [list(event) for event in self.events],
            "words": {str(dep): words for dep, words in self.words.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IterationTrace":
        return cls(
            start_cycles=data["start_cycles"],
            end_cycles=data["end_cycles"],
            events=[
                (kind, int(dep), int(at)) for kind, dep, at in data["events"]
            ],
            words={int(dep): int(n) for dep, n in data["words"].items()},
        )


@dataclass
class InvocationTrace:
    """One dynamic invocation of a parallelized loop."""

    loop_id: LoopId
    start_cycles: int
    end_cycles: int = 0
    iterations: List[IterationTrace] = field(default_factory=list)
    loads: int = 0

    @property
    def iteration_count(self) -> int:
        return len(self.iterations)

    def to_dict(self) -> dict:
        return {
            "loop_id": list(self.loop_id),
            "start_cycles": self.start_cycles,
            "end_cycles": self.end_cycles,
            "loads": self.loads,
            "iterations": [it.to_dict() for it in self.iterations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InvocationTrace":
        return cls(
            loop_id=tuple(data["loop_id"]),
            start_cycles=data["start_cycles"],
            end_cycles=data["end_cycles"],
            loads=data["loads"],
            iterations=[
                IterationTrace.from_dict(it) for it in data["iterations"]
            ],
        )


@dataclass
class TraceProgram:
    """Machine-independent compiled form of one invocation trace.

    Built once per trace by :meth:`CompactInvocationTrace.program`; the
    compiled scheduler replays it once per machine.
    """

    #: Flat compiled event columns (parallel arrays, ``off`` slices them
    #: per iteration).
    op: array
    #: Operand 1: dependence id (waits/signals), word count (xfers).
    a1: array
    #: Operand 2: segment slot (waits; signals carry the slot of the
    #: wait they close, or -1 when the dependence was never waited on).
    a2: array
    #: Synchronization source: for ``OP_WAIT_SYNC`` the flat op index of
    #: the previous iteration's matching ``OP_SIGNAL`` (pack-time
    #: guarantee: present), -1 for every other opcode.  Lets schedulers
    #: read the predecessor's signal time from a per-op timetable column
    #: instead of rebuilding a dependence dict per iteration.
    src: array
    #: Index of each kept op's source event in the raw ``ev_*`` columns.
    #: Compilation decisions depend only on the event *shape* (kinds,
    #: deps, per-iteration slicing, word counts), never on timestamps,
    #: so traces with identical shapes share one program structure and
    #: this column gathers their per-trace ``at`` values from the raw
    #: ``ev_at`` column (the cohort scheduler's zero-compile path).
    raw: array
    #: Absolute trace cycles of the event.
    at: array
    #: Elided barrier-bearing events (duplicate waits/signals) between
    #: the previous kept event and this one; each costs one barrier on
    #: non-TSO machines.
    pre: array
    #: Per-iteration event slices, length ``iterations + 1``.
    off: array
    #: Elided barrier-bearing events after the last kept event of each
    #: iteration.
    tail: array
    #: Per-iteration sequential spans (``end - start``).
    spans: array
    #: Maximum segment slots used by any iteration.
    slot_count: int
    #: Per-iteration deduped wait agendas (all ``'w'`` deps in first-
    #: occurrence order) for ``MATCHED`` prefetching.
    agendas: Tuple[Tuple[int, ...], ...]
    #: Per-iteration flag: the iteration executed a ``next_iter``.
    has_next: Tuple[bool, ...]
    #: Machine-independent aggregate statistics.
    waits: int
    signals: int
    next_iters: int
    transfer_words: int
    #: Compiled ops excluding OP_NEXT: zero means the trace is a pure
    #: counted-DOALL candidate (no waits, signals or transfers at all).
    active_ops: int
    #: Sum of all iteration spans (total sequential body cycles).
    span_total: int
    #: Raw barrier-bearing events (every recorded wait and signal,
    #: duplicates included): each costs one barrier on non-TSO machines,
    #: so ``span_total + barrier * barrier_events`` is the exact busy
    #: compute time of the invocation on any machine.
    barrier_events: int


@dataclass
class CompactInvocationTrace:
    """Column-packed invocation trace (the serialized trace form).

    ``ev_kind``/``ev_dep``/``ev_at`` are the raw events of every
    iteration concatenated into flat ``array('q')`` columns, sliced per
    iteration by ``ev_off``; the representation is lossless
    (:meth:`to_invocation_trace` reconstructs the original exactly).
    The derived :class:`TraceProgram` is built lazily and never
    serialized.
    """

    loop_id: LoopId
    start_cycles: int
    end_cycles: int
    loads: int
    it_start: array
    it_end: array
    ev_off: array
    ev_kind: array
    ev_dep: array
    ev_at: array
    #: Per-iteration word counts of 'x' events (dep -> words).
    words: Tuple[Dict[int, int], ...]
    _program: Optional[TraceProgram] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __getstate__(self) -> dict:
        # The compiled program is cheap to rebuild and heavy to pickle;
        # sharded replay ships bare columns and workers recompile.
        state = self.__dict__.copy()
        state["_program"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def iteration_count(self) -> int:
        return len(self.it_start)

    @property
    def event_count(self) -> int:
        return len(self.ev_kind)

    # -- conversions -------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: InvocationTrace) -> "CompactInvocationTrace":
        """Pack a recorded invocation into columns (record-time step)."""
        it_start = array("q")
        it_end = array("q")
        ev_off = array("q", [0])
        ev_kind = array("q")
        ev_dep = array("q")
        ev_at = array("q")
        words: List[Dict[int, int]] = []
        kind_codes = _KIND_TO_CODE
        for iteration in trace.iterations:
            it_start.append(iteration.start_cycles)
            it_end.append(iteration.end_cycles)
            for kind, dep, at in iteration.events:
                ev_kind.append(kind_codes[kind])
                ev_dep.append(dep)
                ev_at.append(at)
            ev_off.append(len(ev_kind))
            words.append(dict(iteration.words))
        return cls(
            loop_id=trace.loop_id,
            start_cycles=trace.start_cycles,
            end_cycles=trace.end_cycles,
            loads=trace.loads,
            it_start=it_start,
            it_end=it_end,
            ev_off=ev_off,
            ev_kind=ev_kind,
            ev_dep=ev_dep,
            ev_at=ev_at,
            words=tuple(words),
        )

    def to_invocation_trace(self) -> InvocationTrace:
        """Reconstruct the legacy per-iteration representation exactly."""
        iterations = []
        codes = _CODE_TO_KIND
        for i in range(len(self.it_start)):
            lo, hi = self.ev_off[i], self.ev_off[i + 1]
            iterations.append(
                IterationTrace(
                    start_cycles=self.it_start[i],
                    end_cycles=self.it_end[i],
                    events=[
                        (codes[self.ev_kind[j]], self.ev_dep[j], self.ev_at[j])
                        for j in range(lo, hi)
                    ],
                    words=dict(self.words[i]),
                )
            )
        return InvocationTrace(
            loop_id=self.loop_id,
            start_cycles=self.start_cycles,
            end_cycles=self.end_cycles,
            iterations=iterations,
            loads=self.loads,
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Versioned JSON-stable representation (the disk-cache form)."""
        return {
            "format": TRACE_FORMAT_VERSION,
            "loop_id": list(self.loop_id),
            "start_cycles": self.start_cycles,
            "end_cycles": self.end_cycles,
            "loads": self.loads,
            "iter_start": list(self.it_start),
            "iter_end": list(self.it_end),
            "ev_off": list(self.ev_off),
            "ev_kind": list(self.ev_kind),
            "ev_dep": list(self.ev_dep),
            "ev_at": list(self.ev_at),
            "words": [
                {str(dep): n for dep, n in per_iter.items()}
                for per_iter in self.words
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompactInvocationTrace":
        """Load a serialized trace.

        Accepts both the versioned compact format and the legacy
        per-iteration dict format (no ``format`` key) that older
        evaluation caches stored; unknown future versions raise.
        """
        version = data.get("format")
        if version is None:
            return cls.from_trace(InvocationTrace.from_dict(data))
        if version != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported compact-trace format {version!r} "
                f"(this build reads {TRACE_FORMAT_VERSION} and legacy dicts)"
            )
        return cls(
            loop_id=tuple(data["loop_id"]),
            start_cycles=data["start_cycles"],
            end_cycles=data["end_cycles"],
            loads=data["loads"],
            it_start=array("q", data["iter_start"]),
            it_end=array("q", data["iter_end"]),
            ev_off=array("q", data["ev_off"]),
            ev_kind=array("q", data["ev_kind"]),
            ev_dep=array("q", data["ev_dep"]),
            ev_at=array("q", data["ev_at"]),
            words=tuple(
                {int(dep): int(n) for dep, n in per_iter.items()}
                for per_iter in data["words"]
            ),
        )

    # -- compilation -------------------------------------------------------

    @property
    def program(self) -> TraceProgram:
        """The compiled program (built once, cached on the trace)."""
        if self._program is None:
            self._program = self._compile()
        return self._program

    def _compile(self) -> TraceProgram:
        # One registry tick per compilation, outside the event loops.
        REGISTRY.inc("sched.programs_compiled")
        op = array("q")
        a1 = array("q")
        a2 = array("q")
        src = array("q")
        raw_ix = array("q")
        at_out = array("q")
        pre = array("q")
        off = array("q", [0])
        tail = array("q")
        spans = array("q")
        agendas: List[Tuple[int, ...]] = []
        has_next: List[bool] = []

        kinds, deps, ats = self.ev_kind, self.ev_dep, self.ev_at
        ev_off = self.ev_off
        waits = signals = next_iters = transfer_total = active = 0
        raw_signals = span_total = 0
        slot_count = 0
        #: dep -> flat op index of the iteration's kept OP_SIGNAL.
        prev_sig: Dict[int, int] = {}
        prev_produced: frozenset = frozenset()

        for i in range(len(self.it_start)):
            words = self.words[i]
            waited: set = set()
            cur_sig: Dict[int, int] = {}
            transferred: set = set()
            produced: set = set()
            agenda: List[int] = []
            agenda_seen: set = set()
            open_slot: Dict[int, int] = {}
            nslot = 0
            seen_next = False
            pending = 0

            for j in range(ev_off[i], ev_off[i + 1]):
                kind = kinds[j]
                dep = deps[j]
                if kind == KIND_WAIT:
                    waits += 1
                    if dep not in agenda_seen:
                        agenda_seen.add(dep)
                        agenda.append(dep)
                    if dep in waited or dep in cur_sig:
                        pending += 1  # barrier-only duplicate
                        continue
                    waited.add(dep)
                    open_slot[dep] = nslot
                    source = prev_sig.get(dep, -1) if i > 0 else -1
                    op.append(OP_WAIT_SYNC if source >= 0 else OP_WAIT)
                    a1.append(dep)
                    a2.append(nslot)
                    src.append(source)
                    raw_ix.append(j)
                    at_out.append(ats[j])
                    pre.append(pending)
                    pending = 0
                    nslot += 1
                    active += 1
                elif kind == KIND_SIGNAL:
                    raw_signals += 1
                    if dep in cur_sig:
                        pending += 1  # barrier-only duplicate
                        continue
                    cur_sig[dep] = len(op)
                    signals += 1
                    op.append(OP_SIGNAL)
                    a1.append(dep)
                    a2.append(open_slot.pop(dep, -1))
                    src.append(-1)
                    raw_ix.append(j)
                    at_out.append(ats[j])
                    pre.append(pending)
                    pending = 0
                    active += 1
                elif kind == KIND_NEXT:
                    if seen_next:
                        continue  # only the first next_iter acts
                    seen_next = True
                    next_iters += 1
                    op.append(OP_NEXT)
                    a1.append(0)
                    a2.append(-1)
                    src.append(-1)
                    raw_ix.append(j)
                    at_out.append(ats[j])
                    pre.append(pending)
                    pending = 0
                elif kind == KIND_XFER:
                    if dep in prev_produced and dep not in transferred:
                        transferred.add(dep)
                        n_words = words.get(dep, 1)
                        transfer_total += n_words
                        op.append(OP_XFER)
                        a1.append(n_words)
                        a2.append(-1)
                        src.append(-1)
                        raw_ix.append(j)
                        at_out.append(ats[j])
                        pre.append(pending)
                        pending = 0
                        active += 1
                    # non-forwarded consumer marks have no effect
                else:  # KIND_PRODUCE
                    produced.add(dep)

            off.append(len(op))
            tail.append(pending)
            span = self.it_end[i] - self.it_start[i]
            spans.append(span)
            span_total += span
            agendas.append(tuple(agenda))
            has_next.append(seen_next)
            if nslot > slot_count:
                slot_count = nslot
            prev_sig = cur_sig
            prev_produced = frozenset(produced)

        return TraceProgram(
            op=op,
            a1=a1,
            a2=a2,
            src=src,
            raw=raw_ix,
            at=at_out,
            pre=pre,
            off=off,
            tail=tail,
            spans=spans,
            slot_count=slot_count,
            agendas=tuple(agendas),
            has_next=tuple(has_next),
            waits=waits,
            signals=signals,
            next_iters=next_iters,
            transfer_words=transfer_total,
            active_ops=active,
            span_total=span_total,
            barrier_events=waits + raw_signals,
        )


def as_compact(trace) -> CompactInvocationTrace:
    """Normalize a trace (legacy or compact) to the compact form."""
    if isinstance(trace, CompactInvocationTrace):
        return trace
    return CompactInvocationTrace.from_trace(trace)
