"""Execution substrate: the simulated chip multiprocessor.

The paper evaluates HELIX on a physical Intel i7-980X.  This package is the
simulation substitute: a sequential IR interpreter with a per-instruction
cycle cost model (:mod:`repro.runtime.interpreter`), a profiler built on it
(:mod:`repro.runtime.profiler`), the machine description
(:mod:`repro.runtime.machine`) and the parallel executor that reconstructs
the timing of a HELIX-parallelized loop running on a ring of cores with SMT
helper threads (:mod:`repro.runtime.parallel`).
"""

from repro.runtime.machine import CostModel, MachineConfig, PrefetchMode
from repro.runtime.interpreter import (
    ExecutionLimitExceeded,
    ExecutionResult,
    Interpreter,
    RuntimeFault,
    run_module,
)
from repro.runtime.profiler import LoopProfile, ProfileData, profile_module
from repro.runtime.parallel import ParallelExecutor, ParallelRunResult
from repro.runtime.trace import CompactInvocationTrace, InvocationTrace

__all__ = [
    "MachineConfig",
    "CostModel",
    "PrefetchMode",
    "Interpreter",
    "ExecutionResult",
    "RuntimeFault",
    "ExecutionLimitExceeded",
    "run_module",
    "profile_module",
    "ProfileData",
    "LoopProfile",
    "ParallelExecutor",
    "ParallelRunResult",
    "CompactInvocationTrace",
    "InvocationTrace",
]
