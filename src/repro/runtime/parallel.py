"""The parallel executor: timing of HELIX loops on the simulated CMP.

Functionally, a HELIX-transformed module is interpreted exactly like any
other module -- the inserted ``wait``/``signal``/``next_iter``/``xfer``
pseudo-ops are semantically inert, and HELIX is non-speculative, so the
synchronized parallel execution computes precisely what the sequential
trace computes.  What changes is *time*.

The executor reconstructs the parallel schedule per loop invocation from
the sequential trace.  This is exact (not an approximation) for HELIX's
synchronization structure: iterations start in order, and every
``wait``/``signal`` pair crosses from the thread of iteration *i* to the
thread of iteration *i+1* on a statically fixed ring, so there is no
timing feedback into values and per-iteration replay in iteration order
with per-core clocks reproduces what an event-driven engine would
compute.

Per iteration the replay carries:

* a per-core clock (round-robin assignment, iteration *i* on core
  ``i mod N``);
* a signal timetable from the previous iteration: a ``wait(d)`` at thread
  time ``t`` completes at ``max(t, ts(d)) + L`` in the pull system, where
  ``ts`` is when the predecessor signalled and ``L`` the inter-core
  latency (110 cycles on the modelled i7-980X);
* the helper thread of the core (Step 8): a prefetch agent that executes
  the generated wait sequence one signal at a time; a fully prefetched
  signal costs an L1 hit (4 cycles).  ``MATCHED`` and ``IDEAL`` prefetch
  modes implement the Section 3.3 comparison points;
* data forwarding: when the previous iteration actually produced a value
  a dependence carries (its ``xfer`` producer mark executed), the consumer
  pays the word-transfer cost ``M``.

Traces can be recorded and *replayed* against other machine
configurations (core count, prefetch mode, latencies) without re-running
the program -- the functional trace does not depend on the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.loopnest import LoopId
from repro.core.communication import is_producer_mark, xfer_words
from repro.core.loopinfo import ParallelizedLoop
from repro.ir import BasicBlock, Instruction, Module, Opcode
from repro.runtime.interpreter import (
    ExecutionResult,
    Frame,
    Interpreter,
    RuntimeFault,
)
from repro.runtime.machine import MachineConfig, PrefetchMode

#: Synthetic dependence id of the control signal (IterationFlag).
CTRL_DEP = -1


@dataclass
class IterationTrace:
    """Events of one loop iteration, stamped with interpreter cycles."""

    start_cycles: int
    end_cycles: int = 0
    #: (kind, dep_id, abs_cycles): 'w' wait, 's' signal, 'n' next_iter,
    #: 'x' consumer mark (dep carries data), 'p' producer mark.
    events: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Words carried per dependence (for 'x' events).
    words: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-stable representation (tuples become lists, int keys
        become strings; :meth:`from_dict` restores both)."""
        return {
            "start_cycles": self.start_cycles,
            "end_cycles": self.end_cycles,
            "events": [list(event) for event in self.events],
            "words": {str(dep): words for dep, words in self.words.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IterationTrace":
        return cls(
            start_cycles=data["start_cycles"],
            end_cycles=data["end_cycles"],
            events=[
                (kind, int(dep), int(at)) for kind, dep, at in data["events"]
            ],
            words={int(dep): int(n) for dep, n in data["words"].items()},
        )


@dataclass
class InvocationTrace:
    """One dynamic invocation of a parallelized loop."""

    loop_id: LoopId
    start_cycles: int
    end_cycles: int = 0
    iterations: List[IterationTrace] = field(default_factory=list)
    loads: int = 0

    def to_dict(self) -> dict:
        return {
            "loop_id": list(self.loop_id),
            "start_cycles": self.start_cycles,
            "end_cycles": self.end_cycles,
            "loads": self.loads,
            "iterations": [it.to_dict() for it in self.iterations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InvocationTrace":
        return cls(
            loop_id=tuple(data["loop_id"]),
            start_cycles=data["start_cycles"],
            end_cycles=data["end_cycles"],
            loads=data["loads"],
            iterations=[
                IterationTrace.from_dict(it) for it in data["iterations"]
            ],
        )


@dataclass
class ScheduleResult:
    """Timing of one invocation under a specific machine."""

    parallel_cycles: int
    sequential_cycles: int
    signals: int = 0
    waits: int = 0
    wait_stall_cycles: int = 0
    transfer_words: int = 0
    segment_cycles: int = 0


@dataclass
class LoopRunStats:
    """Aggregated runtime statistics of one parallelized loop."""

    loop_id: LoopId
    invocations: int = 0
    iterations: int = 0
    sequential_cycles: int = 0
    parallel_cycles: int = 0
    signals: int = 0
    waits: int = 0
    wait_stall_cycles: int = 0
    transfer_words: int = 0
    loads: int = 0
    segment_cycles: int = 0

    @property
    def loop_speedup(self) -> float:
        if self.parallel_cycles <= 0:
            return 1.0
        return self.sequential_cycles / self.parallel_cycles

    @property
    def transfer_fraction(self) -> float:
        """Words moved between cores / words consumed by iterations."""
        if self.loads <= 0:
            return 0.0
        return self.transfer_words / self.loads

    def to_dict(self) -> dict:
        return {
            "loop_id": list(self.loop_id),
            "invocations": self.invocations,
            "iterations": self.iterations,
            "sequential_cycles": self.sequential_cycles,
            "parallel_cycles": self.parallel_cycles,
            "signals": self.signals,
            "waits": self.waits,
            "wait_stall_cycles": self.wait_stall_cycles,
            "transfer_words": self.transfer_words,
            "loads": self.loads,
            "segment_cycles": self.segment_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoopRunStats":
        data = dict(data)
        data["loop_id"] = tuple(data["loop_id"])
        return cls(**data)


@dataclass
class ParallelRunResult:
    """Outcome of executing a transformed module on the simulated CMP."""

    result: ExecutionResult
    machine: MachineConfig
    loop_stats: Dict[LoopId, LoopRunStats] = field(default_factory=dict)
    traces: List[InvocationTrace] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def output(self) -> List[str]:
        return self.result.output


def schedule_invocation(
    trace: InvocationTrace,
    loop: ParallelizedLoop,
    machine: MachineConfig,
) -> ScheduleResult:
    """Reconstruct the parallel schedule of one invocation."""
    cores = machine.cores
    latency = machine.signal_latency
    fast = machine.prefetched_signal_latency
    mode = machine.effective_prefetch_mode
    transfer = machine.word_transfer_cycles
    conf = machine.config_cycles_per_thread * max(cores - 1, 1)
    # Section 2.3: without total store ordering every synchronizing load
    # and store needs a memory barrier.
    barrier = 0 if machine.total_store_ordering else machine.barrier_cycles

    core_free = [float(conf)] * cores
    helper_free = [0.0] * cores
    prev_sig: Dict[int, float] = {}
    prev_produced: Set[int] = set()
    prev_next_time: Optional[float] = None
    iteration_ends: List[float] = []

    stats = ScheduleResult(
        parallel_cycles=0,
        sequential_cycles=trace.end_cycles - trace.start_cycles,
    )

    def pull_complete(t: float, ts: float) -> float:
        return max(t, ts) + latency

    def wait_complete(t: float, ts: float, prefetch_done: Optional[float]) -> float:
        if mode is PrefetchMode.NONE:
            return pull_complete(t, ts)
        if mode is PrefetchMode.IDEAL:
            return max(t, ts) + fast
        if prefetch_done is None:
            return pull_complete(t, ts)
        return min(pull_complete(t, ts), max(t + fast, prefetch_done))

    for i, iteration in enumerate(trace.iterations):
        core = i % cores

        # Helper-thread prefetch agenda for this iteration.
        prefetch_done: Dict[int, float] = {}
        if mode in (PrefetchMode.HELIX, PrefetchMode.MATCHED) and i > 0:
            ctrl_agenda = [] if loop.counted else [CTRL_DEP]
            if mode is PrefetchMode.HELIX:
                agenda = ctrl_agenda + list(loop.helper_order)
            else:
                agenda = ctrl_agenda + [
                    dep for kind, dep, _at in iteration.events if kind == "w"
                ]
            cursor = helper_free[core]
            for dep in agenda:
                if dep in prefetch_done:
                    continue
                ts = prev_next_time if dep == CTRL_DEP else prev_sig.get(dep)
                if ts is None:
                    continue
                done = max(cursor, ts) + latency
                prefetch_done[dep] = done
                cursor = done
            helper_free[core] = cursor

        # Iteration start: counted loops derive their iteration numbers
        # locally (Step 3); other loops wait for the predecessor's control
        # signal (the IterationFlag store).
        t = core_free[core]
        if i > 0 and not loop.counted:
            assert prev_next_time is not None, "iteration without start signal"
            t = wait_complete(t, prev_next_time, prefetch_done.get(CTRL_DEP))

        cur_sig: Dict[int, float] = {}
        cur_next: Optional[float] = None
        waited: Set[int] = set()
        transferred: Set[int] = set()
        segment_opens: Dict[int, float] = {}
        segment_intervals: List[Tuple[float, float]] = []
        last = iteration.start_cycles

        for kind, dep, at in iteration.events:
            t += at - last
            last = at
            if kind == "w":
                stats.waits += 1
                t += barrier
                if dep in waited or dep in cur_sig:
                    continue
                waited.add(dep)
                if i == 0:
                    segment_opens[dep] = t
                    continue
                ts = prev_sig.get(dep)
                if ts is None:
                    segment_opens[dep] = t
                    continue
                arrival = wait_complete(t, ts, prefetch_done.get(dep))
                if arrival > t:
                    stats.wait_stall_cycles += int(arrival - t)
                    t = arrival
                segment_opens[dep] = t
            elif kind == "s":
                t += barrier
                if dep not in cur_sig:
                    cur_sig[dep] = t
                    stats.signals += 1
                    opened = segment_opens.pop(dep, None)
                    if opened is not None:
                        segment_intervals.append((opened, t))
            elif kind == "n":
                if cur_next is None:
                    cur_next = t
                    if not loop.counted:
                        stats.signals += 1
            elif kind == "x":
                if dep in prev_produced and dep not in transferred:
                    transferred.add(dep)
                    words = iteration.words.get(dep, 1)
                    t += words * transfer
                    stats.transfer_words += words
            # 'p' producer marks need no timing action.

        t += iteration.end_cycles - last
        core_free[core] = t
        iteration_ends.append(t)

        # Merge segment intervals for the busy-time statistic.
        if segment_intervals:
            segment_intervals.sort()
            merged_start, merged_end = segment_intervals[0]
            for start, end in segment_intervals[1:]:
                if start <= merged_end:
                    merged_end = max(merged_end, end)
                else:
                    stats.segment_cycles += int(merged_end - merged_start)
                    merged_start, merged_end = start, end
            stats.segment_cycles += int(merged_end - merged_start)

        prev_sig = cur_sig
        prev_next_time = cur_next
        prev_produced = {
            dep for kind, dep, _at in iteration.events if kind == "p"
        }

    if not iteration_ends:
        # Zero-iteration invocation: the loop body never ran, so no
        # threads were configured and nothing needs collecting -- the
        # invocation costs exactly its sequential span.
        stats.parallel_cycles = stats.sequential_cycles
        return stats

    # Main thread collects the exit variable and stops parallel threads.
    finish = max(iteration_ends)
    finish += latency + max(cores - 1, 0)
    stats.parallel_cycles = int(finish)
    return stats


class ParallelExecutor(Interpreter):
    """Interprets a HELIX-transformed module, reconstructing parallel time.

    ``infos`` are the :class:`ParallelizedLoop` records produced by
    :func:`repro.core.parallelize_module` for this module.
    """

    def __init__(
        self,
        module: Module,
        infos: Sequence[ParallelizedLoop],
        machine: Optional[MachineConfig] = None,
        record_traces: bool = True,
        max_instructions: Optional[int] = 500_000_000,
        backend: str = "auto",
    ) -> None:
        super().__init__(
            module, machine, max_instructions=max_instructions,
            backend=backend,
        )
        # Memory reads are priced by the data-forwarding model; both
        # backends count them when this is set (the decoded backend runs
        # its hooked variant).
        self.count_loads = True
        self.infos = list(infos)
        self.record_traces = record_traces
        self._by_preheader: Dict[Tuple[str, str], ParallelizedLoop] = {}
        for info in self.infos:
            self._by_preheader[(info.func_name, info.par_preheader)] = info
        self._inv: Optional[InvocationTrace] = None
        self._inv_info: Optional[ParallelizedLoop] = None
        self._inv_frame: Optional[Frame] = None
        self._iter: Optional[IterationTrace] = None
        self._loads_at_start = 0
        self.loop_stats: Dict[LoopId, LoopRunStats] = {}
        self.traces: List[InvocationTrace] = []

    # -- interpreter hooks -------------------------------------------------

    def on_block_entry(
        self, frame: Frame, prev: Optional[BasicBlock], block: BasicBlock
    ) -> None:
        super().on_block_entry(frame, prev, block)
        if self._inv is None:
            info = self._by_preheader.get((frame.func.name, block.name))
            if info is not None:
                self._begin_invocation(info, frame)
            return
        if frame is not self._inv_frame:
            return
        info = self._inv_info
        if block.name == info.par_header:
            self._begin_iteration()
        elif block.name in info.exit_stubs:
            self._end_invocation()

    def exec_sync(self, frame: Frame, instr: Instruction) -> None:
        if self._iter is None or frame is not self._inv_frame:
            return
        if instr.opcode is Opcode.WAIT:
            self._iter.events.append(("w", instr.dep_id, self.cycles))
        elif instr.opcode is Opcode.SIGNAL:
            self._iter.events.append(("s", instr.dep_id, self.cycles))
        else:  # NEXT_ITER
            self._iter.events.append(("n", CTRL_DEP, self.cycles))

    def exec_xfer(self, frame: Frame, instr: Instruction) -> None:
        if self._iter is None or frame is not self._inv_frame:
            return
        dep = instr.dep_id
        if is_producer_mark(instr):
            self._iter.events.append(("p", dep, self.cycles))
        else:
            self._iter.events.append(("x", dep, self.cycles))
            self._iter.words[dep] = xfer_words(instr)

    # -- invocation lifecycle -------------------------------------------------

    def _begin_invocation(self, info: ParallelizedLoop, frame: Frame) -> None:
        self._inv = InvocationTrace(
            loop_id=info.loop_id, start_cycles=self.cycles
        )
        self._inv_info = info
        self._inv_frame = frame
        self._iter = None
        self._loads_at_start = self.load_count

    def _begin_iteration(self) -> None:
        if self._iter is not None:
            self._iter.end_cycles = self.cycles
        self._iter = IterationTrace(start_cycles=self.cycles)
        self._inv.iterations.append(self._iter)

    def _end_invocation(self) -> None:
        trace = self._inv
        info = self._inv_info
        if self._iter is not None:
            self._iter.end_cycles = self.cycles
        trace.end_cycles = self.cycles
        trace.loads = self.load_count - self._loads_at_start
        self._inv = None
        self._inv_info = None
        self._inv_frame = None
        self._iter = None

        schedule = schedule_invocation(trace, info, self.machine)
        # Replace the sequential span with the parallel schedule length.
        self.cycles = trace.start_cycles + schedule.parallel_cycles

        stats = self.loop_stats.get(info.loop_id)
        if stats is None:
            stats = LoopRunStats(loop_id=info.loop_id)
            self.loop_stats[info.loop_id] = stats
        _accumulate(stats, trace, schedule)
        if self.record_traces:
            self.traces.append(trace)

    # -- public API -------------------------------------------------------------

    def run(self, entry: str = "main", args: Sequence = ()) -> ExecutionResult:
        self._inv = None
        self._inv_info = None
        self._inv_frame = None
        self._iter = None
        self._loads_at_start = 0
        self.load_count = 0
        self.loop_stats = {}
        self.traces = []
        return super().run(entry, args)

    def execute(self) -> ParallelRunResult:
        """Run the program and package the results."""
        result = self.run()
        return ParallelRunResult(
            result=result,
            machine=self.machine,
            loop_stats=dict(self.loop_stats),
            traces=list(self.traces),
        )

    def restore_run(
        self,
        result: ExecutionResult,
        traces: Sequence[InvocationTrace],
        loop_stats: Dict[LoopId, LoopRunStats],
    ) -> ParallelRunResult:
        """Adopt a previously recorded run (e.g. loaded from the
        evaluation disk cache) as if :meth:`execute` had just produced
        it, so :meth:`replay` works without re-interpreting the program.

        The caller is responsible for passing traces recorded from an
        identical module under an identical cost model.
        """
        self.output = list(result.output)
        self.cycles = result.cycles
        self.instructions = result.instructions
        self.traces = list(traces)
        self.loop_stats = dict(loop_stats)
        return ParallelRunResult(
            result=result,
            machine=self.machine,
            loop_stats=dict(self.loop_stats),
            traces=list(self.traces),
        )

    def replay(self, machine: MachineConfig) -> ParallelRunResult:
        """Recompute the timing under a different machine from the stored
        traces, without re-interpreting the program.

        Valid for changes to core count, prefetch mode and latencies (the
        functional trace is machine-independent); the instruction cost
        model must stay the same.
        """
        if not self.record_traces:
            raise RuntimeFault("executor was created with record_traces=False")
        info_by_id = {info.loop_id: info for info in self.infos}
        adjusted = self.cycles
        loop_stats: Dict[LoopId, LoopRunStats] = {}
        for trace in self.traces:
            info = info_by_id[trace.loop_id]
            old = schedule_invocation(trace, info, self.machine)
            new = schedule_invocation(trace, info, machine)
            adjusted += new.parallel_cycles - old.parallel_cycles
            stats = loop_stats.setdefault(
                trace.loop_id, LoopRunStats(loop_id=trace.loop_id)
            )
            _accumulate(stats, trace, new)
        result = ExecutionResult(
            output=list(self.output),
            cycles=adjusted,
            instructions=self.instructions,
        )
        return ParallelRunResult(
            result=result,
            machine=machine,
            loop_stats=loop_stats,
            traces=list(self.traces),
        )


def _accumulate(
    stats: LoopRunStats, trace: InvocationTrace, schedule: ScheduleResult
) -> None:
    stats.invocations += 1
    stats.iterations += len(trace.iterations)
    stats.sequential_cycles += schedule.sequential_cycles
    stats.parallel_cycles += schedule.parallel_cycles
    stats.signals += schedule.signals
    stats.waits += schedule.waits
    stats.wait_stall_cycles += schedule.wait_stall_cycles
    stats.transfer_words += schedule.transfer_words
    stats.loads += trace.loads
    stats.segment_cycles += schedule.segment_cycles


def run_parallel(
    module: Module,
    infos: Sequence[ParallelizedLoop],
    machine: Optional[MachineConfig] = None,
    record_traces: bool = True,
    backend: str = "auto",
) -> ParallelRunResult:
    """Convenience wrapper: execute a transformed module."""
    executor = ParallelExecutor(
        module, infos, machine, record_traces=record_traces, backend=backend
    )
    return executor.execute()
