"""The parallel executor: timing of HELIX loops on the simulated CMP.

Functionally, a HELIX-transformed module is interpreted exactly like any
other module -- the inserted ``wait``/``signal``/``next_iter``/``xfer``
pseudo-ops are semantically inert, and HELIX is non-speculative, so the
synchronized parallel execution computes precisely what the sequential
trace computes.  What changes is *time*.

The executor reconstructs the parallel schedule per loop invocation from
the sequential trace.  This is exact (not an approximation) for HELIX's
synchronization structure: iterations start in order, and every
``wait``/``signal`` pair crosses from the thread of iteration *i* to the
thread of iteration *i+1* on a statically fixed ring, so there is no
timing feedback into values and per-iteration replay in iteration order
with per-core clocks reproduces what an event-driven engine would
compute.

Per iteration the replay carries:

* a per-core clock (round-robin assignment, iteration *i* on core
  ``i mod N``);
* a signal timetable from the previous iteration: a ``wait(d)`` at thread
  time ``t`` completes at ``max(t, ts(d)) + L`` in the pull system, where
  ``ts`` is when the predecessor signalled and ``L`` the inter-core
  latency (110 cycles on the modelled i7-980X);
* the helper thread of the core (Step 8): a prefetch agent that executes
  the generated wait sequence one signal at a time; a fully prefetched
  signal costs an L1 hit (4 cycles).  ``MATCHED`` and ``IDEAL`` prefetch
  modes implement the Section 3.3 comparison points;
* data forwarding: when the previous iteration actually produced a value
  a dependence carries (its ``xfer`` producer mark executed), the consumer
  pays the word-transfer cost ``M``.

Traces can be recorded and *replayed* against other machine
configurations (core count, prefetch mode, latencies) without re-running
the program -- the functional trace does not depend on the machine.
Recorded traces are packed into
:class:`~repro.runtime.trace.CompactInvocationTrace` at record time and
scheduled by the compiled engine
(:func:`~repro.runtime.sched.schedule_compact`); multi-machine sweeps
should go through :meth:`ParallelExecutor.replay_many`, which fills all
missing schedules in one pass over the traces and memoizes per-machine
schedule columns (keyed by
:meth:`~repro.runtime.machine.MachineConfig.fingerprint`) so the
baseline machine is never rescheduled per swept point.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.loopnest import LoopId
from repro.core.communication import is_producer_mark, xfer_words
from repro.core.loopinfo import ParallelizedLoop
from repro.ir import BasicBlock, Instruction, Module, Opcode
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import get_tracer
from repro.runtime.interpreter import (
    ExecutionResult,
    Frame,
    Interpreter,
    RuntimeFault,
)
from repro.runtime.machine import MachineConfig
from repro.runtime.sched import (
    ScheduleResult,
    schedule_compact,
    schedule_invocation_reference,
    schedule_many,
)
from repro.runtime.trace import (
    CTRL_DEP,
    CompactInvocationTrace,
    InvocationTrace,
    IterationTrace,
    as_compact,
)

__all__ = [
    "CTRL_DEP",
    "CompactInvocationTrace",
    "InvocationTrace",
    "IterationTrace",
    "LoopRunStats",
    "ParallelExecutor",
    "ParallelRunResult",
    "ScheduleResult",
    "run_parallel",
    "schedule_invocation",
    "schedule_invocation_reference",
]

#: Minimum traces per shard before sharded replay pays for process
#: startup and trace pickling; below this the batched engine runs
#: inline regardless of ``jobs``.
_SHARD_MIN_TRACES = 128


@dataclass(frozen=True)
class _LoopTiming:
    """Pickle-light stand-in for :class:`ParallelizedLoop`.

    The schedulers read exactly two fields of the loop record
    (``counted`` and ``helper_order``); sharded replay ships this shim
    to worker processes instead of the full record, which drags block
    sets and dependence lists along.
    """

    loop_id: LoopId
    counted: bool
    helper_order: Tuple[int, ...] = ()


def _schedule_shard(
    traces: List[CompactInvocationTrace],
    loops: List[_LoopTiming],
    machines: List[MachineConfig],
) -> Tuple[List[List[ScheduleResult]], List[dict], dict]:
    """Worker entry point of sharded replay: schedule one trace chunk
    under every machine through the batched engine.

    Returns the per-trace schedule columns plus serialized spans and the
    registry-counter delta, shipped home exactly like the suite's bench
    workers (the merged Perfetto trace shows one track per worker pid).
    """
    from repro.obs.metrics import metrics_delta
    from repro.obs.tracer import tracing

    before = REGISTRY.snapshot()
    with tracing() as tracer:
        with tracer.span(
            "sched.shard",
            cat="sched",
            traces=len(traces),
            machines=len(machines),
        ):
            columns = schedule_many(traces, loops, machines)
    spans = [event.as_dict() for event in tracer.finished()]
    return columns, spans, metrics_delta(before, REGISTRY.snapshot())

#: Either trace representation; the executor stores the compact form.
AnyTrace = Union[CompactInvocationTrace, InvocationTrace]


def schedule_invocation(
    trace: AnyTrace,
    loop: ParallelizedLoop,
    machine: MachineConfig,
) -> ScheduleResult:
    """Reconstruct the parallel schedule of one invocation.

    Accepts either trace representation; legacy traces are packed on the
    fly (callers scheduling the same trace repeatedly should pack once
    via :func:`repro.runtime.trace.as_compact` to reuse the compiled
    program).
    """
    return schedule_compact(as_compact(trace), loop, machine)


@dataclass
class LoopRunStats:
    """Aggregated runtime statistics of one parallelized loop."""

    loop_id: LoopId
    invocations: int = 0
    iterations: int = 0
    sequential_cycles: int = 0
    parallel_cycles: int = 0
    signals: int = 0
    waits: int = 0
    wait_stall_cycles: int = 0
    transfer_words: int = 0
    loads: int = 0
    segment_cycles: int = 0

    @property
    def loop_speedup(self) -> float:
        if self.parallel_cycles <= 0:
            return 1.0
        return self.sequential_cycles / self.parallel_cycles

    @property
    def transfer_fraction(self) -> float:
        """Words moved between cores / words consumed by iterations."""
        if self.loads <= 0:
            return 0.0
        return self.transfer_words / self.loads

    def to_dict(self) -> dict:
        return {
            "loop_id": list(self.loop_id),
            "invocations": self.invocations,
            "iterations": self.iterations,
            "sequential_cycles": self.sequential_cycles,
            "parallel_cycles": self.parallel_cycles,
            "signals": self.signals,
            "waits": self.waits,
            "wait_stall_cycles": self.wait_stall_cycles,
            "transfer_words": self.transfer_words,
            "loads": self.loads,
            "segment_cycles": self.segment_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoopRunStats":
        data = dict(data)
        data["loop_id"] = tuple(data["loop_id"])
        return cls(**data)


@dataclass
class ParallelRunResult:
    """Outcome of executing a transformed module on the simulated CMP."""

    result: ExecutionResult
    machine: MachineConfig
    loop_stats: Dict[LoopId, LoopRunStats] = field(default_factory=dict)
    traces: List[AnyTrace] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def output(self) -> List[str]:
        return self.result.output


class ParallelExecutor(Interpreter):
    """Interprets a HELIX-transformed module, reconstructing parallel time.

    ``infos`` are the :class:`ParallelizedLoop` records produced by
    :func:`repro.core.parallelize_module` for this module.
    """

    def __init__(
        self,
        module: Module,
        infos: Sequence[ParallelizedLoop],
        machine: Optional[MachineConfig] = None,
        record_traces: bool = True,
        max_instructions: Optional[int] = 500_000_000,
        backend: str = "auto",
        schedule_memo: Optional[Dict[str, List[ScheduleResult]]] = None,
        block_profile: Optional[Dict[Tuple[str, str], int]] = None,
        codegen_cache=None,
    ) -> None:
        super().__init__(
            module, machine, max_instructions=max_instructions,
            backend=backend, block_profile=block_profile,
            codegen_cache=codegen_cache,
        )
        # Memory reads are priced by the data-forwarding model; every
        # backend counts them when this is set.  Under "auto" the
        # *hooked superblock* tier is selected: fused chains observe
        # block boundaries and sync/xfer ops at the decoded hooked
        # variant's exact points, and compile load counting to static
        # per-segment increments.
        self.count_loads = True
        self.infos = list(infos)
        self.record_traces = record_traces
        self._by_preheader: Dict[Tuple[str, str], ParallelizedLoop] = {}
        for info in self.infos:
            self._by_preheader[(info.func_name, info.par_preheader)] = info
        self._inv: Optional[InvocationTrace] = None
        self._inv_info: Optional[ParallelizedLoop] = None
        self._inv_frame: Optional[Frame] = None
        self._iter: Optional[IterationTrace] = None
        self._loads_at_start = 0
        self.loop_stats: Dict[LoopId, LoopRunStats] = {}
        self.traces: List[CompactInvocationTrace] = []
        #: Memoized per-machine schedule columns, aligned with
        #: :attr:`traces`, keyed by machine fingerprint.  The executing
        #: machine's column is seeded during :meth:`run`, so replays
        #: never reschedule the baseline.  An
        #: :class:`~repro.artifacts.ArtifactStore` may inject a tracked
        #: namespace here (``schedule_memo``) so column occupancy shows
        #: up in the store's unified accounting; standalone executors
        #: default to a private dict with identical semantics.
        self._schedules: Dict[str, List[ScheduleResult]] = (
            schedule_memo if schedule_memo is not None else {}
        )

    # -- interpreter hooks -------------------------------------------------

    def on_block_entry(
        self, frame: Frame, prev: Optional[BasicBlock], block: BasicBlock
    ) -> None:
        super().on_block_entry(frame, prev, block)
        if self._inv is None:
            info = self._by_preheader.get((frame.func.name, block.name))
            if info is not None:
                self._begin_invocation(info, frame)
            return
        if frame is not self._inv_frame:
            return
        info = self._inv_info
        if block.name == info.par_header:
            self._begin_iteration()
        elif block.name in info.exit_stubs:
            self._end_invocation()

    def exec_sync(self, frame: Frame, instr: Instruction) -> None:
        if self._iter is None or frame is not self._inv_frame:
            return
        if instr.opcode is Opcode.WAIT:
            self._iter.events.append(("w", instr.dep_id, self.cycles))
        elif instr.opcode is Opcode.SIGNAL:
            self._iter.events.append(("s", instr.dep_id, self.cycles))
        else:  # NEXT_ITER
            self._iter.events.append(("n", CTRL_DEP, self.cycles))

    def exec_xfer(self, frame: Frame, instr: Instruction) -> None:
        if self._iter is None or frame is not self._inv_frame:
            return
        dep = instr.dep_id
        if is_producer_mark(instr):
            self._iter.events.append(("p", dep, self.cycles))
        else:
            self._iter.events.append(("x", dep, self.cycles))
            self._iter.words[dep] = xfer_words(instr)

    # -- invocation lifecycle -------------------------------------------------

    def _begin_invocation(self, info: ParallelizedLoop, frame: Frame) -> None:
        self._inv = InvocationTrace(
            loop_id=info.loop_id, start_cycles=self.cycles
        )
        self._inv_info = info
        self._inv_frame = frame
        self._iter = None
        self._loads_at_start = self.load_count

    def _begin_iteration(self) -> None:
        if self._iter is not None:
            self._iter.end_cycles = self.cycles
        self._iter = IterationTrace(start_cycles=self.cycles)
        self._inv.iterations.append(self._iter)

    def _end_invocation(self) -> None:
        trace = self._inv
        info = self._inv_info
        if self._iter is not None:
            self._iter.end_cycles = self.cycles
        trace.end_cycles = self.cycles
        trace.loads = self.load_count - self._loads_at_start
        self._inv = None
        self._inv_info = None
        self._inv_frame = None
        self._iter = None

        # Pack at record time; replays only ever see the compact form.
        compact = CompactInvocationTrace.from_trace(trace)
        schedule = schedule_compact(compact, info, self.machine)
        # Replace the sequential span with the parallel schedule length.
        self.cycles = trace.start_cycles + schedule.parallel_cycles

        stats = self.loop_stats.get(info.loop_id)
        if stats is None:
            stats = LoopRunStats(loop_id=info.loop_id)
            self.loop_stats[info.loop_id] = stats
        _accumulate(stats, compact, schedule)
        if self.record_traces:
            self.traces.append(compact)
            # Seed the baseline schedule column while we are at it.
            self._schedules.setdefault(
                self.machine.fingerprint(), []
            ).append(schedule)

    # -- public API -------------------------------------------------------------

    def run(self, entry: str = "main", args: Sequence = ()) -> ExecutionResult:
        self._inv = None
        self._inv_info = None
        self._inv_frame = None
        self._iter = None
        self._loads_at_start = 0
        self.load_count = 0
        self.loop_stats = {}
        self.traces = []
        self._schedules.clear()
        return super().run(entry, args)

    def execute(self) -> ParallelRunResult:
        """Run the program and package the results."""
        with get_tracer().span("exec.parallel", cat="exec") as sp:
            result = self.run()
            sp.set(invocations=len(self.traces), cycles=result.cycles)
        return ParallelRunResult(
            result=result,
            machine=self.machine,
            loop_stats=dict(self.loop_stats),
            traces=list(self.traces),
        )

    def restore_run(
        self,
        result: ExecutionResult,
        traces: Sequence[AnyTrace],
        loop_stats: Dict[LoopId, LoopRunStats],
        load_count: Optional[int] = None,
    ) -> ParallelRunResult:
        """Adopt a previously recorded run (e.g. loaded from the
        evaluation disk cache) as if :meth:`execute` had just produced
        it, so :meth:`replay` works without re-interpreting the program.

        ``load_count`` is the executed run's total
        :attr:`~repro.runtime.interpreter.Interpreter.load_count`; when
        absent (legacy cache payloads) it is approximated by the loads
        recorded inside invocations, which misses loads executed outside
        parallelized loops.

        The caller is responsible for passing traces recorded from an
        identical module under an identical cost model.
        """
        self.output = list(result.output)
        self.cycles = result.cycles
        self.instructions = result.instructions
        self.traces = [as_compact(trace) for trace in traces]
        self.loop_stats = dict(loop_stats)
        self._schedules.clear()
        if load_count is None:
            load_count = sum(trace.loads for trace in self.traces)
        self.load_count = load_count
        return ParallelRunResult(
            result=result,
            machine=self.machine,
            loop_stats=dict(self.loop_stats),
            traces=list(self.traces),
        )

    def _ensure_schedules(
        self,
        machines: Sequence[MachineConfig],
        batched: bool = True,
        jobs: Optional[int] = None,
    ) -> None:
        """Fill the schedule memo for every machine missing from it.

        A machine whose cached column merely lags behind
        :attr:`traces` is *extended* from where it stopped instead of
        recomputed from scratch.  With ``batched`` (the default) every
        missing column is filled in one pass over the traces by the
        batched engine (:func:`~repro.runtime.sched.schedule_many`,
        which vectorizes shape-identical trace cohorts and walks each
        remaining trace once for all machines); the per-trace path is
        kept for the benchmark's engine comparison.  ``jobs`` shards
        the trace list across a process pool for big grids.
        """
        total = len(self.traces)
        seen: set = set()
        missing: List[Tuple[str, MachineConfig, int]] = []
        for machine in machines:
            fingerprint = machine.fingerprint()
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            # Every requested machine owns a column afterwards, even the
            # empty one of a run whose loops never executed.
            column = self._schedules.setdefault(fingerprint, [])
            done = len(column)
            if done < total:
                missing.append((fingerprint, machine, done))
        if not missing:
            return
        info_by_id = {info.loop_id: info for info in self.infos}
        with get_tracer().span(
            "sched.schedule",
            cat="sched",
            machines=len(missing),
            traces=total,
            batched=batched,
            jobs=jobs or 1,
        ):
            if batched:
                # One pass from the earliest lagging offset; machines
                # that already cover a prefix keep it and only append
                # their missing rows.
                start = min(done for _fp, _m, done in missing)
                tail = self.traces[start:]
                loops = [info_by_id[t.loop_id] for t in tail]
                grid = [machine for _fp, machine, _d in missing]
                columns = self._schedule_columns(tail, loops, grid, jobs)
                for ki, (fp, _machine, done) in enumerate(missing):
                    col = self._schedules.setdefault(fp, [])
                    for ti in range(done - start, len(tail)):
                        col.append(columns[ti][ki])
            else:
                by_start: Dict[int, List[Tuple[str, MachineConfig]]] = {}
                for fp, machine, done in missing:
                    by_start.setdefault(done, []).append((fp, machine))
                for done, group in by_start.items():
                    cols: Dict[str, List[ScheduleResult]] = {
                        fp: [] for fp, _m in group
                    }
                    for trace in self.traces[done:]:
                        info = info_by_id[trace.loop_id]
                        for fp, machine in group:
                            cols[fp].append(
                                schedule_invocation(trace, info, machine)
                            )
                    for fp, _m in group:
                        self._schedules.setdefault(fp, []).extend(cols[fp])

    def _schedule_columns(
        self,
        traces: Sequence[CompactInvocationTrace],
        loops: Sequence[ParallelizedLoop],
        machines: Sequence[MachineConfig],
        jobs: Optional[int],
    ) -> List[List[ScheduleResult]]:
        """Batched schedule columns for ``traces``, sharded over a
        process pool when ``jobs`` and the trace count warrant it."""
        if (
            jobs is None
            or jobs <= 1
            or len(traces) < max(_SHARD_MIN_TRACES, 2 * jobs)
        ):
            return schedule_many(traces, loops, machines)
        timings = [
            _LoopTiming(
                loop_id=loop.loop_id,
                counted=loop.counted,
                helper_order=tuple(loop.helper_order),
            )
            for loop in loops
        ]
        chunk = (len(traces) + jobs - 1) // jobs
        grid = list(machines)
        tracer = get_tracer()
        columns: List[List[ScheduleResult]] = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(
                    _schedule_shard,
                    list(traces[lo : lo + chunk]),
                    timings[lo : lo + chunk],
                    grid,
                )
                for lo in range(0, len(traces), chunk)
            ]
            for future in futures:
                cols, spans, metrics = future.result()
                columns.extend(cols)
                if spans and getattr(tracer, "enabled", False):
                    tracer.absorb(spans)
                REGISTRY.merge(metrics)
        return columns

    def replay_many(
        self,
        machines: Sequence[MachineConfig],
        jobs: Optional[int] = None,
    ) -> List[ParallelRunResult]:
        """Recompute the timing under each machine in one batched pass.

        Equivalent to ``[self.replay(m) for m in machines]`` but fills
        every missing schedule column in one batched pass over the
        stored traces; the baseline machine's schedules are reused from
        the memo (seeded during execution) instead of being recomputed
        per swept machine.  ``jobs`` shards the scheduling pass across
        a process pool for big grids.

        The output list and trace list are identical and never mutated
        across the sweep, so all returned results share one instance of
        each rather than copying them once per machine.
        """
        if not self.record_traces:
            raise RuntimeFault("executor was created with record_traces=False")
        with get_tracer().span(
            "exec.replay_many", cat="exec", machines=len(machines)
        ):
            self._ensure_schedules([self.machine, *machines], jobs=jobs)
            baseline = self._schedules[self.machine.fingerprint()]
            shared_output = list(self.output)
            shared_traces: List[AnyTrace] = list(self.traces)
            results: List[ParallelRunResult] = []
            for machine in machines:
                news = self._schedules[machine.fingerprint()]
                adjusted = self.cycles
                loop_stats: Dict[LoopId, LoopRunStats] = {}
                for trace, old, new in zip(self.traces, baseline, news):
                    adjusted += new.parallel_cycles - old.parallel_cycles
                    stats = loop_stats.setdefault(
                        trace.loop_id, LoopRunStats(loop_id=trace.loop_id)
                    )
                    _accumulate(stats, trace, new)
                result = ExecutionResult(
                    output=shared_output,
                    cycles=adjusted,
                    instructions=self.instructions,
                )
                results.append(
                    ParallelRunResult(
                        result=result,
                        machine=machine,
                        loop_stats=loop_stats,
                        traces=shared_traces,
                    )
                )
        return results

    def schedules(
        self, machine: Optional[MachineConfig] = None
    ) -> List[ScheduleResult]:
        """The per-invocation schedule column for ``machine`` (default:
        the executing machine), aligned with :attr:`traces`.

        Memoized by machine fingerprint like :meth:`replay_many`; the
        executing machine's column was seeded during :meth:`run`, so
        asking for it never reschedules anything.
        """
        if machine is None:
            machine = self.machine
        self._ensure_schedules([machine])
        return self._schedules[machine.fingerprint()]

    def replay(self, machine: MachineConfig) -> ParallelRunResult:
        """Recompute the timing under a different machine from the stored
        traces, without re-interpreting the program.

        Valid for changes to core count, prefetch mode and latencies (the
        functional trace is machine-independent); the instruction cost
        model must stay the same.
        """
        return self.replay_many([machine])[0]


def _accumulate(
    stats: LoopRunStats, trace: AnyTrace, schedule: ScheduleResult
) -> None:
    stats.invocations += 1
    stats.iterations += trace.iteration_count
    stats.sequential_cycles += schedule.sequential_cycles
    stats.parallel_cycles += schedule.parallel_cycles
    stats.signals += schedule.signals
    stats.waits += schedule.waits
    stats.wait_stall_cycles += schedule.wait_stall_cycles
    stats.transfer_words += schedule.transfer_words
    stats.loads += trace.loads
    stats.segment_cycles += schedule.segment_cycles


def run_parallel(
    module: Module,
    infos: Sequence[ParallelizedLoop],
    machine: Optional[MachineConfig] = None,
    record_traces: bool = True,
    backend: str = "auto",
    block_profile: Optional[Dict[Tuple[str, str], int]] = None,
    codegen_cache=None,
) -> ParallelRunResult:
    """Convenience wrapper: execute a transformed module."""
    executor = ParallelExecutor(
        module, infos, machine, record_traces=record_traces, backend=backend,
        block_profile=block_profile, codegen_cache=codegen_cache,
    )
    return executor.execute()
