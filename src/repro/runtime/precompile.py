"""Pre-decoded, closure-compiled interpreter backend.

The tree-walking :class:`~repro.runtime.interpreter.Interpreter` pays, on
every dynamic instruction, for opcode dispatch (a long ``if``/``elif``
chain), operand classification (``isinstance`` on every operand), register
access (a ``dict`` keyed by VReg uid) and a cost-model lookup.  None of
that work depends on runtime values, so this module hoists all of it to a
once-per-:class:`~repro.ir.Function` *decode* step:

* **Slot allocation** -- every VReg uid used by the function is assigned a
  dense index into a per-activation ``list`` (:class:`DecodedFrame`),
  replacing the ``Dict[int, object]`` register file.
* **Closure compilation** -- each instruction becomes one Python closure
  with its operands pre-resolved: constants and cost-model cycles are
  baked in as default arguments, binary handlers are bound directly, and
  global ``Symbol`` regions are resolved to their backing lists ahead of
  execution (possible because the interpreter resets global memory in
  place).
* **Terminator fusion** -- a block's terminator becomes a closure that
  returns the successor :class:`DecodedBlock` directly (or ``None`` for
  RET), so block execution is a tight ``for eff in effects: eff(frame)``
  loop plus a single successor decision.
* **Segmented accounting** -- cycle and instruction counts are charged per
  maximal *segment* (a run of instructions with no observation point in
  between) instead of per instruction.  Segments end after every CALL --
  the callee's own accounting must start from an exact count -- and, in
  the hooked variant, after every instruction whose hook reads
  ``interp.cycles``.  When the instruction budget could expire inside a
  segment, execution falls back to an exact per-instruction loop so
  :class:`~repro.runtime.interpreter.ExecutionLimitExceeded` fires at
  precisely the same dynamic instruction, with the same partial output,
  as the tree-walker.

Two variants are decoded on demand:

* the **fast** variant (no listeners, no subclass hooks) runs no hook
  code at all -- this is the uninstrumented oracle path;
* the **hooked** variant additionally calls ``on_block_entry`` on every
  block transition, routes WAIT/SIGNAL/NEXT_ITER through ``exec_sync``
  and XFER through ``exec_xfer`` (with the original
  :class:`~repro.ir.Instruction`), and counts memory reads when
  ``count_loads`` is set -- everything the profiler and the parallel
  executor need.

Semantics, cycle/instruction accounting and ``RuntimeFault`` diagnostics
are bit-identical to the tree-walker; ``tests/test_backend_differential``
enforces this over the whole example + benchmark corpus.  The only
tolerated divergence: after a *non-limit* ``RuntimeFault`` aborts a run
mid-segment, the dead interpreter's counters may include instructions
from the faulting segment that never executed (no result object is
produced on a fault, so nothing observable depends on them).

This module is also the substrate of the **third tier**, the
superblock-fused code-generated backend in
:mod:`repro.runtime.codegen`: tier 3 reuses this decoder's slot
allocation (:attr:`DecodedFunction.slot_map`) and decoded blocks, and
its exactness fallback resumes tier-2 execution mid-activation through
:func:`finish_decoded` whenever the instruction budget could expire
inside a fused region.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.ir import BasicBlock, Function, Instruction, Opcode
from repro.ir.operands import Const, Symbol, VReg
from repro.ir.types import Type
from repro.runtime.interpreter import (
    _BINARY_HANDLERS,
    ExecutionLimitExceeded,
    Pointer,
    RuntimeFault,
    format_value,
    wrap_int,
)

_INF = float("inf")


class _Undefined:
    """Sentinel filling unwritten register slots."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<undef>"


_UNDEF = _Undefined()


def _undef(operand: VReg, func_name: str) -> None:
    """Raise the tree-walker's undefined-register fault."""
    raise RuntimeFault(f"use of undefined register {operand} in {func_name}")


class DecodedFrame:
    """One activation of a decoded function: slot-file + local arrays."""

    __slots__ = ("func", "slots", "local_mem", "ret")

    def __init__(self, func: Function, nslots: int) -> None:
        self.func = func
        self.slots: List[object] = [_UNDEF] * nslots
        self.local_mem: Dict[str, List] = {}
        self.ret: object = None

    def local_region(self, symbol: Symbol) -> List:
        store = self.local_mem.get(symbol.name)
        if store is None:
            zero = 0.0 if symbol.elem_type is Type.FLOAT else 0
            store = [zero] * symbol.size
            self.local_mem[symbol.name] = store
        return store


#: One charging segment: (total cycles, instruction count, per-op cycles,
#: per-op effects).  The per-op arrays drive the exact slow path.
Segment = Tuple[int, int, Tuple[int, ...], Tuple[Callable, ...]]


class DecodedBlock:
    """A basic block lowered to effect closures plus a fused terminator."""

    __slots__ = ("block", "segments", "term", "term_cycles")

    def __init__(self, block: BasicBlock) -> None:
        self.block = block
        self.segments: Tuple[Segment, ...] = ()
        #: Returns the successor DecodedBlock, or None after setting
        #: ``frame.ret`` (RET).  ``None`` when the block never terminates.
        self.term: Optional[Callable[[DecodedFrame], Optional["DecodedBlock"]]] = None
        self.term_cycles = 0


class DecodedFunction:
    """All blocks of one function, decoded against one interpreter."""

    __slots__ = ("func", "nslots", "param_slots", "entry", "blocks", "slot_map")

    def __init__(
        self,
        func: Function,
        nslots: int,
        param_slots: Tuple[int, ...],
        entry: DecodedBlock,
        blocks: Dict[str, DecodedBlock],
        slot_map: Dict[int, int],
    ) -> None:
        self.func = func
        self.nslots = nslots
        self.param_slots = param_slots
        self.entry = entry
        self.blocks = blocks
        #: VReg uid -> slot index.  The superblock backend
        #: (:mod:`repro.runtime.codegen`) generates code over the same
        #: slot file so its exactness fallback can resume mid-activation
        #: on the same :class:`DecodedFrame`.
        self.slot_map = slot_map


# -- operand resolution -----------------------------------------------------

#: Resolution of one operand at decode time:
#: ("c", value, None) constant / ("s", slot, vreg) register /
#: ("g", getter, None) anything needing a per-frame closure.
_Resolved = Tuple[str, object, Optional[VReg]]


def _symbol_getter(symbol: Symbol, interp) -> Callable:
    """Getter for a Symbol operand decaying to a Pointer (as in
    ``Interpreter.eval_operand``)."""
    if symbol.is_global:
        store = interp.memory.get(symbol.name)
        if store is None:
            # Unknown global: fault at first use, like the tree-walker.
            def getter(frame, _i=interp, _sym=symbol):
                return Pointer(_i.region_of(_sym, frame), 0, _sym.name)

            return getter
        # Global regions are reset in place, so the backing list is
        # stable across runs and the Pointer can be built once.
        pointer = Pointer(store, 0, symbol.name)
        return lambda frame, _p=pointer: _p

    def getter(frame, _sym=symbol):
        return Pointer(frame.local_region(_sym), 0, _sym.name)

    return getter


def _store_getter(symbol: Symbol, interp) -> Callable:
    """Getter for the backing list of a LEA/LOADG/STOREG symbol."""
    if symbol.is_global:
        store = interp.memory.get(symbol.name)
        if store is None:
            def getter(frame, _i=interp, _sym=symbol):
                return _i.region_of(_sym, frame)

            return getter
        return lambda frame, _s=store: _s
    return lambda frame, _sym=symbol: frame.local_region(_sym)


def allocate_slots(func: Function) -> Dict[int, int]:
    """Deterministic VReg uid -> dense frame-slot index map for ``func``.

    Parameters first, then destinations and arguments in block order --
    the same allocation for every decode variant and for the codegen
    tier, so tier-3 generated code and tier-2 fallback blocks always
    agree on the slot file layout (and so the map can be recomputed from
    the IR alone when a cached codegen artifact is instantiated).
    """
    slot_map: Dict[int, int] = {}

    def slot(reg: VReg) -> None:
        if reg.uid not in slot_map:
            slot_map[reg.uid] = len(slot_map)

    for param in func.params:
        slot(param)
    for block in func.blocks.values():
        for instr in block.instructions:
            if instr.dest is not None:
                slot(instr.dest)
            for arg in instr.args:
                if isinstance(arg, VReg):
                    slot(arg)
    return slot_map


class _FunctionDecoder:
    """Decodes one Function against one interpreter instance."""

    def __init__(
        self,
        interp,
        func: Function,
        hooked: bool,
        count_loads: Optional[bool] = None,
    ) -> None:
        self.interp = interp
        self.func = func
        self.hooked = hooked
        # Pinned at decode time (callers cache per flag value) so a later
        # toggle of ``interp.count_loads`` can never skew a cached decode.
        self.count_loads = (
            interp.count_loads if count_loads is None else count_loads
        )
        self.fname = func.name
        self.slot_map: Dict[int, int] = allocate_slots(func)

    # -- slot allocation ----------------------------------------------------

    def _slot(self, reg: VReg) -> int:
        return self.slot_map[reg.uid]

    # -- operand helpers ----------------------------------------------------

    def resolve(self, operand) -> _Resolved:
        if isinstance(operand, Const):
            return ("c", operand.value, None)
        if isinstance(operand, VReg):
            return ("s", self.slot_map[operand.uid], operand)
        return ("g", _symbol_getter(operand, self.interp), None)

    def getter(self, operand) -> Callable:
        """A generic ``getter(frame) -> value`` for any operand."""
        kind, payload, reg = self.resolve(operand)
        if kind == "c":
            return lambda frame, _v=payload: _v
        if kind == "g":
            return payload

        def get(frame, _i=payload, _r=reg, _fn=self.fname):
            v = frame.slots[_i]
            if v is _UNDEF:
                _undef(_r, _fn)
            return v

        return get

    # -- effect factories ---------------------------------------------------

    def _binary(self, instr: Instruction, handler) -> Callable:
        dst = self._slot(instr.dest)
        ra = self.resolve(instr.args[0])
        rb = self.resolve(instr.args[1])
        fn = self.fname
        if ra[0] == "s" and rb[0] == "s":
            def eff(frame, _d=dst, _a=ra[1], _b=rb[1], _h=handler,
                    _ra=ra[2], _rb=rb[2], _fn=fn):
                s = frame.slots
                a = s[_a]
                if a is _UNDEF:
                    _undef(_ra, _fn)
                b = s[_b]
                if b is _UNDEF:
                    _undef(_rb, _fn)
                s[_d] = _h(a, b)
            return eff
        if ra[0] == "s" and rb[0] == "c":
            def eff(frame, _d=dst, _a=ra[1], _bv=rb[1], _h=handler,
                    _ra=ra[2], _fn=fn):
                s = frame.slots
                a = s[_a]
                if a is _UNDEF:
                    _undef(_ra, _fn)
                s[_d] = _h(a, _bv)
            return eff
        if ra[0] == "c" and rb[0] == "s":
            def eff(frame, _d=dst, _av=ra[1], _b=rb[1], _h=handler,
                    _rb=rb[2], _fn=fn):
                s = frame.slots
                b = s[_b]
                if b is _UNDEF:
                    _undef(_rb, _fn)
                s[_d] = _h(_av, b)
            return eff
        ga = self.getter(instr.args[0])
        gb = self.getter(instr.args[1])

        def eff(frame, _d=dst, _ga=ga, _gb=gb, _h=handler):
            frame.slots[_d] = _h(_ga(frame), _gb(frame))

        return eff

    def _mov(self, instr: Instruction) -> Callable:
        dst = self._slot(instr.dest)
        kind, payload, reg = self.resolve(instr.args[0])
        if kind == "s":
            def eff(frame, _d=dst, _a=payload, _r=reg, _fn=self.fname):
                s = frame.slots
                v = s[_a]
                if v is _UNDEF:
                    _undef(_r, _fn)
                s[_d] = v
            return eff
        if kind == "c":
            def eff(frame, _d=dst, _v=payload):
                frame.slots[_d] = _v
            return eff

        def eff(frame, _d=dst, _g=payload):
            frame.slots[_d] = _g(frame)

        return eff

    def _unary(self, instr: Instruction, fn) -> Callable:
        dst = self._slot(instr.dest)
        kind, payload, reg = self.resolve(instr.args[0])
        if kind == "s":
            def eff(frame, _d=dst, _a=payload, _u=fn, _r=reg, _fn=self.fname):
                s = frame.slots
                v = s[_a]
                if v is _UNDEF:
                    _undef(_r, _fn)
                s[_d] = _u(v)
            return eff
        getter = self.getter(instr.args[0])

        def eff(frame, _d=dst, _g=getter, _u=fn):
            frame.slots[_d] = _u(_g(frame))

        return eff

    def _lea(self, instr: Instruction) -> Callable:
        dst = self._slot(instr.dest)
        symbol = instr.args[0]
        name = symbol.name
        kind, payload, reg = self.resolve(instr.args[1])
        store = None
        if symbol.is_global:
            store = self.interp.memory.get(symbol.name)
        if store is not None:
            if kind == "s":
                def eff(frame, _d=dst, _ii=payload, _st=store, _n=name,
                        _r=reg, _fn=self.fname):
                    s = frame.slots
                    i = s[_ii]
                    if i is _UNDEF:
                        _undef(_r, _fn)
                    s[_d] = Pointer(_st, i, _n)
                return eff
            if kind == "c":
                pointer = Pointer(store, payload, name)

                def eff(frame, _d=dst, _p=pointer):
                    frame.slots[_d] = _p
                return eff
        sg = _store_getter(symbol, self.interp)
        gi = self.getter(instr.args[1])

        def eff(frame, _d=dst, _sg=sg, _gi=gi, _n=name):
            frame.slots[_d] = Pointer(_sg(frame), _gi(frame), _n)

        return eff

    def _ptradd(self, instr: Instruction) -> Callable:
        dst = self._slot(instr.dest)
        gp = self.getter(instr.args[0])
        kind, payload, reg = self.resolve(instr.args[1])
        if kind == "s":
            def eff(frame, _d=dst, _gp=gp, _id=payload, _r=reg,
                    _fn=self.fname):
                s = frame.slots
                p = _gp(frame)
                d = s[_id]
                if d is _UNDEF:
                    _undef(_r, _fn)
                if not isinstance(p, Pointer):
                    raise RuntimeFault(f"PTRADD on non-pointer {p!r}")
                s[_d] = Pointer(p.store, p.base + d, p.region)
            return eff
        gd = self.getter(instr.args[1])

        def eff(frame, _d=dst, _gp=gp, _gd=gd):
            p = _gp(frame)
            d = _gd(frame)
            if not isinstance(p, Pointer):
                raise RuntimeFault(f"PTRADD on non-pointer {p!r}")
            frame.slots[_d] = Pointer(p.store, p.base + d, p.region)

        return eff

    def _loadg(self, instr: Instruction) -> Callable:
        dst = self._slot(instr.dest)
        symbol = instr.args[0]
        name = symbol.name
        kind, payload, reg = self.resolve(instr.args[1])
        store = None
        if symbol.is_global:
            store = self.interp.memory.get(symbol.name)
        if store is not None and kind == "s":
            def eff(frame, _d=dst, _ii=payload, _st=store, _n=name,
                    _r=reg, _fn=self.fname):
                s = frame.slots
                i = s[_ii]
                if i is _UNDEF:
                    _undef(_r, _fn)
                if i < 0 or i >= len(_st):
                    raise RuntimeFault(
                        f"load out of bounds: {_n}[{i}] (size {len(_st)})"
                    )
                s[_d] = _st[i]
            return eff
        sg = _store_getter(symbol, self.interp)
        gi = self.getter(instr.args[1])

        def eff(frame, _d=dst, _sg=sg, _gi=gi, _n=name):
            st = _sg(frame)
            i = _gi(frame)
            if i < 0 or i >= len(st):
                raise RuntimeFault(
                    f"load out of bounds: {_n}[{i}] (size {len(st)})"
                )
            frame.slots[_d] = st[i]

        return eff

    def _storeg(self, instr: Instruction) -> Callable:
        symbol = instr.args[0]
        name = symbol.name
        ri = self.resolve(instr.args[1])
        rv = self.resolve(instr.args[2])
        store = None
        if symbol.is_global:
            store = self.interp.memory.get(symbol.name)
        if store is not None and ri[0] == "s" and rv[0] == "s":
            def eff(frame, _ii=ri[1], _iv=rv[1], _st=store, _n=name,
                    _ri=ri[2], _rv=rv[2], _fn=self.fname):
                s = frame.slots
                i = s[_ii]
                if i is _UNDEF:
                    _undef(_ri, _fn)
                v = s[_iv]
                if v is _UNDEF:
                    _undef(_rv, _fn)
                if i < 0 or i >= len(_st):
                    raise RuntimeFault(
                        f"store out of bounds: {_n}[{i}] (size {len(_st)})"
                    )
                _st[i] = v
            return eff
        sg = _store_getter(symbol, self.interp)
        gi = self.getter(instr.args[1])
        gv = self.getter(instr.args[2])

        def eff(frame, _sg=sg, _gi=gi, _gv=gv, _n=name):
            i = _gi(frame)
            v = _gv(frame)
            st = _sg(frame)
            if i < 0 or i >= len(st):
                raise RuntimeFault(
                    f"store out of bounds: {_n}[{i}] (size {len(st)})"
                )
            st[i] = v

        return eff

    def _loadp(self, instr: Instruction) -> Callable:
        dst = self._slot(instr.dest)
        gp = self.getter(instr.args[0])
        gi = self.getter(instr.args[1])

        def eff(frame, _d=dst, _gp=gp, _gi=gi):
            p = _gp(frame)
            i = _gi(frame)
            if not isinstance(p, Pointer):
                raise RuntimeFault(f"LOADP on non-pointer {p!r}")
            st = p.store
            j = p.base + i
            if j < 0 or j >= len(st):
                raise RuntimeFault(
                    f"load out of bounds: {p.region}[{j}] (size {len(st)})"
                )
            frame.slots[_d] = st[j]

        return eff

    def _storep(self, instr: Instruction) -> Callable:
        gp = self.getter(instr.args[0])
        gi = self.getter(instr.args[1])
        gv = self.getter(instr.args[2])

        def eff(frame, _gp=gp, _gi=gi, _gv=gv):
            p = _gp(frame)
            i = _gi(frame)
            v = _gv(frame)
            if not isinstance(p, Pointer):
                raise RuntimeFault(f"STOREP on non-pointer {p!r}")
            st = p.store
            j = p.base + i
            if j < 0 or j >= len(st):
                raise RuntimeFault(
                    f"store out of bounds: {p.region}[{j}] (size {len(st)})"
                )
            st[j] = v

        return eff

    def _call(self, instr: Instruction) -> Callable:
        interp = self.interp
        getters = tuple(self.getter(a) for a in instr.args)
        dst = self._slot(instr.dest) if instr.dest is not None else None
        callee = interp.module.functions.get(instr.callee)
        if callee is None:
            # Unknown callee: fault (KeyError) at execution time, after
            # the arguments are evaluated -- exactly like the tree-walker.
            def eff(frame, _i=interp, _n=instr.callee, _gs=getters, _d=dst):
                args = [g(frame) for g in _gs]
                value = _i.call_function(_i.module.functions[_n], args)
                if _d is not None:
                    frame.slots[_d] = value
            return eff

        def eff(frame, _i=interp, _f=callee, _gs=getters, _d=dst):
            args = [g(frame) for g in _gs]
            value = _i.call_function(_f, args)
            if _d is not None:
                frame.slots[_d] = value

        return eff

    def _print(self, instr: Instruction) -> Callable:
        interp = self.interp
        getter = self.getter(instr.args[0])

        def eff(frame, _i=interp, _g=getter):
            _i.output.append(format_value(_g(frame)))

        return eff

    @staticmethod
    def _nop(frame) -> None:
        return None

    def _effect(self, instr: Instruction) -> Callable:
        opcode = instr.opcode
        if opcode is Opcode.MOV:
            return self._mov(instr)
        handler = _BINARY_HANDLERS.get(opcode)
        if handler is not None:
            return self._binary(instr, handler)
        if opcode is Opcode.NEG:
            return self._unary(instr, _neg)
        if opcode is Opcode.NOT:
            return self._unary(instr, _not)
        if opcode is Opcode.ITOF:
            return self._unary(instr, float)
        if opcode is Opcode.FTOI:
            return self._unary(instr, _ftoi)
        if opcode is Opcode.LEA:
            return self._lea(instr)
        if opcode is Opcode.PTRADD:
            return self._ptradd(instr)
        if opcode is Opcode.LOADG:
            return self._wrap_load(self._loadg(instr))
        if opcode is Opcode.STOREG:
            return self._storeg(instr)
        if opcode is Opcode.LOADP:
            return self._wrap_load(self._loadp(instr))
        if opcode is Opcode.STOREP:
            return self._storep(instr)
        if opcode is Opcode.CALL:
            return self._call(instr)
        if opcode is Opcode.PRINT:
            return self._print(instr)
        if opcode in (Opcode.WAIT, Opcode.SIGNAL, Opcode.NEXT_ITER):
            if not self.hooked:
                return self._nop

            def eff(frame, _i=self.interp, _instr=instr):
                _i.exec_sync(frame, _instr)
            return eff
        if opcode is Opcode.XFER:
            if not self.hooked:
                return self._nop

            def eff(frame, _i=self.interp, _instr=instr):
                _i.exec_xfer(frame, _instr)
            return eff

        # Verifier-rejected shapes: fault at execution, like the walker.
        def eff(frame, _op=opcode):  # pragma: no cover - defensive
            raise RuntimeFault(f"cannot execute opcode {_op}")

        return eff

    def _wrap_load(self, eff: Callable) -> Callable:
        """Count memory reads for the parallel executor (hooked only)."""
        if not (self.hooked and self.count_loads):
            return eff

        def counting(frame, _i=self.interp, _e=eff):
            _i.load_count += 1
            _e(frame)

        return counting

    # -- terminators --------------------------------------------------------

    def _terminator(
        self, instr: Instruction, blocks: Dict[str, DecodedBlock]
    ) -> Callable:
        opcode = instr.opcode
        if opcode is Opcode.RET:
            if instr.args:
                getter = self.getter(instr.args[0])

                def term(frame, _g=getter):
                    frame.ret = _g(frame)
                    return None
                return term

            def term(frame):
                frame.ret = None
                return None
            return term

        targets = [blocks.get(name) for name in instr.targets]
        if any(t is None for t in targets):
            # Dangling branch target: KeyError at execution time, matching
            # the tree-walker's ``func.blocks[name]`` lookup.
            func_blocks = self.func.blocks

            def term(frame, _i=instr, _bs=blocks, _fb=func_blocks):
                cond = True
                if _i.opcode is Opcode.CBR:
                    cond = self.getter(_i.args[0])(frame) != 0
                name = _i.targets[0] if cond else _i.targets[1]
                _fb[name]  # raises KeyError for unknown targets
                return _bs[name]
            return term

        if opcode is Opcode.BR:
            return lambda frame, _t=targets[0]: _t

        # CBR
        kind, payload, reg = self.resolve(instr.args[0])
        if kind == "s":
            def term(frame, _ic=payload, _r=reg, _fn=self.fname,
                     _t1=targets[0], _t2=targets[1]):
                c = frame.slots[_ic]
                if c is _UNDEF:
                    _undef(_r, _fn)
                return _t1 if c != 0 else _t2
            return term
        getter = self.getter(instr.args[0])

        def term(frame, _g=getter, _t1=targets[0], _t2=targets[1]):
            return _t1 if _g(frame) != 0 else _t2

        return term

    # -- block / function assembly ------------------------------------------

    def decode(self) -> DecodedFunction:
        blocks = {
            name: DecodedBlock(block)
            for name, block in self.func.blocks.items()
        }
        cost_model = self.interp.cost_model
        # Segment boundaries: observation points whose hooks (or callee
        # accounting) must see exact cycle/instruction counts.
        split_after = {Opcode.CALL}
        if self.hooked:
            split_after |= {
                Opcode.WAIT, Opcode.SIGNAL, Opcode.NEXT_ITER, Opcode.XFER
            }

        for name, dblock in blocks.items():
            block = self.func.blocks[name]
            segments: List[Segment] = []
            cycles: List[int] = []
            effects: List[Callable] = []

            def flush() -> None:
                if effects:
                    segments.append(
                        (sum(cycles), len(effects), tuple(cycles),
                         tuple(effects))
                    )
                    cycles.clear()
                    effects.clear()

            for instr in block.instructions:
                if instr.is_terminator:
                    dblock.term_cycles = cost_model.cycles(
                        instr.opcode,
                        instr.dest is not None
                        and instr.dest.type is Type.FLOAT,
                    )
                    dblock.term = self._terminator(instr, blocks)
                    break
                is_float = (
                    instr.dest is not None
                    and instr.dest.type is Type.FLOAT
                )
                cycles.append(cost_model.cycles(instr.opcode, is_float))
                effects.append(self._effect(instr))
                if instr.opcode in split_after:
                    flush()
            flush()
            dblock.segments = tuple(segments)

        entry = blocks[self.func.entry.name]
        param_slots = tuple(
            self.slot_map[param.uid] for param in self.func.params
        )
        return DecodedFunction(
            self.func, len(self.slot_map), param_slots, entry, blocks,
            self.slot_map,
        )


def _neg(a):
    return wrap_int(-a) if isinstance(a, int) else -a


def _not(a):
    return 1 if a == 0 else 0


def _ftoi(a):
    return wrap_int(int(a))


def decode_function(
    interp,
    func: Function,
    hooked: bool,
    count_loads: Optional[bool] = None,
) -> DecodedFunction:
    """Decode ``func`` once against ``interp`` (one variant)."""
    return _FunctionDecoder(interp, func, hooked, count_loads).decode()


# -- execution ---------------------------------------------------------------


def execute_decoded(interp, dfunc: DecodedFunction, frame: DecodedFrame,
                    hooked: bool) -> object:
    """Run one activation of a decoded function to its RET."""
    limit = interp.max_instructions
    if limit is None:
        limit = _INF
    if not hooked:
        finish_decoded(interp, frame, dfunc.entry, 0, limit)
        return frame.ret
    interp.on_block_entry(frame, None, dfunc.entry.block)
    finish_hooked(interp, frame, dfunc.entry, 0, limit)
    return frame.ret


def finish_hooked(interp, frame: DecodedFrame, dblock: DecodedBlock,
                  seg_index: int = 0, limit: Optional[float] = None) -> None:
    """Run the rest of a *hooked-variant* activation exactly, to its RET.

    The hooked sibling of :func:`finish_decoded`: starts at ``dblock``'s
    ``seg_index``-th segment *without* re-calling ``on_block_entry`` for
    the current block (the caller -- :func:`execute_decoded` at an
    activation entry, or the hooked superblock tier mid-chain -- has
    already announced it), then calls ``on_block_entry`` at every
    subsequent block transition exactly as the tree-walker does.  The
    hooked superblock backend (:mod:`repro.runtime.codegen`) diverts
    here when the instruction budget could expire inside a fused region;
    hooked tier-2 segments split after every CALL and sync/xfer opcode,
    so the generated code's anchors align with ``seg_index``.
    """
    if limit is None:
        limit = _INF
    db = dblock
    segments = db.segments[seg_index:] if seg_index else db.segments
    while True:
        for total, count, op_cycles, effects in segments:
            n = interp.instructions + count
            if n <= limit:
                interp.instructions = n
                interp.cycles += total
                for eff in effects:
                    eff(frame)
            else:
                _run_segment_exact(interp, frame, op_cycles, effects, limit)
        term = db.term
        if term is None:
            raise RuntimeFault(
                f"block {db.block.name} fell through without terminator"
            )
        interp.cycles += db.term_cycles
        n = interp.instructions + 1
        interp.instructions = n
        if n > limit:
            raise ExecutionLimitExceeded(
                f"exceeded {interp.max_instructions} instructions"
            )
        nxt = term(frame)
        if nxt is None:
            return
        interp.on_block_entry(frame, db.block, nxt.block)
        db = nxt
        segments = db.segments


def finish_decoded(interp, frame: DecodedFrame, dblock: DecodedBlock,
                   seg_index: int = 0, limit: Optional[float] = None) -> None:
    """Run the rest of a *fast-variant* activation exactly, to its RET.

    Starts at ``dblock``'s ``seg_index``-th segment and follows
    terminators through successor blocks until the activation completes
    (``frame.ret`` is set) or faults.  This is both the fast variant of
    :func:`execute_decoded` (entry block, segment 0) and the exactness
    fallback of the superblock backend (:mod:`repro.runtime.codegen`):
    when the instruction budget could expire inside a fused region, the
    generated code diverts here at a segment boundary -- tier-2 segments
    split after every CALL, so the boundaries of both backends align --
    and the per-instruction slow path fires the limit at precisely the
    same dynamic instruction as the tree-walker.
    """
    if limit is None:
        limit = _INF
    db = dblock
    segments = db.segments[seg_index:] if seg_index else db.segments
    while True:
        for total, count, op_cycles, effects in segments:
            n = interp.instructions + count
            if n <= limit:
                interp.instructions = n
                interp.cycles += total
                for eff in effects:
                    eff(frame)
            else:
                _run_segment_exact(interp, frame, op_cycles, effects, limit)
        term = db.term
        if term is None:
            raise RuntimeFault(
                f"block {db.block.name} fell through without terminator"
            )
        interp.cycles += db.term_cycles
        n = interp.instructions + 1
        interp.instructions = n
        if n > limit:
            raise ExecutionLimitExceeded(
                f"exceeded {interp.max_instructions} instructions"
            )
        nxt = term(frame)
        if nxt is None:
            return
        db = nxt
        segments = db.segments


def _run_segment_exact(interp, frame, op_cycles, effects, limit) -> None:
    """Per-instruction fallback when the budget expires inside a segment:
    charges and faults at exactly the same instruction as the walker."""
    for c, eff in zip(op_cycles, effects):
        interp.cycles += c
        n = interp.instructions + 1
        interp.instructions = n
        if n > limit:
            raise ExecutionLimitExceeded(
                f"exceeded {interp.max_instructions} instructions"
            )
        eff(frame)
