"""Profiling runs (training inputs) feeding the loop-selection heuristic.

The profiler interprets the program once and collects what Section 2.2
needs:

* per-loop invocation and iteration counts (``Invoc_i``, and the iteration
  count that prices control signals ``C-Sig_i``);
* per-loop inclusive and self cycle counts (the ``T`` attribute of the
  selection algorithm derives from these);
* per-block execution counts (used to weight sequential-segment
  instructions when computing ``P_i``);
* average inclusive cycles per function call (to price CALL instructions
  inside loops);
* the dynamic loop nesting graph (profiled subgraph of the static one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.loopnest import (
    DynamicLoopNestGraph,
    LoopId,
    StaticLoopNestGraph,
    build_static_loop_nest_graph,
)
from repro.analysis.loops import Loop
from repro.ir import Instruction, Module, Opcode
from repro.ir.types import Type
from repro.runtime.interpreter import ExecutionResult, Interpreter
from repro.runtime.machine import MachineConfig


@dataclass
class LoopProfile:
    """Dynamic statistics of one loop."""

    loop_id: LoopId
    invocations: int = 0
    iterations: int = 0
    #: Cycles while the loop was active anywhere on the loop stack
    #: (includes subloops and callees).
    total_cycles: int = 0
    #: Cycles while the loop was the innermost active loop.
    self_cycles: int = 0

    @property
    def iterations_per_invocation(self) -> float:
        if self.invocations == 0:
            return 0.0
        return self.iterations / self.invocations

    def to_dict(self) -> dict:
        return {
            "loop_id": list(self.loop_id),
            "invocations": self.invocations,
            "iterations": self.iterations,
            "total_cycles": self.total_cycles,
            "self_cycles": self.self_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoopProfile":
        data = dict(data)
        data["loop_id"] = tuple(data["loop_id"])
        return cls(**data)


@dataclass
class ProfileData:
    """Everything collected by one profiling run."""

    module: Module
    result: ExecutionResult
    loops: Dict[LoopId, LoopProfile] = field(default_factory=dict)
    block_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    func_inclusive_cycles: Dict[str, int] = field(default_factory=dict)
    func_activations: Dict[str, int] = field(default_factory=dict)
    dynamic_nesting: DynamicLoopNestGraph = field(
        default_factory=DynamicLoopNestGraph
    )

    @property
    def total_cycles(self) -> int:
        return self.result.cycles

    def loop(self, loop_id: LoopId) -> LoopProfile:
        return self.loops.get(loop_id, LoopProfile(loop_id))

    def block_count(self, func_name: str, block_name: str) -> int:
        return self.block_counts.get((func_name, block_name), 0)

    def call_avg_cycles(self, func_name: str) -> float:
        """Average inclusive cycles of one activation of ``func_name``."""
        count = self.func_activations.get(func_name, 0)
        if count == 0:
            return 0.0
        return self.func_inclusive_cycles.get(func_name, 0) / count

    def instruction_cost(
        self, machine: MachineConfig, func_name: str, instr: Instruction
    ) -> float:
        """Expected dynamic cost of one execution of ``instr``.

        CALLs are priced at the callee's profiled average inclusive time;
        everything else uses the machine cost model.
        """
        if instr.opcode is Opcode.CALL and instr.callee is not None:
            inner = self.call_avg_cycles(instr.callee)
            return machine.cost_model.cycles(Opcode.CALL) + inner
        is_float = instr.dest is not None and instr.dest.type is Type.FLOAT
        return machine.cost_model.cycles(instr.opcode, is_float)

    def to_dict(self) -> dict:
        """JSON-stable representation, *excluding* the profiled module.

        The module is large and reproducible from the benchmark source;
        :meth:`from_dict` takes it back as an argument so a disk cache
        only needs to store the dynamic statistics.
        """
        return {
            "result": self.result.to_dict(),
            "loops": [p.to_dict() for _, p in sorted(self.loops.items())],
            "block_counts": [
                [func, block, count]
                for (func, block), count in sorted(self.block_counts.items())
            ],
            "func_inclusive_cycles": dict(self.func_inclusive_cycles),
            "func_activations": dict(self.func_activations),
            "dynamic_nesting": self.dynamic_nesting.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict, module: Module) -> "ProfileData":
        loops = [LoopProfile.from_dict(p) for p in data["loops"]]
        return cls(
            module=module,
            result=ExecutionResult.from_dict(data["result"]),
            loops={p.loop_id: p for p in loops},
            block_counts={
                (func, block): count
                for func, block, count in data["block_counts"]
            },
            func_inclusive_cycles=dict(data["func_inclusive_cycles"]),
            func_activations=dict(data["func_activations"]),
            dynamic_nesting=DynamicLoopNestGraph.from_dict(
                data["dynamic_nesting"]
            ),
        )


class _ProfilingHarness:
    """Wires interpreter hooks to the profile accumulators."""

    def __init__(self, nest: StaticLoopNestGraph, data: ProfileData) -> None:
        self.nest = nest
        self.data = data
        #: Stack of (activation id, Loop) for every active loop, across
        #: function activations.
        self.loop_stack: List[Tuple[int, Loop]] = []
        self.activation_stack: List[int] = [0]
        self.next_activation = 1
        self.last_cycles = 0
        #: func name -> (active count, cycles at first entry).
        self.recursion: Dict[str, Tuple[int, int]] = {}

    # -- time attribution --------------------------------------------------

    def _sync(self, cycles: int) -> None:
        delta = cycles - self.last_cycles
        if delta and self.loop_stack:
            for _aid, loop in self.loop_stack:
                self._profile(loop).total_cycles += delta
            self._profile(self.loop_stack[-1][1]).self_cycles += delta
        self.last_cycles = cycles

    def _profile(self, loop: Loop) -> LoopProfile:
        profile = self.data.loops.get(loop.id)
        if profile is None:
            profile = LoopProfile(loop.id)
            self.data.loops[loop.id] = profile
        return profile

    # -- listeners ------------------------------------------------------------

    def on_block(
        self, func_name: str, prev: Optional[str], block: str, cycles: int
    ) -> None:
        self._sync(cycles)
        key = (func_name, block)
        self.data.block_counts[key] = self.data.block_counts.get(key, 0) + 1

        forest = self.nest.forests.get(func_name)
        if forest is None:
            return
        activation = self.activation_stack[-1]

        # Pop loops of this activation that no longer contain the block.
        while self.loop_stack:
            aid, top = self.loop_stack[-1]
            if aid != activation or block in top.blocks:
                break
            self.loop_stack.pop()

        loop = forest.by_header.get(block)
        if loop is None:
            return
        if self.loop_stack:
            aid, top = self.loop_stack[-1]
            if aid == activation and top is loop:
                # Back edge: a new iteration of the active loop.
                self._profile(loop).iterations += 1
                return
        parent = self.loop_stack[-1][1].id if self.loop_stack else None
        self.loop_stack.append((activation, loop))
        profile = self._profile(loop)
        profile.invocations += 1
        profile.iterations += 1
        self.data.dynamic_nesting.record(parent, loop.id)

    def on_call(self, func_name: str, entering: bool, cycles: int) -> None:
        self._sync(cycles)
        if entering:
            self.activation_stack.append(self.next_activation)
            self.next_activation += 1
            count, first = self.recursion.get(func_name, (0, 0))
            if count == 0:
                first = cycles
            self.recursion[func_name] = (count + 1, first)
            self.data.func_activations[func_name] = (
                self.data.func_activations.get(func_name, 0) + 1
            )
        else:
            activation = self.activation_stack.pop()
            while self.loop_stack and self.loop_stack[-1][0] == activation:
                self.loop_stack.pop()
            count, first = self.recursion[func_name]
            if count == 1:
                self.data.func_inclusive_cycles[func_name] = (
                    self.data.func_inclusive_cycles.get(func_name, 0)
                    + cycles
                    - first
                )
            self.recursion[func_name] = (count - 1, first)


class _ProfilingInterpreter(Interpreter):
    """Interpreter whose hook overrides feed the profiling harness.

    Overriding :meth:`on_block_entry` (rather than installing a
    ``block_listener``) routes profiling runs onto the *hooked
    superblock* tier under ``backend="auto"``: fused chains invoke the
    hook at every block boundary with exact cycle counts, so the
    collected profile is bit-identical to a listener-based tree or
    decoded run (the differential tests assert this) at codegen speed.
    """

    harness: "_ProfilingHarness"

    def on_block_entry(self, frame, prev, block) -> None:
        self.harness.on_block(
            frame.func.name,
            prev.name if prev is not None else None,
            block.name,
            self.cycles,
        )

    def call_function(self, func, args):
        harness = self.harness
        harness.on_call(func.name, True, self.cycles)
        value = super().call_function(func, args)
        harness.on_call(func.name, False, self.cycles)
        return value


def profile_module(
    module: Module,
    machine: Optional[MachineConfig] = None,
    nest: Optional[StaticLoopNestGraph] = None,
    max_instructions: Optional[int] = 500_000_000,
    backend: str = "auto",
    codegen_cache=None,
) -> ProfileData:
    """Run ``module`` once under instrumentation and return the profile.

    The hook overrides select the hooked superblock tier under
    ``backend="auto"`` (fused chains announce every block boundary with
    exact counters); the collected profile is identical under
    ``backend="tree"`` and ``backend="decoded"`` (the differential
    tests assert this).  ``codegen_cache`` optionally reuses generated
    code across jobs (see :mod:`repro.runtime.codegen`).
    """
    machine = machine or MachineConfig()
    nest = nest or build_static_loop_nest_graph(module)
    interp = _ProfilingInterpreter(
        module,
        machine,
        max_instructions=max_instructions,
        backend=backend,
        codegen_cache=codegen_cache,
    )
    data = ProfileData(module=module, result=None)  # type: ignore[arg-type]
    harness = _ProfilingHarness(nest, data)
    interp.harness = harness
    result = interp.run()
    harness._sync(interp.cycles)
    data.result = result
    return data
