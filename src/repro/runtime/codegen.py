"""Superblock-fused, code-generated interpreter backend (tier 3).

The decoded backend (:mod:`repro.runtime.precompile`, tier 2) removed
per-instruction dispatch and operand classification, but still pays one
Python closure call per dynamic instruction plus a ``for eff in
effects`` loop per block.  This module removes those too:

* **Superblock formation** -- basic blocks are grouped into maximal
  single-entry chains (superblocks).  A successor is fused into the
  chain when it is the sole target of the chain's current terminator
  (BR) or one arm of a CBR, and it has exactly one predecessor edge in
  the function's CFG.  When the chain terminator is a CBR with both
  arms fusable, the *hot* arm is chosen from
  ``Interpreter.block_profile`` dynamic block-entry counts when
  available, statically (first target) otherwise; with a profile the
  hottest unclaimed blocks also seed chains first, so hot paths grow
  the longest fused regions.  Chains are capped at
  :data:`MAX_CHAIN_BLOCKS` blocks.
* **Code generation / quickening** -- all superblocks of a function
  merge into ONE generated Python function (``compile()``-ed once per
  ``Interpreter``): an integer-state dispatch loop whose arms are the
  chains, so a chain transition is an in-function jump (``st = k``)
  rather than a call back through a Python driver.  Registers are
  promoted to function-wide Python locals over the tier-2 slot file --
  materialized once per activation and carried across chain
  transitions without flush or reload -- constants are folded into the
  source, arithmetic and compare handlers are inlined (with the
  tree-walker's exact 64-bit wrap semantics), compare+CBR pairs and
  LEA/PTRADD + LOADP/STOREP pairs are fused, and cycle/instruction
  accounting is charged once per segment instead of once per
  instruction.
* **Hooked tier** -- ``compile_superblocks(..., hooked=True)`` emits a
  hook-aware variant for instrumented runs (the profiler and
  :class:`~repro.runtime.parallel.ParallelExecutor`):
  ``on_block_entry`` is called at every fused-block boundary with the
  same arguments, order and exact ``cycles`` as the decoded hooked
  variant, WAIT/SIGNAL/NEXT_ITER route through ``exec_sync`` and XFER
  through ``exec_xfer`` at segment boundaries, and ``count_loads``
  becomes a static per-segment ``load_count`` increment.  Because a
  hook may *rewrite* ``interp.cycles`` (the parallel executor replaces
  serial with scheduled-parallel time at loop exits), generated code
  only ever charges through the interpreter attribute and never caches
  cycle state in locals across a hook call.  Hooks receive the tier-2
  :class:`~repro.runtime.precompile.DecodedFrame` and must not inspect
  register state (true of every in-tree consumer); listener-bearing
  interpreters still demote to the decoded hooked variant.
* **Exactness fallback** -- output, cycle and instruction counts,
  ``RuntimeFault`` messages and ``ExecutionLimitExceeded`` behavior are
  bit-identical to the tree-walker.  Each dispatch arm only runs when
  the instruction budget covers its chain's whole linear body (checked
  on arm entry; loop-shaped chains re-check on every back edge),
  otherwise the generated function flushes the register locals back to
  the slot file and returns the arm index for the driver to resume
  tier-2 from that chain's head.  After every CALL (which consumes
  budget in the callee) the generated code re-checks in place, and
  when the budget could expire inside the fused region it flushes and
  resumes tier-2 execution via
  :func:`repro.runtime.precompile.finish_decoded` (or
  :func:`~repro.runtime.precompile.finish_hooked` in the hooked tier)
  at the aligned segment boundary -- tier-2 segments split after every
  CALL, plus every sync/xfer opcode in the hooked variant, so the
  anchors line up -- whose per-instruction slow path fires the limit at
  precisely the same dynamic instruction as the walker.  The tier-2
  fallback blocks are decoded *lazily*, on the first activation that
  actually falls back, so a cold tier-3 compile never pays for a
  decode.

**Artifact caching**: when the owning interpreter carries a
``codegen_cache`` (any object with ``load(kind, key)`` / ``store(kind,
key, payload)`` -- in practice :class:`repro.artifacts.ArtifactStore`),
generated source and bytecode are content-addressed under the
``"codegen"`` kind and keyed by :data:`CODEGEN_VERSION`, the function's
printed IR, the hook flags, the module's global-region sizes and
function set, the cost-model parameters and the function's
block-profile projection -- everything the emitted source can embed as
a literal.  A warm hit re-binds the stored namespace manifest against
the live interpreter and skips formation, rendering *and* ``compile()``
(bytecode is reused when the Python ``cache_tag`` matches, else the
cached source is recompiled).  ``repro serve`` job resubmissions and
warm suite re-runs therefore skip decode+codegen entirely, and
``suite --jobs N`` shards cold compiles across workers through the
shared store.

Assumptions baked into the generated source (shared with tier 2):
global regions are reset *in place* (their backing lists -- and hence
their lengths -- are stable across runs), so bounds checks against
known globals embed the region size as a literal.  The only tolerated
divergence from the walker, as in tier 2: after a non-limit
``RuntimeFault`` aborts a run mid-segment, the dead interpreter's
counters (including ``load_count``) may include instructions from the
faulting segment that never executed (no result object is produced on
a fault).

Counters (:mod:`repro.obs.metrics`): ``interp.superblock.formed``,
``interp.superblock.blocks_fused``, ``interp.codegen.specialized_ops``,
``interp.codegen.functions`` at compile time,
``interp.superblock.hooked`` per hooked-tier function made available,
``interp.codegen.cache.hit`` / ``interp.codegen.cache.miss`` per
artifact-cache probe, and ``interp.superblock.fallbacks`` per
exactness-fallback activation.
"""

from __future__ import annotations

import base64
import hashlib
import json
import marshal
import re
import sys
from typing import Dict, List, Mapping, Optional, Tuple

from repro.ir import Function, Instruction, Opcode
from repro.ir.operands import Const, Symbol, VReg
from repro.ir.types import Type
from repro.obs.metrics import REGISTRY
from repro.runtime.interpreter import (
    _BINARY_HANDLERS,
    Pointer,
    RuntimeFault,
    _arith_div,
    _arith_mod,
    format_value,
)
from repro.runtime.precompile import (
    _UNDEF,
    _ftoi,
    _neg,
    _not,
    _undef,
    allocate_slots,
    finish_decoded,
    finish_hooked,
)

_INF = float("inf")

#: Upper bound on blocks fused into one superblock (bounds source size).
MAX_CHAIN_BLOCKS = 64

#: Version of the generated-code layout and namespace manifest.  Bump on
#: ANY change to emitted source shape, bind kinds or driver protocol:
#: it is the only guard between old cached artifacts and new code.
CODEGEN_VERSION = 3

#: Artifact-store kind for cached generated code.
CODEGEN_KIND = "codegen"

_CACHE_TAG = sys.implementation.cache_tag

# 64-bit two's complement wrap, inlined: 2**63 and 2**64 - 1.
_O = "9223372036854775808"
_M = "18446744073709551615"

#: Region/function names safe to splice verbatim into an f-string message.
_SAFE_NAME_RE = re.compile(r"[A-Za-z0-9_.$@:\-]+\Z")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

_CMP_OPS = {
    Opcode.EQ: "==",
    Opcode.NE: "!=",
    Opcode.LT: "<",
    Opcode.LE: "<=",
    Opcode.GT: ">",
    Opcode.GE: ">=",
}
_ARITH_OPS = {Opcode.ADD: "+", Opcode.SUB: "-", Opcode.MUL: "*"}
_BIT_OPS = {Opcode.AND: "&", Opcode.OR: "|", Opcode.XOR: "^"}
_UNARY_FOLDS = {
    Opcode.NEG: _neg,
    Opcode.NOT: _not,
    Opcode.ITOF: float,
    Opcode.FTOI: _ftoi,
}
_SYNC_OPS = (Opcode.WAIT, Opcode.SIGNAL, Opcode.NEXT_ITER, Opcode.XFER)
_LOAD_OPS = (Opcode.LOADG, Opcode.LOADP)


def _wrap(expr: str) -> str:
    """Source form of ``wrap_int(expr)`` for a known-int expression."""
    return f"((({expr}) + {_O}) & {_M}) - {_O}"


def _literal(value) -> Optional[str]:
    """Render ``value`` as a Python literal, or None if not exactly
    representable (bools and non-finite floats are refused)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if isinstance(value, float) and not (
        value == value and value not in (_INF, -_INF)
    ):
        return None
    text = repr(value)
    return f"({text})" if text.startswith("-") else text


# -- superblock formation -----------------------------------------------------


def _first_terminator(block) -> Optional[Instruction]:
    for instr in block.instructions:
        if instr.is_terminator:
            return instr
    return None


def _fusable_successor(
    func: Function,
    term: Optional[Instruction],
    claimed,
    preds: Dict[str, int],
    block_profile: Optional[Mapping[Tuple[str, str], int]],
) -> Optional[str]:
    """The block to extend the chain with, or None to stop."""
    if term is None or term.opcode is Opcode.RET:
        return None
    blocks = func.blocks

    def ok(name: str) -> bool:
        return name in blocks and name not in claimed and preds.get(name, 0) == 1

    if term.opcode is Opcode.BR:
        target = term.targets[0]
        return target if ok(target) else None
    # CBR: fuse along any fusable arm; prefer the profiled-hot one.
    candidates = [t for t in term.targets if ok(t)]
    if not candidates:
        return None
    if block_profile and len(candidates) > 1:
        fname = func.name
        return max(candidates, key=lambda t: block_profile.get((fname, t), 0))
    return candidates[0]


def form_superblocks(
    func: Function,
    block_profile: Optional[Mapping[Tuple[str, str], int]] = None,
) -> List[List[str]]:
    """Partition ``func``'s blocks into single-entry chains.

    Every block lands in exactly one chain; the entry block always
    heads the first chain.  Interior blocks of a chain have exactly one
    CFG predecessor (the fused edge), which guarantees that every side
    exit of every chain targets a chain *head* -- the invariant the
    generated code relies on to dispatch between superblocks.

    With a ``block_profile``, the non-entry seed order is *trace
    guided*: hotter unclaimed blocks start chains first (a stable sort,
    so ties keep declaration order) and therefore get first claim on
    fusable successors, growing the longest chains along the measured
    hot paths.  Purely a layout heuristic -- never affects semantics.
    """
    blocks = func.blocks
    terms = {name: _first_terminator(b) for name, b in blocks.items()}
    preds: Dict[str, int] = {}
    for term in terms.values():
        if term is not None and term.opcode is not Opcode.RET:
            for target in term.targets:
                if target in blocks:
                    preds[target] = preds.get(target, 0) + 1
    entry_name = func.entry.name
    rest = [n for n in blocks if n != entry_name]
    if block_profile:
        fname = func.name
        rest.sort(key=lambda n: -block_profile.get((fname, n), 0))
    order = [entry_name] + rest
    claimed = set()
    chains: List[List[str]] = []
    for head in order:
        if head in claimed:
            continue
        chain = [head]
        claimed.add(head)
        current = head
        while len(chain) < MAX_CHAIN_BLOCKS:
            nxt = _fusable_successor(
                func, terms[current], claimed, preds, block_profile
            )
            if nxt is None:
                break
            chain.append(nxt)
            claimed.add(nxt)
            current = nxt
        chains.append(chain)
    return chains


# -- compiled artifacts -------------------------------------------------------


class Superblock:
    """Metadata of one compiled chain (one dispatch arm of the merged
    generated function)."""

    __slots__ = ("head", "chain", "max_instructions")

    def __init__(self) -> None:
        self.head = ""
        self.chain: Tuple[str, ...] = ()
        #: Linear instruction count of the whole chain: an upper bound
        #: on what one pass (one loop iteration) can charge.
        self.max_instructions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<superblock {'+'.join(self.chain)}>"


class _LazyDecode:
    """Tier-2 fallback blocks for one compiled function, decoded only on
    the first activation that actually needs the exactness fallback --
    so a cold tier-3 compile (or a warm artifact hit) never decodes.

    Callable: ``lazy(block_name) -> DecodedBlock`` of the variant whose
    segment boundaries align with the generated code's anchors (fast
    for the uninstrumented tier, hooked with the pinned ``count_loads``
    flag for the hooked tier).
    """

    __slots__ = ("interp", "func", "hooked", "count_loads", "dfunc")

    def __init__(self, interp, func: Function, hooked: bool,
                 count_loads: bool) -> None:
        self.interp = interp
        self.func = func
        self.hooked = hooked
        self.count_loads = count_loads
        self.dfunc = None

    def __call__(self, name: str):
        dfunc = self.dfunc
        if dfunc is None:
            dfunc = self.dfunc = self.interp._decoded_for(
                self.func, self.hooked, self.count_loads
            )
        return dfunc.blocks[name]


class SuperblockFunction:
    """All superblocks of one function, compiled against one interpreter.

    The chains share ONE generated function (``run``): an integer-state
    dispatch loop whose arm ``k`` is chain ``k``'s body, with registers
    held in function-wide locals across chain transitions.  ``run(frame,
    limit, 0)`` executes a whole activation and returns ``None`` on RET,
    or the arm index whose entry budget check failed -- the driver then
    resumes tier-2 at ``heads[index]`` for the exactness fallback.
    """

    __slots__ = (
        "func", "nslots", "param_slots", "entry", "blocks", "run",
        "heads", "lazy", "source", "hooked", "count_loads",
    )

    def __init__(
        self,
        func: Function,
        nslots: int,
        param_slots: Tuple[int, ...],
        entry: Superblock,
        blocks: Dict[str, Superblock],
        run,
        heads: Tuple[str, ...],
        lazy: _LazyDecode,
        source: str,
        hooked: bool = False,
        count_loads: bool = False,
    ) -> None:
        self.func = func
        self.nslots = nslots
        self.param_slots = param_slots
        self.entry = entry
        self.blocks = blocks
        #: ``run(frame, limit, state)`` -> None (RET) | over-budget arm index.
        self.run = run
        #: Chain head block name per dispatch arm index.
        self.heads = heads
        #: Lazily-decoded tier-2 fallback blocks (see :class:`_LazyDecode`).
        self.lazy = lazy
        #: Generated Python source, kept for tests and debugging.
        self.source = source
        self.hooked = hooked
        self.count_loads = count_loads


def _base_namespace(interp, func: Function, lazy: _LazyDecode) -> Dict[str, object]:
    """Globals of the generated module: runtime objects pre-bound under
    stable dunder names (identical for fresh builds and warm artifact
    instantiations)."""
    return {
        "__I": interp,
        "__U": _UNDEF,
        "__undef": _undef,
        "__RF": RuntimeFault,
        "__Ptr": Pointer,
        "__fmt": format_value,
        "__div": _arith_div,
        "__mod": _arith_mod,
        "__call": interp.call_function,
        "__fin": finish_decoded,
        "__fh": finish_hooked,
        "__inc": REGISTRY.inc,
        "__db": lazy,
        "__fb": func.blocks,
        "__FN": func.name,
    }


# -- code generation ----------------------------------------------------------


def _dispatch_split(weights: List[int], lo: int, hi: int) -> int:
    """Split point for the weighted binary dispatch tree over arms
    ``[lo, hi)``: the boundary that best balances entry mass, so hot
    arms sit behind few ``st <`` tests (expected test count tracks the
    entropy of the transition profile, not the arm count)."""
    total = sum(weights[lo:hi])
    acc = 0
    best = lo + 1
    best_d: Optional[int] = None
    for mid in range(lo + 1, hi):
        acc += weights[mid - 1]
        d = abs(2 * acc - total)
        if best_d is None or d < best_d:
            best_d = d
            best = mid
    return best


class _FunctionCodegen:
    """Generates and compiles the superblock source for one function."""

    def __init__(
        self,
        interp,
        func: Function,
        hooked: bool = False,
        count_loads: bool = False,
    ) -> None:
        self.interp = interp
        self.func = func
        self.hooked = hooked
        self.count_loads = hooked and count_loads
        self.slot_map = allocate_slots(func)
        self.cost_model = interp.cost_model
        self.specialized = 0
        self.chains: List[List[str]] = []
        #: Function-wide slot sets (filled by :meth:`build` before any
        #: chain is emitted): every slot the body reads or writes, and
        #: the write subset every budget handoff flushes.
        self.touched_slots: Tuple[int, ...] = ()
        self.write_slots: Tuple[int, ...] = ()
        self.lazy = _LazyDecode(interp, func, hooked, self.count_loads)
        self.ns: Dict[str, object] = _base_namespace(interp, func, self.lazy)
        self._binds: Dict[Tuple[str, int], str] = {}
        #: Ordered reconstruction manifest: (name, kind, payload) per
        #: bound object, enough to re-bind against a fresh interpreter
        #: when this compile is replayed from the artifact cache.
        self.bind_specs: List[Tuple[str, str, object]] = []
        self._ptr_cache: Dict[Tuple[int, object, str], str] = {}
        #: VReg uid -> number of argument occurrences function-wide.
        self.uses: Dict[int, int] = {}
        for block in func.blocks.values():
            for instr in block.instructions:
                for arg in instr.args:
                    if isinstance(arg, VReg):
                        self.uses[arg.uid] = self.uses.get(arg.uid, 0) + 1

    def bind(self, prefix: str, obj, spec: Tuple[str, object]) -> str:
        """Expose ``obj`` to the generated code under a memoized name.

        ``spec`` is the JSON-able ``(kind, payload)`` recipe that
        :func:`_resolve_bind` uses to rebuild the same object against a
        fresh interpreter on a warm artifact hit.
        """
        key = (prefix, id(obj))
        name = self._binds.get(key)
        if name is None:
            name = f"__{prefix}{len(self._binds)}"
            self._binds[key] = name
            self.ns[name] = obj
            self.bind_specs.append((name, spec[0], spec[1]))
        return name

    def pointer_for(self, store: List, base, name: str) -> str:
        """A pre-built Pointer into a stable (global) region."""
        key = (id(store), base, name)
        bound = self._ptr_cache.get(key)
        if bound is None:
            bound = self.bind(
                "ptr", Pointer(store, base, name), ("ptr", [name, base])
            )
            self._ptr_cache[key] = bound
        return bound

    def cost(self, instr: Instruction) -> int:
        is_float = instr.dest is not None and instr.dest.type is Type.FLOAT
        return self.cost_model.cycles(instr.opcode, is_float)

    def const_expr(self, operand: Const) -> str:
        lit = _literal(operand.value)
        if lit is not None:
            return lit
        return self.bind("c", operand.value, ("c", operand.value))

    def fstr_name(self, name: str) -> str:
        """Fragment rendering ``name`` inside a generated f-string."""
        if _SAFE_NAME_RE.match(name):
            return name
        return "{" + self.bind("nm", name, ("nm", name)) + "}"

    def build(self) -> SuperblockFunction:
        func = self.func
        chains = form_superblocks(func, self.interp.block_profile)
        # Dispatch arms are scanned linearly (`if st == 0: ... elif`),
        # so order them by measured head entry count, hottest first --
        # the expected scan depth of a transition becomes the expected
        # rank of its target, ~1-3 for loopy profiles.  The entry chain
        # stays at arm 0 (the driver starts every activation there).
        profile = self.interp.block_profile
        if profile and len(chains) > 2:
            fname = func.name
            chains[1:] = sorted(
                chains[1:],
                key=lambda chain: -profile.get((fname, chain[0]), 0),
            )
        self.chains = chains
        sblocks: Dict[str, Superblock] = {}
        sb_index: Dict[str, int] = {}
        for i, chain in enumerate(chains):
            sb = Superblock()
            sb.head = chain[0]
            sb.chain = tuple(chain)
            sblocks[chain[0]] = sb
            sb_index[chain[0]] = i
        # Function-wide register file: every slot the generated body can
        # touch is materialized once per activation, so locals stay
        # authoritative across chain transitions (no per-transition
        # flush/reload) and any budget handoff can flush the full write
        # set -- prelude initialization makes every member assignable
        # regardless of which path executed.
        slot_map = self.slot_map
        touched: Dict[int, None] = {}
        writes: Dict[int, None] = {}
        for block in func.blocks.values():
            for instr in block.instructions:
                for reg in instr.uses():
                    touched.setdefault(slot_map[reg.uid], None)
                if instr.dest is not None:
                    slot = slot_map[instr.dest.uid]
                    touched.setdefault(slot, None)
                    writes.setdefault(slot, None)
                if instr.is_terminator:
                    break
        self.touched_slots = tuple(touched)
        self.write_slots = tuple(writes)
        head = [
            "def __sb(frame, __limit, st):",
            "    __i = __I",
        ]
        if self.hooked:
            head.append("    __obe = __i.on_block_entry")
        head.append("    s = frame.slots")
        for slot in self.touched_slots:
            head.append(f"    r{slot} = s[{slot}]")
        head.append("    while True:")
        weights = [
            (profile.get((func.name, chain[0]), 0) + 1) if profile else 1
            for chain in chains
        ]

        def emit_range(lo: int, hi: int, base: str) -> List[str]:
            # Weighted binary dispatch: interior nodes test `st < mid`,
            # leaves hold exactly one arm and need no equality test.
            if hi - lo == 1:
                return _ChainEmitter(
                    self, chains[lo], lo, sblocks[chains[lo][0]],
                    sb_index, base,
                ).render()
            mid = _dispatch_split(weights, lo, hi)
            lines = [f"{base}if st < {mid}:"]
            lines.extend(emit_range(lo, mid, base + "    "))
            lines.append(f"{base}else:")
            lines.extend(emit_range(mid, hi, base + "    "))
            return lines

        source = "\n".join(head + emit_range(0, len(chains), " " * 8)) + "\n"
        code = compile(source, f"<superblocks:{func.name}>", "exec")
        exec(code, self.ns)
        REGISTRY.inc("interp.superblock.formed", len(chains))
        REGISTRY.inc(
            "interp.superblock.blocks_fused",
            sum(len(chain) - 1 for chain in chains),
        )
        if self.specialized:
            REGISTRY.inc("interp.codegen.specialized_ops", self.specialized)
        REGISTRY.inc("interp.codegen.functions")
        param_slots = tuple(
            self.slot_map[param.uid] for param in func.params
        )
        return SuperblockFunction(
            func,
            len(self.slot_map),
            param_slots,
            sblocks[func.entry.name],
            sblocks,
            self.ns["__sb"],
            tuple(chain[0] for chain in chains),
            self.lazy,
            source,
            self.hooked,
            self.count_loads,
        )

    def artifact(self, sfunc: SuperblockFunction) -> dict:
        """Serializable payload replaying this compile on a fresh
        interpreter (see :func:`_instantiate`)."""
        code = compile(
            sfunc.source, f"<superblocks:{self.func.name}>", "exec"
        )
        try:
            bytecode = base64.b64encode(marshal.dumps(code)).decode("ascii")
        except Exception:  # pragma: no cover - marshal refuses nothing here
            bytecode = None
        return {
            "codegen": CODEGEN_VERSION,
            "function": self.func.name,
            "hooked": self.hooked,
            "count_loads": self.count_loads,
            "chains": [list(chain) for chain in self.chains],
            "max_instructions": [
                sfunc.blocks[chain[0]].max_instructions
                for chain in self.chains
            ],
            "nslots": sfunc.nslots,
            "param_slots": list(sfunc.param_slots),
            "binds": [list(spec) for spec in self.bind_specs],
            "source": sfunc.source,
            "cache_tag": _CACHE_TAG,
            "bytecode": bytecode,
        }


class _ChainEmitter:
    """Renders one superblock chain as one dispatch arm of the merged
    generated function.

    :meth:`_FunctionCodegen.build` emits the shared head -- the
    interpreter/hook bindings and a prelude materializing every touched
    slot into locals ``r<slot>`` -- then arranges the arms as a
    profile-weighted binary dispatch tree inside the ``while True:``
    loop (interior nodes test ``st < mid``; a leaf holds exactly one
    arm, so no equality test runs)::

        def __sb(frame, __limit, st):
            __i = __I
            s = frame.slots
            r3 = s[3]; ...                      # function-wide prelude
            while True:
                if st < 1:                       # dispatch tree
                    __n = __i.instructions       # arm 0 (entry chain)
                    if __n + N0 > __limit:
                        s[..] = r..              # flush write set
                        return 0                 # -> driver falls back
                    <charge segment>; <ops>; ...
                    st = 2                       # side exit to chain 2
                    continue                     # back to dispatch
                else:
                    if st < 2: ...

    Locals are authoritative across chain transitions: a transition is
    just ``st = k`` plus a jump back to the dispatch loop, with no
    flush and no reload.  The slot file is only written when control
    leaves the generated function with the frame still live -- an arm's
    over-budget entry check, a loop back edge's budget re-check, or a
    post-CALL fallback -- and then the *full* function write set is
    flushed (prelude initialization makes every member assignable no
    matter which path executed).  The walker's undefined-register check
    stays at each arm's first read site, against the prelude-loaded
    local.  Loop-form arms (terminator targets the chain head) wrap
    their body in an inner ``while True:``; the back edge is
    ``continue`` on that inner loop, side exits ``break`` out of it and
    fall back to the dispatch loop.

    Charges are emitted *before* each segment's operations, exactly
    like tier 2's fast path; a segment that follows a CALL first
    re-checks the remaining linear budget and diverts to
    :func:`finish_decoded` (or :func:`finish_hooked`) when the limit
    could expire before the chain ends.

    In hooked mode, segments additionally close at every fused-block
    boundary (so ``on_block_entry`` observes exact counters, in the
    decoded hooked variant's exact call order) and at every sync/xfer
    opcode (charged through the op before ``exec_sync``/``exec_xfer``
    runs, matching tier 2's segment-final placement), and each closed
    segment statically bumps ``load_count`` by its LOADG/LOADP count
    when the interpreter counts loads.
    """

    def __init__(
        self, g: _FunctionCodegen, chain, index, sb, sb_index,
        base: str = " " * 8,
    ) -> None:
        self.g = g
        self.chain = chain
        self.index = index
        self.sb = sb
        #: Chain head -> dispatch arm index, for side-exit transitions.
        self.sb_index = sb_index
        #: Indentation of this arm's leaf inside the dispatch tree.
        self.base = base
        self.blocks = g.func.blocks
        self.hooked = g.hooked
        self.count_loads = g.count_loads
        self.fin = "__fh" if g.hooked else "__fin"
        # Prescan: linear instruction total and loop shape.
        total = 0
        loop_form = False
        for name in chain:
            block = self.blocks[name]
            term = _first_terminator(block)
            if term is None:
                total += len(block.instructions)
            else:
                total += block.instructions.index(term) + 1
                if term.opcode is not Opcode.RET and chain[0] in term.targets:
                    loop_form = True
        self.total = total
        self.loop_form = loop_form
        sb.max_instructions = total
        # Leaf arms carry no equality test, so the body sits at the
        # leaf's own depth; loop form nests it inside the inner while.
        self.indent = base + "    " if loop_form else base
        self.lines: List[str] = []
        self.buf: List[str] = []
        self.seg_count = 0
        self.seg_cycles = 0
        self.seg_loads = 0
        self.charged = 0
        self.pending_check: Optional[Tuple[str, int]] = None
        self.pending_cond: Optional[str] = None
        #: True while the arm-entry ``__n = __i.instructions`` read is
        #: still current, so the chain's first segment can charge with
        #: ``= __n + k`` instead of a second attribute read (every path
        #: to that charge -- arm entry and each back edge -- refreshes
        #: ``__n`` right after any hook that could mutate the counter).
        self.entry_n_live = False
        self.defined: set = set()
        self.local_regions: Dict[str, str] = {}
        self._tmp = 0

    # -- small helpers -------------------------------------------------------

    def tmp(self) -> str:
        self._tmp += 1
        return f"__t{self._tmp}"

    def emit(self, line: str, extra: str = "") -> None:
        self.lines.append(self.indent + extra + line)

    def flush_buf(self) -> None:
        ind = self.indent
        self.lines.extend(ind + line for line in self.buf)
        self.buf = []

    def as_name(self, expr: str) -> str:
        """Materialize ``expr`` into a local if it isn't a plain name."""
        if _IDENT_RE.match(expr):
            return expr
        name = self.tmp()
        self.buf.append(f"{name} = {expr}")
        return name

    def charge_op(self, instr: Instruction) -> None:
        self.seg_count += 1
        self.seg_cycles += self.g.cost(instr)
        if self.count_loads and instr.opcode in _LOAD_OPS:
            self.seg_loads += 1

    def bb(self, name: str) -> str:
        """Bound BasicBlock object (hook-call argument)."""
        return self.g.bind("bb", self.blocks[name], ("bb", name))

    def emit_hook(self, prev_name: str, next_name: str, extra: str = "") -> None:
        """``on_block_entry`` at a fused boundary.

        ``__obe`` is bound from the interpreter attribute once per
        activation (so instance-level overrides installed before the
        run stay honored), and hooks may mutate any interpreter
        *counter* freely -- the next charge re-reads them -- but
        rebinding the hook attribute itself mid-activation is only
        observed at the next activation, exactly like a mid-activation
        backend switch.
        """
        self.emit(
            f"__obe(frame, {self.bb(prev_name)}, "
            f"{self.bb(next_name)})",
            extra,
        )

    # -- operand access ------------------------------------------------------

    def read(self, operand) -> str:
        g = self.g
        if isinstance(operand, Const):
            return g.const_expr(operand)
        if isinstance(operand, VReg):
            slot = g.slot_map[operand.uid]
            name = f"r{slot}"
            if slot not in self.defined:
                # The prelude materialized every slot; only the
                # walker's undefined-register check stays at the arm's
                # first read site.
                self.defined.add(slot)
                reg = g.bind("vr", operand, ("vr", operand.uid))
                self.buf.append(f"if {name} is __U:")
                self.buf.append(f"    __undef({reg}, __FN)")
            return name
        return self.sym_pointer(operand)

    def sym_pointer(self, sym: Symbol) -> str:
        """A Symbol operand decaying to a Pointer, as in eval_operand."""
        g = self.g
        if sym.is_global:
            store = g.interp.memory.get(sym.name)
            if store is not None:
                g.specialized += 1
                return g.pointer_for(store, 0, sym.name)
            sname = g.bind("sym", sym, ("sym", sym.name))
            name = self.tmp()
            self.buf.append(
                f"{name} = __Ptr(__i.region_of({sname}, frame), 0, "
                f"{sym.name!r})"
            )
            return name
        region = self.local_store(sym)
        name = self.tmp()
        self.buf.append(f"{name} = __Ptr({region}, 0, {sym.name!r})")
        return name

    def local_store(self, sym: Symbol) -> str:
        name = self.local_regions.get(sym.name)
        if name is None:
            sname = self.g.bind("sym", sym, ("sym", sym.name))
            name = f"__lm{len(self.local_regions)}"
            self.local_regions[sym.name] = name
            self.buf.append(f"{name} = frame.local_region({sname})")
        return name

    def store_ref(self, sym: Symbol) -> Tuple[str, Optional[int]]:
        """(store expression, static size or None) for LEA/LOADG/STOREG.

        Emitted *after* the index read, matching the walker's operand
        order.  Known-global and local region sizes are static: regions
        are reset in place and never resized.
        """
        g = self.g
        if sym.is_global:
            store = g.interp.memory.get(sym.name)
            if store is not None:
                return g.bind("st", store, ("st", sym.name)), len(store)
            sname = g.bind("sym", sym, ("sym", sym.name))
            name = self.tmp()
            self.buf.append(f"{name} = __i.region_of({sname}, frame)")
            return name, None
        return self.local_store(sym), sym.size

    def wreg(self, reg: VReg) -> str:
        slot = self.g.slot_map[reg.uid]
        self.defined.add(slot)
        return f"r{slot}"

    def bounds(self, kind: str, name_frag: str, index: str,
               store: str, size: Optional[int]) -> None:
        """Emit the walker's bounds check + fault message."""
        if size is not None:
            self.buf.append(f"if {index} < 0 or {index} >= {size}:")
            self.buf.append(
                f'    raise __RF(f"{kind} out of bounds: '
                f'{name_frag}[{{{index}}}] (size {size})")'
            )
        else:
            self.buf.append(f"if {index} < 0 or {index} >= len({store}):")
            self.buf.append(
                f'    raise __RF(f"{kind} out of bounds: '
                f'{name_frag}[{{{index}}}] (size {{len({store})}})")'
            )

    # -- segment charging ----------------------------------------------------

    def close_segment(self, new_check: Optional[Tuple[str, int]] = None) -> None:
        """Emit the pending charge block, then the buffered op lines.

        When a CALL preceded this segment (``pending_check``), the
        charge is guarded by a conservative remaining-budget test: if
        the rest of the chain's linear body might not fit, flush the
        function's write set and resume tier-2 at the aligned segment
        index of the call's block (resolved lazily through ``__db`` --
        the fallback blocks are only decoded if an activation actually
        diverts).
        """
        out = self.lines
        ind = self.indent
        count, cycles = self.seg_count, self.seg_cycles
        loads = self.seg_loads
        check = self.pending_check
        if check is not None and count:
            bname, seg_index = check
            remaining = self.total - self.charged
            out.append(f"{ind}__n = __i.instructions")
            out.append(f"{ind}if __n + {remaining} > __limit:")
            for slot in self.g.write_slots:
                out.append(f"{ind}    s[{slot}] = r{slot}")
            out.append(f"{ind}    __inc('interp.superblock.fallbacks')")
            out.append(
                f"{ind}    {self.fin}(__i, frame, __db({bname!r}), "
                f"{seg_index}, __limit)"
            )
            out.append(f"{ind}    return None")
            out.append(f"{ind}__i.instructions = __n + {count}")
            if cycles:
                out.append(f"{ind}__i.cycles += {cycles}")
            self.pending_check = None
        else:
            if count:
                if self.entry_n_live:
                    out.append(f"{ind}__i.instructions = __n + {count}")
                else:
                    out.append(f"{ind}__i.instructions += {count}")
            if cycles:
                out.append(f"{ind}__i.cycles += {cycles}")
        self.entry_n_live = False
        if loads:
            out.append(f"{ind}__i.load_count += {loads}")
        out.extend(ind + line for line in self.buf)
        self.buf = []
        self.charged += count
        self.seg_count = 0
        self.seg_cycles = 0
        self.seg_loads = 0
        if new_check is not None:
            self.pending_check = new_check

    # -- exits ---------------------------------------------------------------

    def exit_lines(self, target: str, extra: str, cur_name: str) -> None:
        """Leave the chain towards ``target`` (always a chain head)."""
        out = self.lines
        ind = self.indent + extra
        if self.loop_form and target == self.chain[0]:
            # Back edge: announce the head re-entry (hooked), then the
            # next iteration re-charges the full linear body, so
            # re-check it; over budget -> return this arm's index so
            # the driver falls back (finish_hooked does not re-announce
            # the current block, so the hook order stays exact).
            # Registers stay in their locals across the iteration: only
            # the over-budget return leaves the function and flushes.
            if self.hooked:
                out.append(
                    f"{ind}__obe(frame, {self.bb(cur_name)}, "
                    f"{self.bb(target)})"
                )
            out.append(f"{ind}__n = __i.instructions")
            out.append(f"{ind}if __n + {self.total} > __limit:")
            for slot in self.g.write_slots:
                out.append(f"{ind}    s[{slot}] = r{slot}")
            out.append(f"{ind}    return {self.index}")
            out.append(f"{ind}continue")
            return
        if target not in self.blocks:
            # Dangling branch target: KeyError, like the walker's
            # func.blocks[name] lookup (which fires before any hook).
            out.append(f"{ind}__fb[{target!r}]")
            return
        if self.hooked:
            out.append(
                f"{ind}__obe(frame, {self.bb(cur_name)}, "
                f"{self.bb(target)})"
            )
        # Chain transition: locals carry over, no flush -- just move
        # the dispatch loop to the target arm.  `continue` targets the
        # dispatch loop directly; loop-form arms `break` out of their
        # inner iteration loop and fall through to it.
        out.append(f"{ind}st = {self.sb_index[target]}")
        out.append(f"{ind}{'break' if self.loop_form else 'continue'}")

    # -- instruction emission ------------------------------------------------

    def emit_op(self, instr: Instruction, nxt: Optional[Instruction]) -> int:
        """Emit one non-terminator op (or a fused pair); returns the
        number of instructions consumed."""
        g = self.g
        buf = self.buf
        op = instr.opcode

        # LEA/PTRADD + LOADP/STOREP pair fusion: the intermediate
        # pointer register is consumed exactly once, by the next op.
        if (
            op in (Opcode.LEA, Opcode.PTRADD)
            and instr.dest is not None
            and nxt is not None
            and nxt.opcode in (Opcode.LOADP, Opcode.STOREP)
            and isinstance(nxt.args[0], VReg)
            and nxt.args[0].uid == instr.dest.uid
            and g.uses.get(instr.dest.uid, 0) == 1
        ):
            self.emit_pair(instr, nxt)
            return 2

        if op is Opcode.MOV:
            self.charge_op(instr)
            expr = self.read(instr.args[0])
            buf.append(f"{self.wreg(instr.dest)} = {expr}")
            return 1

        handler = _BINARY_HANDLERS.get(op)
        if handler is not None:
            self.charge_op(instr)
            a_op, b_op = instr.args
            # compare + CBR fusion: skip the register store, stash the
            # condition expression for the terminator.
            if (
                op in _CMP_OPS
                and nxt is not None
                and nxt.opcode is Opcode.CBR
                and isinstance(nxt.args[0], VReg)
                and nxt.args[0].uid == instr.dest.uid
                and g.uses.get(instr.dest.uid, 0) == 1
            ):
                a = self.read(a_op)
                b = self.read(b_op)
                self.pending_cond = f"{a} {_CMP_OPS[op]} {b}"
                g.specialized += 1
                return 1
            if isinstance(a_op, Const) and isinstance(b_op, Const):
                try:
                    value = handler(a_op.value, b_op.value)
                except Exception:
                    value = None
                else:
                    lit = _literal(value)
                    if lit is not None:
                        buf.append(f"{self.wreg(instr.dest)} = {lit}")
                        g.specialized += 1
                        return 1
            a = self.read(a_op)
            b = self.read(b_op)
            dest = self.wreg(instr.dest)
            if op in _CMP_OPS:
                buf.append(f"{dest} = 1 if {a} {_CMP_OPS[op]} {b} else 0")
            elif op in _ARITH_OPS:
                # The walker computes first (so TypeError provenance is
                # identical), then wraps int results.  Wrapping is the
                # identity on in-range ints -- and in-range floats pass
                # through the walker unwrapped too -- so a two-compare
                # range test covers almost every result and the
                # isinstance + three-op wrap only runs on 64-bit
                # overflow (or non-finite floats, which fail both
                # comparisons and fall through unchanged).
                t = self.tmp()
                buf.append(f"{t} = {a} {_ARITH_OPS[op]} {b}")
                buf.append(
                    f"{dest} = {t} if (-{_O}) <= {t} < {_O} else "
                    f"({_wrap(t)}) if isinstance({t}, int) else {t}"
                )
            elif op in _BIT_OPS:
                # Bit ops are int-only in the walker (wrap always):
                # in-range results skip the wrap entirely.
                t = self.tmp()
                buf.append(f"{t} = {a} {_BIT_OPS[op]} {b}")
                buf.append(
                    f"{dest} = {t} if (-{_O}) <= {t} < {_O} else {_wrap(t)}"
                )
            elif op in (Opcode.DIV, Opcode.MOD):
                # C-style truncated div/mod inlines for an integer
                # dividend when the divisor is a positive int constant:
                # the quotient's magnitude is |a|//b with the dividend's
                # sign (c_div/c_mod), it can never overflow or divide by
                # zero, and every other operand shape (floats, bools,
                # pointers, zero/negative divisors) falls back to the
                # walker's generic helper with identical faults.
                py = "//" if op is Opcode.DIV else "%"
                fn = "__div" if op is Opcode.DIV else "__mod"
                if (
                    isinstance(b_op, Const)
                    and type(b_op.value) is int
                    and b_op.value > 0
                ):
                    buf.append(
                        f"{dest} = ({a} {py} {b} if {a} >= 0 "
                        f"else -(-{a} {py} {b})) "
                        f"if type({a}) is int else {fn}({a}, {b})"
                    )
                    g.specialized += 1
                else:
                    # Runtime divisor: guard the same positive-int
                    # fast path dynamically; zero, negative, float and
                    # bool operands all take the walker's helper with
                    # identical faults.
                    bn = self.as_name(b)
                    buf.append(
                        f"{dest} = ({a} {py} {bn} if {a} >= 0 "
                        f"else -(-{a} {py} {bn})) "
                        f"if type({a}) is int and type({bn}) is int "
                        f"and {bn} > 0 else {fn}({a}, {bn})"
                    )
            else:  # SHL / SHR
                buf.append(f"if {b} < 0 or {b} > 63:")
                buf.append(
                    f'    raise __RF(f"shift amount {{{b}}} out of range")'
                )
                if op is Opcode.SHL:
                    t = self.tmp()
                    buf.append(f"{t} = {a} << {b}")
                    buf.append(
                        f"{dest} = {t} if (-{_O}) <= {t} < {_O} "
                        f"else {_wrap(t)}"
                    )
                else:
                    buf.append(f"{dest} = {a} >> {b}")
            return 1

        fold = _UNARY_FOLDS.get(op)
        if fold is not None:
            self.charge_op(instr)
            a_op = instr.args[0]
            if isinstance(a_op, Const):
                try:
                    lit = _literal(fold(a_op.value))
                except Exception:
                    lit = None
                if lit is not None:
                    buf.append(f"{self.wreg(instr.dest)} = {lit}")
                    g.specialized += 1
                    return 1
            a = self.read(a_op)
            dest = self.wreg(instr.dest)
            if op is Opcode.NEG:
                # Same range-test fast path as the binary arith ops
                # (negating an int yields an int, a float a float, so
                # testing the result matches the walker's operand test).
                t = self.tmp()
                buf.append(f"{t} = -{a}")
                buf.append(
                    f"{dest} = {t} if (-{_O}) <= {t} < {_O} else "
                    f"({_wrap(t)}) if isinstance({t}, int) else {t}"
                )
            elif op is Opcode.NOT:
                buf.append(f"{dest} = 1 if {a} == 0 else 0")
            elif op is Opcode.ITOF:
                buf.append(f"{dest} = float({a})")
            else:  # FTOI
                buf.append(f"{dest} = {_wrap(f'int({a})')}")
            return 1

        if op is Opcode.LEA:
            self.charge_op(instr)
            sym = instr.args[0]
            idx_op = instr.args[1]
            store = g.interp.memory.get(sym.name) if sym.is_global else None
            if store is not None and isinstance(idx_op, Const):
                pointer = g.pointer_for(store, idx_op.value, sym.name)
                buf.append(f"{self.wreg(instr.dest)} = {pointer}")
                g.specialized += 1
                return 1
            index = self.read(idx_op)
            region, _size = self.store_ref(sym)
            buf.append(
                f"{self.wreg(instr.dest)} = __Ptr({region}, {index}, "
                f"{sym.name!r})"
            )
            return 1

        if op is Opcode.PTRADD:
            self.charge_op(instr)
            ptr = self.read(instr.args[0])
            delta = self.read(instr.args[1])
            p = self.as_name(ptr)
            buf.append(f"if not isinstance({p}, __Ptr):")
            buf.append(f'    raise __RF(f"PTRADD on non-pointer {{{p}!r}}")')
            buf.append(
                f"{self.wreg(instr.dest)} = "
                f"__Ptr({p}.store, {p}.base + {delta}, {p}.region)"
            )
            return 1

        if op is Opcode.LOADG or op is Opcode.STOREG:
            self.charge_op(instr)
            sym = instr.args[0]
            kind = "load" if op is Opcode.LOADG else "store"
            index = self.read(instr.args[1])
            value = self.read(instr.args[2]) if op is Opcode.STOREG else None
            region, size = self.store_ref(sym)
            idx_op = instr.args[1]
            if size is not None and isinstance(idx_op, Const) and not isinstance(
                idx_op.value, bool
            ) and isinstance(idx_op.value, int):
                # Statically decidable bounds: elide the check, or fault
                # unconditionally with the walker's exact message.
                if 0 <= idx_op.value < size:
                    g.specialized += 1
                else:
                    msg = (
                        f"{kind} out of bounds: {sym.name}[{idx_op.value}] "
                        f"(size {size})"
                    )
                    buf.append(f"raise __RF({msg!r})")
                    return 1
            else:
                self.bounds(kind, g.fstr_name(sym.name), index, region, size)
            if op is Opcode.LOADG:
                buf.append(f"{self.wreg(instr.dest)} = {region}[{index}]")
            else:
                buf.append(f"{region}[{index}] = {value}")
            return 1

        if op is Opcode.LOADP or op is Opcode.STOREP:
            self.charge_op(instr)
            kind = "load" if op is Opcode.LOADP else "store"
            opname = "LOADP" if op is Opcode.LOADP else "STOREP"
            ptr = self.read(instr.args[0])
            index = self.read(instr.args[1])
            value = self.read(instr.args[2]) if op is Opcode.STOREP else None
            p = self.as_name(ptr)
            buf.append(f"if not isinstance({p}, __Ptr):")
            buf.append(
                f'    raise __RF(f"{opname} on non-pointer {{{p}!r}}")'
            )
            slot = self.tmp()
            buf.append(f"{slot} = {p}.base + {index}")
            store = self.tmp()
            buf.append(f"{store} = {p}.store")
            self.bounds(kind, f"{{{p}.region}}", slot, store, None)
            if op is Opcode.LOADP:
                buf.append(f"{self.wreg(instr.dest)} = {store}[{slot}]")
            else:
                buf.append(f"{store}[{slot}] = {value}")
            return 1

        if op is Opcode.CALL:
            self.charge_op(instr)
            args = [self.read(a) for a in instr.args]
            callee = g.interp.module.functions.get(instr.callee)
            arglist = ", ".join(args)
            if callee is not None:
                fn = g.bind("fn", callee, ("fn", instr.callee))
                call = f"__call({fn}, [{arglist}])"
            else:
                # Unknown callee: KeyError at execution, like the walker.
                call = (
                    f"__call(__i.module.functions[{instr.callee!r}], "
                    f"[{arglist}])"
                )
            if instr.dest is not None:
                buf.append(f"{self.wreg(instr.dest)} = {call}")
            else:
                buf.append(call)
            return 1

        if op is Opcode.PRINT:
            self.charge_op(instr)
            expr = self.read(instr.args[0])
            buf.append(f"__i.output.append(__fmt({expr}))")
            return 1

        if op in _SYNC_OPS:
            # Timing-only in the fast variant: charge, no effect.  (The
            # hooked emitter intercepts these in render() and routes
            # them through exec_sync/exec_xfer at a segment boundary.)
            self.charge_op(instr)
            return 1

        # Verifier-rejected shapes: fault at execution, like the walker.
        self.charge_op(instr)  # pragma: no cover - defensive
        buf.append(f"raise __RF({f'cannot execute opcode {op}'!r})")
        return 1

    def emit_pair(self, first: Instruction, second: Instruction) -> None:
        """Fused LEA/PTRADD + LOADP/STOREP: the Pointer is never built."""
        g = self.g
        buf = self.buf
        self.charge_op(first)
        self.charge_op(second)
        g.specialized += 2
        kind = "load" if second.opcode is Opcode.LOADP else "store"
        if first.opcode is Opcode.LEA:
            sym = first.args[0]
            base = self.read(first.args[1])
            region, size = self.store_ref(sym)
            index = self.read(second.args[1])
            value = (
                self.read(second.args[2])
                if second.opcode is Opcode.STOREP
                else None
            )
            slot = self.tmp()
            buf.append(f"{slot} = {base} + {index}")
            self.bounds(kind, g.fstr_name(sym.name), slot, region, size)
            if second.opcode is Opcode.LOADP:
                buf.append(f"{self.wreg(second.dest)} = {region}[{slot}]")
            else:
                buf.append(f"{region}[{slot}] = {value}")
            return
        # PTRADD + LOADP/STOREP
        ptr = self.read(first.args[0])
        delta = self.read(first.args[1])
        p = self.as_name(ptr)
        buf.append(f"if not isinstance({p}, __Ptr):")
        buf.append(f'    raise __RF(f"PTRADD on non-pointer {{{p}!r}}")')
        index = self.read(second.args[1])
        value = (
            self.read(second.args[2])
            if second.opcode is Opcode.STOREP
            else None
        )
        slot = self.tmp()
        buf.append(f"{slot} = {p}.base + {delta} + {index}")
        store = self.tmp()
        buf.append(f"{store} = {p}.store")
        self.bounds(kind, f"{{{p}.region}}", slot, store, None)
        if second.opcode is Opcode.LOADP:
            buf.append(f"{self.wreg(second.dest)} = {store}[{slot}]")
        else:
            buf.append(f"{store}[{slot}] = {value}")

    # -- terminators ---------------------------------------------------------

    def emit_terminator(
        self, instr: Instruction, next_name: Optional[str], cur_name: str
    ) -> None:
        op = instr.opcode
        self.seg_count += 1
        self.seg_cycles += self.g.cost(instr)
        if op is Opcode.RET:
            self.close_segment()
            if instr.args:
                expr = self.read(instr.args[0])
                self.flush_buf()
                self.emit(f"frame.ret = {expr}")
            # Slots die with the frame on RET: no flush needed.
            self.emit("return None")
            return
        if op is Opcode.BR:
            target = instr.targets[0]
            if target == next_name:
                if self.hooked:
                    # Fused boundary: the hook must observe counters
                    # through this BR, so the segment closes here.
                    self.close_segment()
                    self.emit_hook(cur_name, target)
                # Fast fused fallthrough: the charge folds into the
                # running segment; no control flow is emitted at all.
                return
            self.close_segment()
            self.exit_lines(target, "", cur_name)
            return
        # CBR
        self.close_segment()
        cond_op = instr.args[0]
        if self.pending_cond is not None:
            cond = self.pending_cond
            self.pending_cond = None
            self.flush_buf()
        elif isinstance(cond_op, Const):
            taken = instr.targets[0] if cond_op.value != 0 else instr.targets[1]
            self.g.specialized += 1
            if taken != next_name:
                self.exit_lines(taken, "", cur_name)
            elif self.hooked:
                self.emit_hook(cur_name, taken)
            return
        else:
            expr = self.read(cond_op)
            self.flush_buf()
            cond = f"{expr} != 0"
        t0, t1 = instr.targets[0], instr.targets[1]
        if t0 == next_name:
            self.emit(f"if not ({cond}):")
            self.exit_lines(t1, "    ", cur_name)
            if self.hooked:
                self.emit_hook(cur_name, t0)
        elif t1 == next_name:
            self.emit(f"if {cond}:")
            self.exit_lines(t0, "    ", cur_name)
            if self.hooked:
                self.emit_hook(cur_name, t1)
        else:
            self.emit(f"if {cond}:")
            self.exit_lines(t0, "    ", cur_name)
            self.exit_lines(t1, "", cur_name)

    # -- chain rendering -----------------------------------------------------

    def render(self) -> List[str]:
        g = self.g
        base = self.base
        # Arm entry: the budget check the old per-chain driver used to
        # run before every chain call -- the whole linear body must fit
        # or the driver resumes on tier-2 (flush first: when entered
        # via a transition, locals are the only current copy of the
        # registers).
        head = [
            f"{base}__n = __i.instructions",
            f"{base}if __n + {self.total} > __limit:",
        ]
        for slot in g.write_slots:
            head.append(f"{base}    s[{slot}] = r{slot}")
        head.append(f"{base}    return {self.index}")
        if self.loop_form:
            head.append(f"{base}while True:")
        self.entry_n_live = True
        for pos, name in enumerate(self.chain):
            block = self.blocks[name]
            next_name = self.chain[pos + 1] if pos + 1 < len(self.chain) else None
            # Segment index within this block's aligned tier-2 decode:
            # tier-2 splits after every CALL, plus every sync/xfer op in
            # the hooked variant; counting both keeps fallback anchors
            # aligned with the variant finish_* resumes on.
            splits = 0
            instructions = block.instructions
            terminated = False
            i = 0
            while i < len(instructions):
                instr = instructions[i]
                if instr.is_terminator:
                    self.emit_terminator(instr, next_name, name)
                    terminated = True
                    break
                nxt = instructions[i + 1] if i + 1 < len(instructions) else None
                if self.hooked and instr.opcode in _SYNC_OPS:
                    # Segment-final in tier 2: charge through the op,
                    # then run the hook with exact counters.
                    self.charge_op(instr)
                    splits += 1
                    self.close_segment()
                    meth = (
                        "exec_xfer"
                        if instr.opcode is Opcode.XFER
                        else "exec_sync"
                    )
                    ins = g.bind("ins", instr, ("ins", [name, i]))
                    self.emit(f"__i.{meth}(frame, {ins})")
                    i += 1
                    continue
                consumed = self.emit_op(instr, nxt)
                if instr.opcode is Opcode.CALL:
                    # Tier-2 segments split after every CALL; anchoring
                    # the budget re-check here keeps both backends'
                    # resume points aligned.
                    splits += 1
                    self.close_segment(new_check=(name, splits))
                i += consumed
            if not terminated:
                msg = f"block {name} fell through without terminator"
                self.buf.append(f"raise __RF({msg!r})")
                self.close_segment()
        return head + self.lines


# -- artifact instantiation ---------------------------------------------------


def _vreg_map(func: Function) -> Dict[int, VReg]:
    """uid -> VReg over everything the function mentions."""
    vregs: Dict[int, VReg] = {}
    for param in func.params:
        vregs[param.uid] = param
    for block in func.blocks.values():
        for instr in block.instructions:
            if instr.dest is not None:
                vregs[instr.dest.uid] = instr.dest
            for arg in instr.args:
                if isinstance(arg, VReg):
                    vregs[arg.uid] = arg
    return vregs


def _resolve_bind(interp, func: Function, vregs, kind, spec):
    """Rebuild one namespace binding from its artifact recipe."""
    if kind == "c" or kind == "nm":
        return spec
    if kind == "vr":
        return vregs[spec]
    if kind == "st":
        return interp.memory[spec]
    if kind == "ptr":
        name, base = spec
        return Pointer(interp.memory[name], base, name)
    if kind == "fn":
        return interp.module.functions[spec]
    if kind == "bb":
        return func.blocks[spec]
    if kind == "ins":
        bname, index = spec
        return func.blocks[bname].instructions[index]
    if kind == "sym":
        sym = interp.module.globals.get(spec)
        if sym is None:
            sym = func.locals[spec]
        return sym
    raise KeyError(f"unknown bind kind {kind!r}")


def _instantiate(
    interp, func: Function, hooked: bool, count_loads: bool, payload: dict
) -> Optional[SuperblockFunction]:
    """Replay a cached compile against a live interpreter, or None when
    the payload does not fit this function/interpreter (caller falls
    back to a fresh build)."""
    if (
        payload.get("codegen") != CODEGEN_VERSION
        or payload.get("function") != func.name
        or bool(payload.get("hooked")) != bool(hooked)
        or bool(payload.get("count_loads")) != bool(hooked and count_loads)
    ):
        return None
    chains = [list(chain) for chain in payload["chains"]]
    flat = [name for chain in chains for name in chain]
    if sorted(flat) != sorted(func.blocks):
        return None
    slot_map = allocate_slots(func)
    param_slots = tuple(slot_map[param.uid] for param in func.params)
    if (
        payload["nslots"] != len(slot_map)
        or list(payload["param_slots"]) != list(param_slots)
    ):
        return None
    lazy = _LazyDecode(interp, func, hooked, hooked and count_loads)
    ns = _base_namespace(interp, func, lazy)
    sblocks: Dict[str, Superblock] = {}
    for chain, max_instructions in zip(chains, payload["max_instructions"]):
        sb = Superblock()
        sb.head = chain[0]
        sb.chain = tuple(chain)
        sb.max_instructions = max_instructions
        sblocks[chain[0]] = sb
    vregs: Optional[Dict[int, VReg]] = None
    for name, kind, spec in payload["binds"]:
        if kind == "vr" and vregs is None:
            vregs = _vreg_map(func)
        ns[name] = _resolve_bind(interp, func, vregs, kind, spec)
    source = payload["source"]
    code = None
    if payload.get("cache_tag") == _CACHE_TAG and payload.get("bytecode"):
        try:
            code = marshal.loads(base64.b64decode(payload["bytecode"]))
        except Exception:
            code = None
    if code is None:
        code = compile(source, f"<superblocks:{func.name}>", "exec")
    exec(code, ns)
    return SuperblockFunction(
        func,
        len(slot_map),
        param_slots,
        sblocks[func.entry.name],
        sblocks,
        ns["__sb"],
        tuple(chain[0] for chain in chains),
        lazy,
        source,
        hooked,
        hooked and count_loads,
    )


def artifact_key(interp, func: Function, hooked: bool,
                 count_loads: bool) -> str:
    """Content address of one function's generated code.

    Covers everything the emitted source can embed as a literal: the
    codegen layout version, the function's printed IR (opcodes,
    operands, local sizes), the hook flags, the module's global-region
    sizes and known-function set, the cost model (cycle charges are
    literals in the source) and the block-profile projection for this
    function (chain formation is trace guided).  Machine fields the
    source never sees -- core counts, latencies -- are deliberately
    excluded, so jobs differing only in those share warm codegen.
    """
    from repro.ir.printer import function_to_str

    cost_model = interp.cost_model
    profile = interp.block_profile
    projection = None
    if profile:
        fname = func.name
        projection = sorted(
            (block, count)
            for (owner, block), count in profile.items()
            if owner == fname
        )
    spec = {
        "codegen": CODEGEN_VERSION,
        "ir": function_to_str(func),
        "hooked": bool(hooked),
        "count_loads": bool(hooked and count_loads),
        "globals": sorted(
            (name, len(init))
            for name, init in interp.module.global_inits.items()
        ),
        "functions": sorted(interp.module.functions),
        "costs": sorted(
            (opcode.value, cycles)
            for opcode, cycles in cost_model.costs.items()
        ),
        "float_extra": cost_model.float_extra,
        "profile": projection,
    }
    blob = json.dumps(spec, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# -- entry points -------------------------------------------------------------


def compile_superblocks(
    interp,
    func: Function,
    hooked: bool = False,
    count_loads: bool = False,
) -> SuperblockFunction:
    """Form, generate and compile all superblocks of ``func``.

    With ``hooked=True`` the generated chains call ``on_block_entry`` /
    ``exec_sync`` / ``exec_xfer`` at the decoded hooked variant's exact
    observation points (and statically count loads when ``count_loads``
    is set).  When the interpreter carries a ``codegen_cache``, the
    compile is content-addressed: a warm hit replays the stored source
    and namespace manifest and skips formation, rendering and (when the
    Python version matches) ``compile()`` entirely.
    """
    cache = getattr(interp, "codegen_cache", None)
    key = None
    if cache is not None:
        key = artifact_key(interp, func, hooked, count_loads)
        payload = cache.load(CODEGEN_KIND, key)
        sfunc = None
        if payload is not None:
            try:
                sfunc = _instantiate(interp, func, hooked, count_loads, payload)
            except Exception:
                sfunc = None
        if sfunc is not None:
            REGISTRY.inc("interp.codegen.cache.hit")
            if hooked:
                REGISTRY.inc("interp.superblock.hooked")
            return sfunc
        REGISTRY.inc("interp.codegen.cache.miss")
    gen = _FunctionCodegen(interp, func, hooked, count_loads)
    sfunc = gen.build()
    if hooked:
        REGISTRY.inc("interp.superblock.hooked")
    if cache is not None:
        cache.store(CODEGEN_KIND, key, gen.artifact(sfunc))
    return sfunc


def execute_superblocks(interp, sfunc: SuperblockFunction, frame) -> object:
    """Run one activation over compiled superblocks to its RET.

    The whole activation -- chain dispatch included -- runs inside the
    single generated function; a chain is only entered when the
    remaining instruction budget covers its entire linear body (each
    dispatch arm checks on entry), otherwise ``run`` flushes the
    register locals and returns the arm index, and the activation
    finishes on tier-2's exact per-instruction path from that chain's
    head, so ``ExecutionLimitExceeded`` fires at precisely the same
    dynamic instruction as the tree-walker.
    """
    limit = interp.max_instructions
    if limit is None:
        limit = _INF
    st = sfunc.run(frame, limit, 0)
    if st is None:
        return frame.ret
    REGISTRY.inc("interp.superblock.fallbacks")
    finish_decoded(interp, frame, sfunc.lazy(sfunc.heads[st]), 0, limit)
    return frame.ret


def execute_hooked_superblocks(
    interp, sfunc: SuperblockFunction, frame
) -> object:
    """Run one hooked activation over compiled superblocks to its RET.

    The activation-entry ``on_block_entry(frame, None, entry)`` is the
    driver's job (matching the decoded hooked variant); every later
    boundary hook lives inside the generated code, so a budget
    fallback resumes through :func:`finish_hooked` without re-announcing
    the block the chains already entered.
    """
    limit = interp.max_instructions
    if limit is None:
        limit = _INF
    interp.on_block_entry(frame, None, sfunc.func.entry)
    st = sfunc.run(frame, limit, 0)
    if st is None:
        return frame.ret
    REGISTRY.inc("interp.superblock.fallbacks")
    finish_hooked(interp, frame, sfunc.lazy(sfunc.heads[st]), 0, limit)
    return frame.ret
