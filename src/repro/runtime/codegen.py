"""Superblock-fused, code-generated interpreter backend (tier 3).

The decoded backend (:mod:`repro.runtime.precompile`, tier 2) removed
per-instruction dispatch and operand classification, but still pays one
Python closure call per dynamic instruction plus a ``for eff in
effects`` loop per block.  This module removes those too:

* **Superblock formation** -- basic blocks are grouped into maximal
  single-entry chains (superblocks).  A successor is fused into the
  chain when it is the sole target of the chain's current terminator
  (BR) or one arm of a CBR, and it has exactly one predecessor edge in
  the function's CFG.  When the chain terminator is a CBR with both
  arms fusable, the *hot* arm is chosen from
  ``Interpreter.block_profile`` dynamic block-entry counts when
  available, statically (first target) otherwise.  Chains are capped at
  :data:`MAX_CHAIN_BLOCKS` blocks.
* **Code generation / quickening** -- each superblock becomes one
  generated Python function (``compile()``-ed once per
  ``Interpreter``): registers are promoted to Python locals over the
  tier-2 slot file, constants are folded into the source, arithmetic
  and compare handlers are inlined (with the tree-walker's exact 64-bit
  wrap semantics), compare+CBR pairs and LEA/PTRADD + LOADP/STOREP
  pairs are fused, and cycle/instruction accounting is charged once per
  segment instead of once per instruction.
* **Exactness fallback** -- output, cycle and instruction counts,
  ``RuntimeFault`` messages and ``ExecutionLimitExceeded`` behavior are
  bit-identical to the tree-walker.  The driver only enters a
  superblock when the instruction budget covers its whole linear body;
  after every CALL (which consumes budget in the callee) the generated
  code re-checks, and when the budget could expire inside the fused
  region it flushes locals back to the slot file and resumes tier-2
  execution via :func:`repro.runtime.precompile.finish_decoded` at the
  aligned post-CALL segment boundary, whose per-instruction slow path
  fires the limit at precisely the same dynamic instruction as the
  walker.  Loop-shaped superblocks re-check the full body budget on
  every back edge.

Assumptions baked into the generated source (shared with tier 2):
global regions are reset *in place* (their backing lists -- and hence
their lengths -- are stable across runs), so bounds checks against
known globals embed the region size as a literal.  The only tolerated
divergence from the walker, as in tier 2: after a non-limit
``RuntimeFault`` aborts a run mid-segment, the dead interpreter's
counters may include instructions from the faulting segment that never
executed (no result object is produced on a fault).

Counters (:mod:`repro.obs.metrics`): ``interp.superblock.formed``,
``interp.superblock.blocks_fused``, ``interp.codegen.specialized_ops``,
``interp.codegen.functions`` at compile time and
``interp.superblock.fallbacks`` per exactness-fallback activation.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Tuple

from repro.ir import Function, Instruction, Opcode
from repro.ir.operands import Const, Symbol, VReg
from repro.ir.types import Type
from repro.obs.metrics import REGISTRY
from repro.runtime.interpreter import (
    _BINARY_HANDLERS,
    Pointer,
    RuntimeFault,
    _arith_div,
    _arith_mod,
    format_value,
)
from repro.runtime.precompile import (
    _UNDEF,
    DecodedFunction,
    _ftoi,
    _neg,
    _not,
    _undef,
    finish_decoded,
)

_INF = float("inf")

#: Upper bound on blocks fused into one superblock (bounds source size).
MAX_CHAIN_BLOCKS = 64

# 64-bit two's complement wrap, inlined: 2**63 and 2**64 - 1.
_O = "9223372036854775808"
_M = "18446744073709551615"

#: Region/function names safe to splice verbatim into an f-string message.
_SAFE_NAME_RE = re.compile(r"[A-Za-z0-9_.$@:\-]+\Z")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

_CMP_OPS = {
    Opcode.EQ: "==",
    Opcode.NE: "!=",
    Opcode.LT: "<",
    Opcode.LE: "<=",
    Opcode.GT: ">",
    Opcode.GE: ">=",
}
_ARITH_OPS = {Opcode.ADD: "+", Opcode.SUB: "-", Opcode.MUL: "*"}
_BIT_OPS = {Opcode.AND: "&", Opcode.OR: "|", Opcode.XOR: "^"}
_UNARY_FOLDS = {
    Opcode.NEG: _neg,
    Opcode.NOT: _not,
    Opcode.ITOF: float,
    Opcode.FTOI: _ftoi,
}


def _wrap(expr: str) -> str:
    """Source form of ``wrap_int(expr)`` for a known-int expression."""
    return f"((({expr}) + {_O}) & {_M}) - {_O}"


def _literal(value) -> Optional[str]:
    """Render ``value`` as a Python literal, or None if not exactly
    representable (bools and non-finite floats are refused)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if isinstance(value, float) and not (
        value == value and value not in (_INF, -_INF)
    ):
        return None
    text = repr(value)
    return f"({text})" if text.startswith("-") else text


# -- superblock formation -----------------------------------------------------


def _first_terminator(block) -> Optional[Instruction]:
    for instr in block.instructions:
        if instr.is_terminator:
            return instr
    return None


def _fusable_successor(
    func: Function,
    term: Optional[Instruction],
    claimed,
    preds: Dict[str, int],
    block_profile: Optional[Mapping[Tuple[str, str], int]],
) -> Optional[str]:
    """The block to extend the chain with, or None to stop."""
    if term is None or term.opcode is Opcode.RET:
        return None
    blocks = func.blocks

    def ok(name: str) -> bool:
        return name in blocks and name not in claimed and preds.get(name, 0) == 1

    if term.opcode is Opcode.BR:
        target = term.targets[0]
        return target if ok(target) else None
    # CBR: fuse along any fusable arm; prefer the profiled-hot one.
    candidates = [t for t in term.targets if ok(t)]
    if not candidates:
        return None
    if block_profile and len(candidates) > 1:
        fname = func.name
        return max(candidates, key=lambda t: block_profile.get((fname, t), 0))
    return candidates[0]


def form_superblocks(
    func: Function,
    block_profile: Optional[Mapping[Tuple[str, str], int]] = None,
) -> List[List[str]]:
    """Partition ``func``'s blocks into single-entry chains.

    Every block lands in exactly one chain; the entry block always
    heads the first chain.  Interior blocks of a chain have exactly one
    CFG predecessor (the fused edge), which guarantees that every side
    exit of every chain targets a chain *head* -- the invariant the
    generated code relies on to dispatch between superblocks.
    """
    blocks = func.blocks
    terms = {name: _first_terminator(b) for name, b in blocks.items()}
    preds: Dict[str, int] = {}
    for term in terms.values():
        if term is not None and term.opcode is not Opcode.RET:
            for target in term.targets:
                if target in blocks:
                    preds[target] = preds.get(target, 0) + 1
    entry_name = func.entry.name
    order = [entry_name] + [n for n in blocks if n != entry_name]
    claimed = set()
    chains: List[List[str]] = []
    for head in order:
        if head in claimed:
            continue
        chain = [head]
        claimed.add(head)
        current = head
        while len(chain) < MAX_CHAIN_BLOCKS:
            nxt = _fusable_successor(
                func, terms[current], claimed, preds, block_profile
            )
            if nxt is None:
                break
            chain.append(nxt)
            claimed.add(nxt)
            current = nxt
        chains.append(chain)
    return chains


# -- compiled artifacts -------------------------------------------------------


class Superblock:
    """One compiled chain: its generated function plus fallback anchors."""

    __slots__ = ("head", "chain", "run", "max_instructions", "dblock")

    def __init__(self) -> None:
        self.head = ""
        self.chain: Tuple[str, ...] = ()
        #: ``run(frame, limit)`` -> next Superblock or None (RET taken).
        self.run = None
        #: Linear instruction count of the whole chain: an upper bound
        #: on what one pass (one loop iteration) can charge.
        self.max_instructions = 0
        #: Tier-2 decoded block of the head, for the exactness fallback.
        self.dblock = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<superblock {'+'.join(self.chain)}>"


class SuperblockFunction:
    """All superblocks of one function, compiled against one interpreter."""

    __slots__ = (
        "func", "nslots", "param_slots", "entry", "blocks", "dfunc", "source"
    )

    def __init__(
        self,
        func: Function,
        nslots: int,
        param_slots: Tuple[int, ...],
        entry: Superblock,
        blocks: Dict[str, Superblock],
        dfunc: DecodedFunction,
        source: str,
    ) -> None:
        self.func = func
        self.nslots = nslots
        self.param_slots = param_slots
        self.entry = entry
        self.blocks = blocks
        self.dfunc = dfunc
        #: Generated Python source, kept for tests and debugging.
        self.source = source


# -- code generation ----------------------------------------------------------


class _FunctionCodegen:
    """Generates and compiles the superblock source for one function."""

    def __init__(self, interp, func: Function, dfunc: DecodedFunction) -> None:
        self.interp = interp
        self.func = func
        self.dfunc = dfunc
        self.slot_map = dfunc.slot_map
        self.cost_model = interp.cost_model
        self.specialized = 0
        #: Globals of the generated module: runtime objects pre-bound
        #: under stable dunder names.
        self.ns: Dict[str, object] = {
            "__I": interp,
            "__U": _UNDEF,
            "__undef": _undef,
            "__RF": RuntimeFault,
            "__Ptr": Pointer,
            "__fmt": format_value,
            "__div": _arith_div,
            "__mod": _arith_mod,
            "__call": interp.call_function,
            "__fin": finish_decoded,
            "__inc": REGISTRY.inc,
            "__fb": func.blocks,
            "__FN": func.name,
        }
        self._binds: Dict[Tuple[str, int], str] = {}
        self._ptr_cache: Dict[Tuple[int, object, str], str] = {}
        #: VReg uid -> number of argument occurrences function-wide.
        self.uses: Dict[int, int] = {}
        for block in func.blocks.values():
            for instr in block.instructions:
                for arg in instr.args:
                    if isinstance(arg, VReg):
                        self.uses[arg.uid] = self.uses.get(arg.uid, 0) + 1

    def bind(self, prefix: str, obj) -> str:
        """Expose ``obj`` to the generated code under a memoized name."""
        key = (prefix, id(obj))
        name = self._binds.get(key)
        if name is None:
            name = f"__{prefix}{len(self._binds)}"
            self._binds[key] = name
            self.ns[name] = obj
        return name

    def pointer_for(self, store: List, base, name: str) -> str:
        """A pre-built Pointer into a stable (global) region."""
        key = (id(store), base, name)
        bound = self._ptr_cache.get(key)
        if bound is None:
            bound = self.bind("ptr", Pointer(store, base, name))
            self._ptr_cache[key] = bound
        return bound

    def cost(self, instr: Instruction) -> int:
        is_float = instr.dest is not None and instr.dest.type is Type.FLOAT
        return self.cost_model.cycles(instr.opcode, is_float)

    def const_expr(self, operand: Const) -> str:
        lit = _literal(operand.value)
        return lit if lit is not None else self.bind("c", operand.value)

    def fstr_name(self, name: str) -> str:
        """Fragment rendering ``name`` inside a generated f-string."""
        if _SAFE_NAME_RE.match(name):
            return name
        return "{" + self.bind("nm", name) + "}"

    def build(self) -> SuperblockFunction:
        func = self.func
        chains = form_superblocks(func, self.interp.block_profile)
        sblocks: Dict[str, Superblock] = {}
        sb_names: Dict[str, str] = {}
        for i, chain in enumerate(chains):
            sb = Superblock()
            sb.head = chain[0]
            sb.chain = tuple(chain)
            sb.dblock = self.dfunc.blocks[chain[0]]
            sblocks[chain[0]] = sb
            sb_names[chain[0]] = self.bind("SB", sb)
        parts = [
            _ChainEmitter(self, chain, i, sblocks[chain[0]], sb_names).render()
            for i, chain in enumerate(chains)
        ]
        source = "\n".join(parts)
        code = compile(source, f"<superblocks:{func.name}>", "exec")
        exec(code, self.ns)
        for i, chain in enumerate(chains):
            sblocks[chain[0]].run = self.ns[f"__sb{i}"]
        REGISTRY.inc("interp.superblock.formed", len(chains))
        REGISTRY.inc(
            "interp.superblock.blocks_fused",
            sum(len(chain) - 1 for chain in chains),
        )
        if self.specialized:
            REGISTRY.inc("interp.codegen.specialized_ops", self.specialized)
        REGISTRY.inc("interp.codegen.functions")
        return SuperblockFunction(
            func,
            self.dfunc.nslots,
            self.dfunc.param_slots,
            sblocks[func.entry.name],
            sblocks,
            self.dfunc,
            source,
        )


class _ChainEmitter:
    """Renders one superblock chain as one generated Python function.

    Layout of the generated function (loop form adds ``while True:``)::

        def __sb3(frame, __limit):
            __i = __I
            s = frame.slots
            <charge segment>; <ops>; ...; <exit: return <Superblock>|None>

    Registers live in locals ``r<slot>`` (lazily loaded from the slot
    file with the walker's undefined-register check) and are flushed
    back to ``frame.slots`` at every exit, back edge and fallback so
    tier-2 can resume from consistent state.  Charges are emitted
    *before* each segment's operations, exactly like tier 2's fast
    path; a segment that follows a CALL first re-checks the remaining
    linear budget and diverts to :func:`finish_decoded` when the limit
    could expire before the chain ends.
    """

    def __init__(self, g: _FunctionCodegen, chain, index, sb, sb_names) -> None:
        self.g = g
        self.chain = chain
        self.index = index
        self.sb = sb
        self.sb_names = sb_names
        self.blocks = g.func.blocks
        # Prescan: linear instruction total and loop shape.
        total = 0
        loop_form = False
        for name in chain:
            block = self.blocks[name]
            term = _first_terminator(block)
            if term is None:
                total += len(block.instructions)
            else:
                total += block.instructions.index(term) + 1
                if term.opcode is not Opcode.RET and chain[0] in term.targets:
                    loop_form = True
        self.total = total
        self.loop_form = loop_form
        sb.max_instructions = total
        self.indent = "        " if loop_form else "    "
        self.lines: List[str] = []
        self.buf: List[str] = []
        self.seg_count = 0
        self.seg_cycles = 0
        self.charged = 0
        self.pending_check: Optional[Tuple[str, int]] = None
        self.pending_cond: Optional[str] = None
        self.defined: set = set()
        self.written_prev: Dict[int, bool] = {}
        self.written_cur: Dict[int, bool] = {}
        self.local_regions: Dict[str, str] = {}
        self._tmp = 0

    # -- small helpers -------------------------------------------------------

    def tmp(self) -> str:
        self._tmp += 1
        return f"__t{self._tmp}"

    def emit(self, line: str, extra: str = "") -> None:
        self.lines.append(self.indent + extra + line)

    def flush_buf(self) -> None:
        ind = self.indent
        self.lines.extend(ind + line for line in self.buf)
        self.buf = []

    def as_name(self, expr: str) -> str:
        """Materialize ``expr`` into a local if it isn't a plain name."""
        if _IDENT_RE.match(expr):
            return expr
        name = self.tmp()
        self.buf.append(f"{name} = {expr}")
        return name

    def charge_op(self, instr: Instruction) -> None:
        self.seg_count += 1
        self.seg_cycles += self.g.cost(instr)

    # -- operand access ------------------------------------------------------

    def read(self, operand) -> str:
        g = self.g
        if isinstance(operand, Const):
            return g.const_expr(operand)
        if isinstance(operand, VReg):
            slot = g.slot_map[operand.uid]
            name = f"r{slot}"
            if slot not in self.defined:
                self.defined.add(slot)
                reg = g.bind("vr", operand)
                self.buf.append(f"{name} = s[{slot}]")
                self.buf.append(f"if {name} is __U:")
                self.buf.append(f"    __undef({reg}, __FN)")
            return name
        return self.sym_pointer(operand)

    def sym_pointer(self, sym: Symbol) -> str:
        """A Symbol operand decaying to a Pointer, as in eval_operand."""
        g = self.g
        if sym.is_global:
            store = g.interp.memory.get(sym.name)
            if store is not None:
                g.specialized += 1
                return g.pointer_for(store, 0, sym.name)
            sname = g.bind("sym", sym)
            name = self.tmp()
            self.buf.append(
                f"{name} = __Ptr(__i.region_of({sname}, frame), 0, "
                f"{sym.name!r})"
            )
            return name
        region = self.local_store(sym)
        name = self.tmp()
        self.buf.append(f"{name} = __Ptr({region}, 0, {sym.name!r})")
        return name

    def local_store(self, sym: Symbol) -> str:
        name = self.local_regions.get(sym.name)
        if name is None:
            sname = self.g.bind("sym", sym)
            name = f"__lm{len(self.local_regions)}"
            self.local_regions[sym.name] = name
            self.buf.append(f"{name} = frame.local_region({sname})")
        return name

    def store_ref(self, sym: Symbol) -> Tuple[str, Optional[int]]:
        """(store expression, static size or None) for LEA/LOADG/STOREG.

        Emitted *after* the index read, matching the walker's operand
        order.  Known-global and local region sizes are static: regions
        are reset in place and never resized.
        """
        g = self.g
        if sym.is_global:
            store = g.interp.memory.get(sym.name)
            if store is not None:
                return g.bind("st", store), len(store)
            sname = g.bind("sym", sym)
            name = self.tmp()
            self.buf.append(f"{name} = __i.region_of({sname}, frame)")
            return name, None
        return self.local_store(sym), sym.size

    def wreg(self, reg: VReg) -> str:
        slot = self.g.slot_map[reg.uid]
        self.defined.add(slot)
        self.written_cur[slot] = True
        return f"r{slot}"

    def bounds(self, kind: str, name_frag: str, index: str,
               store: str, size: Optional[int]) -> None:
        """Emit the walker's bounds check + fault message."""
        if size is not None:
            self.buf.append(f"if {index} < 0 or {index} >= {size}:")
            self.buf.append(
                f'    raise __RF(f"{kind} out of bounds: '
                f'{name_frag}[{{{index}}}] (size {size})")'
            )
        else:
            self.buf.append(f"if {index} < 0 or {index} >= len({store}):")
            self.buf.append(
                f'    raise __RF(f"{kind} out of bounds: '
                f'{name_frag}[{{{index}}}] (size {{len({store})}})")'
            )

    # -- segment charging ----------------------------------------------------

    def close_segment(self, new_check: Optional[Tuple[str, int]] = None) -> None:
        """Emit the pending charge block, then the buffered op lines.

        When a CALL preceded this segment (``pending_check``), the
        charge is guarded by a conservative remaining-budget test: if
        the rest of the chain's linear body might not fit, flush the
        locals *written by already-executed segments* and resume tier-2
        at the aligned post-CALL segment of the call's block.
        """
        out = self.lines
        ind = self.indent
        count, cycles = self.seg_count, self.seg_cycles
        check = self.pending_check
        if check is not None and count:
            dbname, seg_index = check
            remaining = self.total - self.charged
            out.append(f"{ind}__n = __i.instructions")
            out.append(f"{ind}if __n + {remaining} > __limit:")
            for slot in self.written_prev:
                out.append(f"{ind}    s[{slot}] = r{slot}")
            out.append(f"{ind}    __inc('interp.superblock.fallbacks')")
            out.append(f"{ind}    __fin(__i, frame, {dbname}, {seg_index}, __limit)")
            out.append(f"{ind}    return None")
            out.append(f"{ind}__i.instructions = __n + {count}")
            if cycles:
                out.append(f"{ind}__i.cycles += {cycles}")
            self.pending_check = None
        else:
            if count:
                out.append(f"{ind}__i.instructions += {count}")
            if cycles:
                out.append(f"{ind}__i.cycles += {cycles}")
        out.extend(ind + line for line in self.buf)
        self.buf = []
        self.charged += count
        self.seg_count = 0
        self.seg_cycles = 0
        self.written_prev.update(self.written_cur)
        self.written_cur.clear()
        if new_check is not None:
            self.pending_check = new_check

    # -- exits ---------------------------------------------------------------

    def exit_lines(self, target: str, extra: str) -> None:
        """Leave the superblock towards ``target`` (always a chain head)."""
        out = self.lines
        ind = self.indent + extra
        if self.loop_form and target == self.chain[0]:
            # Back edge: next iteration re-charges the full linear body,
            # so re-check it; over budget -> let the driver fall back.
            out.append(f"{ind}if __i.instructions + {self.total} > __limit:")
            for slot in self.written_prev:
                out.append(f"{ind}    s[{slot}] = r{slot}")
            out.append(f"{ind}    return {self.sb_names[target]}")
            for slot in self.written_prev:
                out.append(f"{ind}s[{slot}] = r{slot}")
            out.append(f"{ind}continue")
            return
        if target not in self.blocks:
            # Dangling branch target: KeyError, like the walker's
            # func.blocks[name] lookup.
            out.append(f"{ind}__fb[{target!r}]")
            return
        for slot in self.written_prev:
            out.append(f"{ind}s[{slot}] = r{slot}")
        out.append(f"{ind}return {self.sb_names[target]}")

    # -- instruction emission ------------------------------------------------

    def emit_op(self, instr: Instruction, nxt: Optional[Instruction]) -> int:
        """Emit one non-terminator op (or a fused pair); returns the
        number of instructions consumed."""
        g = self.g
        buf = self.buf
        op = instr.opcode

        # LEA/PTRADD + LOADP/STOREP pair fusion: the intermediate
        # pointer register is consumed exactly once, by the next op.
        if (
            op in (Opcode.LEA, Opcode.PTRADD)
            and instr.dest is not None
            and nxt is not None
            and nxt.opcode in (Opcode.LOADP, Opcode.STOREP)
            and isinstance(nxt.args[0], VReg)
            and nxt.args[0].uid == instr.dest.uid
            and g.uses.get(instr.dest.uid, 0) == 1
        ):
            self.emit_pair(instr, nxt)
            return 2

        if op is Opcode.MOV:
            self.charge_op(instr)
            expr = self.read(instr.args[0])
            buf.append(f"{self.wreg(instr.dest)} = {expr}")
            return 1

        handler = _BINARY_HANDLERS.get(op)
        if handler is not None:
            self.charge_op(instr)
            a_op, b_op = instr.args
            # compare + CBR fusion: skip the register store, stash the
            # condition expression for the terminator.
            if (
                op in _CMP_OPS
                and nxt is not None
                and nxt.opcode is Opcode.CBR
                and isinstance(nxt.args[0], VReg)
                and nxt.args[0].uid == instr.dest.uid
                and g.uses.get(instr.dest.uid, 0) == 1
            ):
                a = self.read(a_op)
                b = self.read(b_op)
                self.pending_cond = f"{a} {_CMP_OPS[op]} {b}"
                g.specialized += 1
                return 1
            if isinstance(a_op, Const) and isinstance(b_op, Const):
                try:
                    value = handler(a_op.value, b_op.value)
                except Exception:
                    value = None
                else:
                    lit = _literal(value)
                    if lit is not None:
                        buf.append(f"{self.wreg(instr.dest)} = {lit}")
                        g.specialized += 1
                        return 1
            a = self.read(a_op)
            b = self.read(b_op)
            dest = self.wreg(instr.dest)
            if op in _CMP_OPS:
                buf.append(f"{dest} = 1 if {a} {_CMP_OPS[op]} {b} else 0")
            elif op in _ARITH_OPS:
                t = self.tmp()
                buf.append(f"{t} = {a} {_ARITH_OPS[op]} {b}")
                buf.append(
                    f"{dest} = ({_wrap(t)}) if isinstance({t}, int) else {t}"
                )
            elif op in _BIT_OPS:
                buf.append(f"{dest} = {_wrap(f'{a} {_BIT_OPS[op]} {b}')}")
            elif op is Opcode.DIV:
                buf.append(f"{dest} = __div({a}, {b})")
            elif op is Opcode.MOD:
                buf.append(f"{dest} = __mod({a}, {b})")
            else:  # SHL / SHR
                buf.append(f"if {b} < 0 or {b} > 63:")
                buf.append(
                    f'    raise __RF(f"shift amount {{{b}}} out of range")'
                )
                if op is Opcode.SHL:
                    buf.append(f"{dest} = {_wrap(f'{a} << {b}')}")
                else:
                    buf.append(f"{dest} = {a} >> {b}")
            return 1

        fold = _UNARY_FOLDS.get(op)
        if fold is not None:
            self.charge_op(instr)
            a_op = instr.args[0]
            if isinstance(a_op, Const):
                try:
                    lit = _literal(fold(a_op.value))
                except Exception:
                    lit = None
                if lit is not None:
                    buf.append(f"{self.wreg(instr.dest)} = {lit}")
                    g.specialized += 1
                    return 1
            a = self.read(a_op)
            dest = self.wreg(instr.dest)
            if op is Opcode.NEG:
                buf.append(
                    f"{dest} = ({_wrap(f'-{a}')}) "
                    f"if isinstance({a}, int) else -{a}"
                )
            elif op is Opcode.NOT:
                buf.append(f"{dest} = 1 if {a} == 0 else 0")
            elif op is Opcode.ITOF:
                buf.append(f"{dest} = float({a})")
            else:  # FTOI
                buf.append(f"{dest} = {_wrap(f'int({a})')}")
            return 1

        if op is Opcode.LEA:
            self.charge_op(instr)
            sym = instr.args[0]
            idx_op = instr.args[1]
            store = g.interp.memory.get(sym.name) if sym.is_global else None
            if store is not None and isinstance(idx_op, Const):
                pointer = g.pointer_for(store, idx_op.value, sym.name)
                buf.append(f"{self.wreg(instr.dest)} = {pointer}")
                g.specialized += 1
                return 1
            index = self.read(idx_op)
            region, _size = self.store_ref(sym)
            buf.append(
                f"{self.wreg(instr.dest)} = __Ptr({region}, {index}, "
                f"{sym.name!r})"
            )
            return 1

        if op is Opcode.PTRADD:
            self.charge_op(instr)
            ptr = self.read(instr.args[0])
            delta = self.read(instr.args[1])
            p = self.as_name(ptr)
            buf.append(f"if not isinstance({p}, __Ptr):")
            buf.append(f'    raise __RF(f"PTRADD on non-pointer {{{p}!r}}")')
            buf.append(
                f"{self.wreg(instr.dest)} = "
                f"__Ptr({p}.store, {p}.base + {delta}, {p}.region)"
            )
            return 1

        if op is Opcode.LOADG or op is Opcode.STOREG:
            self.charge_op(instr)
            sym = instr.args[0]
            kind = "load" if op is Opcode.LOADG else "store"
            index = self.read(instr.args[1])
            value = self.read(instr.args[2]) if op is Opcode.STOREG else None
            region, size = self.store_ref(sym)
            idx_op = instr.args[1]
            if size is not None and isinstance(idx_op, Const) and not isinstance(
                idx_op.value, bool
            ) and isinstance(idx_op.value, int):
                # Statically decidable bounds: elide the check, or fault
                # unconditionally with the walker's exact message.
                if 0 <= idx_op.value < size:
                    g.specialized += 1
                else:
                    msg = (
                        f"{kind} out of bounds: {sym.name}[{idx_op.value}] "
                        f"(size {size})"
                    )
                    buf.append(f"raise __RF({msg!r})")
                    return 1
            else:
                self.bounds(kind, g.fstr_name(sym.name), index, region, size)
            if op is Opcode.LOADG:
                buf.append(f"{self.wreg(instr.dest)} = {region}[{index}]")
            else:
                buf.append(f"{region}[{index}] = {value}")
            return 1

        if op is Opcode.LOADP or op is Opcode.STOREP:
            self.charge_op(instr)
            kind = "load" if op is Opcode.LOADP else "store"
            opname = "LOADP" if op is Opcode.LOADP else "STOREP"
            ptr = self.read(instr.args[0])
            index = self.read(instr.args[1])
            value = self.read(instr.args[2]) if op is Opcode.STOREP else None
            p = self.as_name(ptr)
            buf.append(f"if not isinstance({p}, __Ptr):")
            buf.append(
                f'    raise __RF(f"{opname} on non-pointer {{{p}!r}}")'
            )
            slot = self.tmp()
            buf.append(f"{slot} = {p}.base + {index}")
            store = self.tmp()
            buf.append(f"{store} = {p}.store")
            self.bounds(kind, f"{{{p}.region}}", slot, store, None)
            if op is Opcode.LOADP:
                buf.append(f"{self.wreg(instr.dest)} = {store}[{slot}]")
            else:
                buf.append(f"{store}[{slot}] = {value}")
            return 1

        if op is Opcode.CALL:
            self.charge_op(instr)
            args = [self.read(a) for a in instr.args]
            callee = g.interp.module.functions.get(instr.callee)
            arglist = ", ".join(args)
            if callee is not None:
                call = f"__call({g.bind('fn', callee)}, [{arglist}])"
            else:
                # Unknown callee: KeyError at execution, like the walker.
                call = (
                    f"__call(__i.module.functions[{instr.callee!r}], "
                    f"[{arglist}])"
                )
            if instr.dest is not None:
                buf.append(f"{self.wreg(instr.dest)} = {call}")
            else:
                buf.append(call)
            return 1

        if op is Opcode.PRINT:
            self.charge_op(instr)
            expr = self.read(instr.args[0])
            buf.append(f"__i.output.append(__fmt({expr}))")
            return 1

        if op in (Opcode.WAIT, Opcode.SIGNAL, Opcode.NEXT_ITER, Opcode.XFER):
            # Timing-only in the fast variant: charge, no effect.
            self.charge_op(instr)
            return 1

        # Verifier-rejected shapes: fault at execution, like the walker.
        self.charge_op(instr)  # pragma: no cover - defensive
        buf.append(f"raise __RF({f'cannot execute opcode {op}'!r})")
        return 1

    def emit_pair(self, first: Instruction, second: Instruction) -> None:
        """Fused LEA/PTRADD + LOADP/STOREP: the Pointer is never built."""
        g = self.g
        buf = self.buf
        self.charge_op(first)
        self.charge_op(second)
        g.specialized += 2
        kind = "load" if second.opcode is Opcode.LOADP else "store"
        if first.opcode is Opcode.LEA:
            sym = first.args[0]
            base = self.read(first.args[1])
            region, size = self.store_ref(sym)
            index = self.read(second.args[1])
            value = (
                self.read(second.args[2])
                if second.opcode is Opcode.STOREP
                else None
            )
            slot = self.tmp()
            buf.append(f"{slot} = {base} + {index}")
            self.bounds(kind, g.fstr_name(sym.name), slot, region, size)
            if second.opcode is Opcode.LOADP:
                buf.append(f"{self.wreg(second.dest)} = {region}[{slot}]")
            else:
                buf.append(f"{region}[{slot}] = {value}")
            return
        # PTRADD + LOADP/STOREP
        ptr = self.read(first.args[0])
        delta = self.read(first.args[1])
        p = self.as_name(ptr)
        buf.append(f"if not isinstance({p}, __Ptr):")
        buf.append(f'    raise __RF(f"PTRADD on non-pointer {{{p}!r}}")')
        index = self.read(second.args[1])
        value = (
            self.read(second.args[2])
            if second.opcode is Opcode.STOREP
            else None
        )
        slot = self.tmp()
        buf.append(f"{slot} = {p}.base + {delta} + {index}")
        store = self.tmp()
        buf.append(f"{store} = {p}.store")
        self.bounds(kind, f"{{{p}.region}}", slot, store, None)
        if second.opcode is Opcode.LOADP:
            buf.append(f"{self.wreg(second.dest)} = {store}[{slot}]")
        else:
            buf.append(f"{store}[{slot}] = {value}")

    # -- terminators ---------------------------------------------------------

    def emit_terminator(
        self, instr: Instruction, next_name: Optional[str]
    ) -> None:
        op = instr.opcode
        self.seg_count += 1
        self.seg_cycles += self.g.cost(instr)
        if op is Opcode.RET:
            self.close_segment()
            if instr.args:
                expr = self.read(instr.args[0])
                self.flush_buf()
                self.emit(f"frame.ret = {expr}")
            # Slots die with the frame on RET: no flush needed.
            self.emit("return None")
            return
        if op is Opcode.BR:
            target = instr.targets[0]
            if target == next_name:
                # Fused fallthrough: the charge folds into the running
                # segment; no control flow is emitted at all.
                return
            self.close_segment()
            self.exit_lines(target, "")
            return
        # CBR
        self.close_segment()
        cond_op = instr.args[0]
        if self.pending_cond is not None:
            cond = self.pending_cond
            self.pending_cond = None
            self.flush_buf()
        elif isinstance(cond_op, Const):
            taken = instr.targets[0] if cond_op.value != 0 else instr.targets[1]
            self.g.specialized += 1
            if taken != next_name:
                self.exit_lines(taken, "")
            return
        else:
            expr = self.read(cond_op)
            self.flush_buf()
            cond = f"{expr} != 0"
        t0, t1 = instr.targets[0], instr.targets[1]
        if t0 == next_name:
            self.emit(f"if not ({cond}):")
            self.exit_lines(t1, "    ")
        elif t1 == next_name:
            self.emit(f"if {cond}:")
            self.exit_lines(t0, "    ")
        else:
            self.emit(f"if {cond}:")
            self.exit_lines(t0, "    ")
            self.exit_lines(t1, "")

    # -- chain rendering -----------------------------------------------------

    def render(self) -> str:
        g = self.g
        head = [
            f"def __sb{self.index}(frame, __limit):",
            "    __i = __I",
            "    s = frame.slots",
        ]
        if self.loop_form:
            head.append("    while True:")
        for pos, name in enumerate(self.chain):
            block = self.blocks[name]
            dbname = g.bind("db", g.dfunc.blocks[name])
            next_name = self.chain[pos + 1] if pos + 1 < len(self.chain) else None
            calls_seen = 0
            instructions = block.instructions
            terminated = False
            i = 0
            while i < len(instructions):
                instr = instructions[i]
                if instr.is_terminator:
                    self.emit_terminator(instr, next_name)
                    terminated = True
                    break
                nxt = instructions[i + 1] if i + 1 < len(instructions) else None
                consumed = self.emit_op(instr, nxt)
                if instr.opcode is Opcode.CALL:
                    # Tier-2 segments split after every CALL; anchoring
                    # the budget re-check here keeps both backends'
                    # resume points aligned.
                    calls_seen += 1
                    self.close_segment(new_check=(dbname, calls_seen))
                i += consumed
            if not terminated:
                msg = f"block {name} fell through without terminator"
                self.buf.append(f"raise __RF({msg!r})")
                self.close_segment()
        return "\n".join(head + self.lines) + "\n"


# -- entry points -------------------------------------------------------------


def compile_superblocks(
    interp, func: Function, dfunc: DecodedFunction
) -> SuperblockFunction:
    """Form, generate and compile all superblocks of ``func``."""
    return _FunctionCodegen(interp, func, dfunc).build()


def execute_superblocks(interp, sfunc: SuperblockFunction, frame) -> object:
    """Run one activation over compiled superblocks to its RET.

    A superblock is only entered when the remaining instruction budget
    covers its entire linear body; otherwise the activation finishes on
    tier-2's exact per-instruction path from the same block, so
    ``ExecutionLimitExceeded`` fires at precisely the same dynamic
    instruction as the tree-walker.
    """
    limit = interp.max_instructions
    if limit is None:
        limit = _INF
    sb = sfunc.entry
    while True:
        if interp.instructions + sb.max_instructions > limit:
            REGISTRY.inc("interp.superblock.fallbacks")
            finish_decoded(interp, frame, sb.dblock, 0, limit)
            return frame.ret
        nxt = sb.run(frame, limit)
        if nxt is None:
            return frame.ret
        sb = nxt
