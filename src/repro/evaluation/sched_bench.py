"""Trace-scheduler benchmarks (``repro bench-sched``).

Times multi-machine sweep replay -- the read path behind Figures 9-13,
the prefetching study and the latency sweep -- with the compiled
scheduling engine (compact traces + memoized baseline +
:meth:`~repro.runtime.parallel.ParallelExecutor.replay_many`) against
the original per-event reference engine, which rescheduled the baseline
machine alongside every swept machine
(:func:`~repro.runtime.sched.schedule_invocation_reference` twice per
trace per machine).

Every timed pair is also a differential check: per machine, the two
engines must produce field-exact :class:`ScheduleResult` columns,
identical adjusted cycle counts and identical
:class:`~repro.runtime.parallel.LoopRunStats`, or the run aborts.  The
compiled side is timed cold -- its per-trace program compilation and the
baseline schedules are recomputed inside the timed region -- so the
reported speedup includes every cost the new representation adds.

The JSON report (``BENCH_sched.json`` by convention) accumulates the
repo's perf trajectory across PRs: CI uploads one per commit.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.loopnest import LoopId
from repro.runtime.machine import MachineConfig, PrefetchMode
from repro.runtime.parallel import (
    LoopRunStats,
    ParallelExecutor,
    ParallelRunResult,
    _accumulate,
)
from repro.runtime.interpreter import ExecutionResult
from repro.runtime.sched import ScheduleResult, schedule_invocation_reference
from repro.runtime.trace import InvocationTrace

#: Benchmarks used by ``--quick`` (CI smoke).
QUICK_BENCHES = ("gzip", "mcf", "equake", "bzip2")


def null_tracer_probe(spans: int = 100_000) -> Dict[str, float]:
    """Time ``spans`` disabled-tracer span entries.

    The observability layer promises that leaving tracing off costs
    nothing measurable; this probe keeps that promise on the record.  It
    times :data:`~repro.obs.NULL_TRACER` directly (not the ambient
    tracer, which a ``--trace`` run may have swapped) against an empty
    loop of the same length, so the reported per-span cost excludes loop
    overhead."""
    from repro.obs import NULL_TRACER

    start = time.perf_counter()
    for _ in range(spans):
        with NULL_TRACER.span("probe"):
            pass
    traced_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(spans):
        pass
    empty_seconds = time.perf_counter() - start
    return {
        "spans": float(spans),
        "seconds": traced_seconds,
        "empty_loop_seconds": empty_seconds,
        "ns_per_span": max(0.0, traced_seconds - empty_seconds)
        / spans
        * 1e9,
    }


def sweep_machines(base: MachineConfig) -> List[MachineConfig]:
    """The benchmark's machine sweep: a superset of what one full
    evaluation round (core counts, prefetch modes, latency sweep, TSO
    and SMT toggles) replays against."""
    machines: List[MachineConfig] = []
    for cores in (1, 2, 4):
        if cores != base.cores:
            machines.append(base.with_cores(cores))
    for mode in (PrefetchMode.NONE, PrefetchMode.MATCHED, PrefetchMode.IDEAL):
        machines.append(base.with_prefetch(mode))
    for latency in (4, 32, 220):
        machines.append(
            dataclasses.replace(
                base,
                signal_latency=max(latency, 4),
                word_transfer_cycles=max(latency, 4),
                prefetched_signal_latency=min(4, max(latency, 1)),
            )
        )
    machines.append(dataclasses.replace(base, total_store_ordering=False))
    machines.append(dataclasses.replace(base, smt=False))
    return machines


def reference_replay(
    executor: ParallelExecutor,
    machine: MachineConfig,
    legacy_traces: Optional[Sequence[InvocationTrace]] = None,
) -> Tuple[ParallelRunResult, List[ScheduleResult]]:
    """Replay one machine exactly like the pre-compiled engine did:
    reference-schedule every trace under both the executing machine and
    ``machine``.  Returns the run result plus the per-trace schedule
    column for field-exact comparison."""
    if legacy_traces is None:
        legacy_traces = [t.to_invocation_trace() for t in executor.traces]
    info_by_id = {info.loop_id: info for info in executor.infos}
    adjusted = executor.cycles
    loop_stats: Dict[LoopId, LoopRunStats] = {}
    schedules: List[ScheduleResult] = []
    for trace in legacy_traces:
        info = info_by_id[trace.loop_id]
        old = schedule_invocation_reference(trace, info, executor.machine)
        new = schedule_invocation_reference(trace, info, machine)
        adjusted += new.parallel_cycles - old.parallel_cycles
        stats = loop_stats.setdefault(
            trace.loop_id, LoopRunStats(loop_id=trace.loop_id)
        )
        _accumulate(stats, trace, new)
        schedules.append(new)
    result = ExecutionResult(
        output=list(executor.output),
        cycles=adjusted,
        instructions=executor.instructions,
    )
    run = ParallelRunResult(
        result=result,
        machine=machine,
        loop_stats=loop_stats,
        traces=list(legacy_traces),
    )
    return run, schedules


def _reset_compiled_state(executor: ParallelExecutor) -> None:
    """Drop every compiled artifact so the next ``replay_many`` is cold:
    trace programs recompile and the baseline schedules recompute."""
    executor._schedules = {}
    for trace in executor.traces:
        trace._program = None


@dataclass
class SweepTiming:
    """Timed sweep-replay comparison of all engines on one benchmark.

    Three lanes: the reference per-event interpreter, the per-machine
    compiled engine (``schedule_invocation`` per trace per machine) and
    the batched engine (cohort-vectorized ``schedule_many``, the
    ``replay_many`` default).
    """

    name: str
    traces: int
    iterations: int
    events: int
    machines: int
    reference_seconds: float
    compiled_seconds: float
    batched_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        if self.compiled_seconds <= 0:
            return float("inf")
        return self.reference_seconds / self.compiled_seconds

    @property
    def batched_speedup(self) -> float:
        """Batched-engine gain over the per-machine compiled engine."""
        if self.batched_seconds <= 0:
            return float("inf")
        return self.compiled_seconds / self.batched_seconds

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "traces": self.traces,
            "iterations": self.iterations,
            "events": self.events,
            "machines": self.machines,
            "reference_seconds": self.reference_seconds,
            "compiled_seconds": self.compiled_seconds,
            "batched_seconds": self.batched_seconds,
            "speedup": self.speedup,
            "batched_speedup": self.batched_speedup,
        }


@dataclass
class SchedBenchReport:
    """Everything one ``bench-sched`` invocation measured."""

    repeat: int
    machines: int
    programs: List[SweepTiming] = field(default_factory=list)
    #: :func:`null_tracer_probe` measurement of the disabled tracer.
    null_tracer: Dict[str, float] = field(default_factory=dict)

    @property
    def geomean_speedup(self) -> float:
        if not self.programs:
            return 1.0
        product = 1.0
        for timing in self.programs:
            product *= timing.speedup
        return product ** (1.0 / len(self.programs))

    @property
    def min_speedup(self) -> float:
        if not self.programs:
            return 1.0
        return min(t.speedup for t in self.programs)

    @property
    def aggregate_speedup(self) -> float:
        """Total-time ratio: weights each benchmark by its runtime."""
        reference = sum(t.reference_seconds for t in self.programs)
        compiled = sum(t.compiled_seconds for t in self.programs)
        if compiled <= 0:
            return float("inf")
        return reference / compiled

    @property
    def min_batched_speedup(self) -> float:
        if not self.programs:
            return 1.0
        return min(t.batched_speedup for t in self.programs)

    @property
    def aggregate_batched_speedup(self) -> float:
        """Batched vs per-machine compiled engine, runtime-weighted."""
        compiled = sum(t.compiled_seconds for t in self.programs)
        batched = sum(t.batched_seconds for t in self.programs)
        if batched <= 0:
            return float("inf")
        return compiled / batched

    def as_dict(self) -> dict:
        return {
            "repeat": self.repeat,
            "machines": self.machines,
            "programs": [t.as_dict() for t in self.programs],
            "null_tracer": self.null_tracer,
            "summary": {
                "geomean_speedup": self.geomean_speedup,
                "aggregate_speedup": self.aggregate_speedup,
                "min_speedup": self.min_speedup,
                "aggregate_batched_speedup": self.aggregate_batched_speedup,
                "min_batched_speedup": self.min_batched_speedup,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    def render(self) -> str:
        lines = [
            f"{'program':<10} {'traces':>7} {'events':>10} "
            f"{'reference s':>12} {'compiled s':>11} {'speedup':>8} "
            f"{'batched s':>10} {'batched x':>10}"
        ]
        for t in self.programs:
            lines.append(
                f"{t.name:<10} {t.traces:>7,} {t.events:>10,} "
                f"{t.reference_seconds:>12.3f} {t.compiled_seconds:>11.3f} "
                f"{t.speedup:>7.2f}x "
                f"{t.batched_seconds:>10.3f} {t.batched_speedup:>9.2f}x"
            )
        lines.append(
            f"{'geomean':<10} {'':>7} {'':>10} "
            f"{sum(t.reference_seconds for t in self.programs):>12.3f} "
            f"{sum(t.compiled_seconds for t in self.programs):>11.3f} "
            f"{self.geomean_speedup:>7.2f}x "
            f"{sum(t.batched_seconds for t in self.programs):>10.3f} "
            f"{self.aggregate_batched_speedup:>9.2f}x"
        )
        if self.null_tracer:
            lines.append(
                f"disabled tracer: "
                f"{self.null_tracer['ns_per_span']:.1f} ns/span over "
                f"{int(self.null_tracer['spans']):,} no-op spans"
            )
        return "\n".join(lines)


def _check_equivalence(
    name: str,
    executor: ParallelExecutor,
    machines: Sequence[MachineConfig],
    legacy_traces: Sequence[InvocationTrace],
) -> None:
    """Field-exact differential between all engines for one bench.

    ``replay_many`` fills its columns through the batched engine; the
    per-machine compiled engine recomputes them independently, and both
    must match the reference interpreter field for field."""
    compiled_runs = executor.replay_many(machines)
    batched_columns = {
        machine.fingerprint(): list(
            executor._schedules[machine.fingerprint()]
        )
        for machine in machines
    }
    _reset_compiled_state(executor)
    executor._ensure_schedules(machines, batched=False)
    for machine in machines:
        fingerprint = machine.fingerprint()
        if (
            executor._schedules[fingerprint]
            != batched_columns[fingerprint]
        ):  # pragma: no cover - engine bug
            raise AssertionError(
                f"batched/per-machine schedule divergence on {name!r} "
                f"under {fingerprint}"
            )
    for machine, compiled in zip(machines, compiled_runs):
        reference, ref_schedules = reference_replay(
            executor, machine, legacy_traces
        )
        new_schedules = executor._schedules[machine.fingerprint()]
        if new_schedules != ref_schedules:  # pragma: no cover - engine bug
            for idx, (new, ref) in enumerate(
                zip(new_schedules, ref_schedules)
            ):
                if new != ref:
                    raise AssertionError(
                        f"schedule divergence on {name!r} trace {idx} "
                        f"under {machine.fingerprint()}: "
                        f"compiled={new} reference={ref}"
                    )
        if (
            compiled.result.cycles != reference.result.cycles
            or compiled.loop_stats != reference.loop_stats
        ):  # pragma: no cover - engine bug
            raise AssertionError(
                f"replay divergence on {name!r} under "
                f"{machine.fingerprint()}: compiled cycles="
                f"{compiled.result.cycles} stats={compiled.loop_stats} "
                f"reference cycles={reference.result.cycles} "
                f"stats={reference.loop_stats}"
            )


def run_sched_bench(
    benches: Optional[Sequence[str]] = None,
    repeat: int = 1,
    machine: Optional[MachineConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
) -> SchedBenchReport:
    """Time sweep replay with all three engines on ``benches``.

    Uses the shared evaluation runner (honouring ``REPRO_EVAL_CACHE``)
    to obtain recorded traces; raises :class:`AssertionError` if the
    engines ever disagree on any schedule field.  ``jobs`` shards the
    batched lane's scheduling pass across a process pool.
    """
    from repro.evaluation.runner import default_runner

    runner = default_runner()
    names = list(benches) if benches is not None else runner.benches()
    machines = sweep_machines(runner.machine)
    report = SchedBenchReport(
        repeat=repeat,
        machines=len(machines),
        null_tracer=null_tracer_probe(),
    )
    for name in names:
        if progress:
            progress(name)
        run = runner.helix_run(name)
        executor = run.executor
        legacy_traces = [t.to_invocation_trace() for t in executor.traces]
        _check_equivalence(name, executor, machines, legacy_traces)

        reference_best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            for probe in machines:
                reference_replay(executor, probe, legacy_traces)
            reference_best = min(
                reference_best, time.perf_counter() - start
            )

        compiled_best = float("inf")
        for _ in range(repeat):
            _reset_compiled_state(executor)
            start = time.perf_counter()
            executor._ensure_schedules(
                [executor.machine, *machines], batched=False
            )
            executor.replay_many(machines)
            compiled_best = min(compiled_best, time.perf_counter() - start)

        batched_best = float("inf")
        for _ in range(repeat):
            _reset_compiled_state(executor)
            start = time.perf_counter()
            executor.replay_many(machines, jobs=jobs)
            batched_best = min(batched_best, time.perf_counter() - start)

        report.programs.append(
            SweepTiming(
                name=name,
                traces=len(executor.traces),
                iterations=sum(t.iteration_count for t in executor.traces),
                events=sum(t.event_count for t in executor.traces),
                machines=len(machines),
                reference_seconds=reference_best,
                compiled_seconds=compiled_best,
                batched_seconds=batched_best,
            )
        )
    return report
