"""Pass-pipeline benchmarks (``repro bench-passes``).

Times the compile-side pipeline (selection + transformation, on a shared
precomputed profile) of each benchmark twice: once with an
:class:`~repro.analysis.manager.UncachedAnalysisManager` (every analysis
request recomputes, the pre-manager behavior) and once with the versioned
:class:`~repro.analysis.manager.AnalysisManager` (memoized while the IR
version matches).  Both sides start cold -- the speedup measured is pure
intra-pipeline reuse: one whole-module dependence analysis shared across
every selected loop instead of one per loop, one CFG/loop forest per
function instead of one per query.

Every timed pair is also a differential check: both sides must choose the
same loops and produce byte-identical transformed IR, or the run aborts.

The JSON report (``BENCH_passes.json`` by convention) records the repo's
pass-pipeline perf trajectory across PRs.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.analysis.manager import AnalysisManager, UncachedAnalysisManager
from repro.bench import compile_benchmark
from repro.core.parallelizer import parallelize_module
from repro.core.selection import SelectionConfig, choose_loops
from repro.ir.printer import module_to_str
from repro.runtime.machine import MachineConfig
from repro.runtime.profiler import profile_module

#: Default benchmark subset: three programs whose selection picks several
#: loops each, so the per-loop dependence recomputation cost is visible.
DEFAULT_BENCHES = ("gzip", "mcf", "equake")


@dataclass
class PipelineTiming:
    """Timed comparison of both analysis managers on one benchmark."""

    name: str
    chosen_loops: int
    uncached_seconds: float
    cached_seconds: float
    #: Analysis-manager counters of the cached side's last run.
    analyses: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.cached_seconds <= 0:
            return float("inf")
        return self.uncached_seconds / self.cached_seconds

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "chosen_loops": self.chosen_loops,
            "uncached_seconds": self.uncached_seconds,
            "cached_seconds": self.cached_seconds,
            "speedup": self.speedup,
            "analyses": self.analyses,
        }


@dataclass
class PassBenchReport:
    """Everything one ``bench-passes`` invocation measured."""

    repeat: int
    programs: List[PipelineTiming] = field(default_factory=list)

    @property
    def geomean_speedup(self) -> float:
        if not self.programs:
            return 1.0
        product = 1.0
        for timing in self.programs:
            product *= timing.speedup
        return product ** (1.0 / len(self.programs))

    @property
    def aggregate_speedup(self) -> float:
        """Total-time ratio: weights each benchmark by its runtime."""
        uncached = sum(t.uncached_seconds for t in self.programs)
        cached = sum(t.cached_seconds for t in self.programs)
        if cached <= 0:
            return float("inf")
        return uncached / cached

    def as_dict(self) -> dict:
        return {
            "repeat": self.repeat,
            "programs": [t.as_dict() for t in self.programs],
            "summary": {
                "geomean_speedup": self.geomean_speedup,
                "aggregate_speedup": self.aggregate_speedup,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    def render(self) -> str:
        lines = [
            f"{'program':<10} {'loops':>5} {'uncached s':>11} "
            f"{'cached s':>9} {'speedup':>8}"
        ]
        for t in self.programs:
            lines.append(
                f"{t.name:<10} {t.chosen_loops:>5} "
                f"{t.uncached_seconds:>11.3f} {t.cached_seconds:>9.3f} "
                f"{t.speedup:>7.2f}x"
            )
        lines.append(
            f"{'geomean':<10} {'':>5} "
            f"{sum(t.uncached_seconds for t in self.programs):>11.3f} "
            f"{sum(t.cached_seconds for t in self.programs):>9.3f} "
            f"{self.geomean_speedup:>7.2f}x"
        )
        return "\n".join(lines)


def _run_pipeline(module, profile, machine, manager):
    """One cold selection + transformation with ``manager``."""
    config = SelectionConfig(machine=machine, cores=machine.cores)
    selection = choose_loops(module, profile, config, manager=manager)
    transformed, infos = parallelize_module(
        module, selection.chosen, machine, manager=manager
    )
    return selection, transformed, infos


def _time_manager(module, profile, machine, make_manager, repeat: int):
    """Minimum wall-clock over ``repeat`` cold runs, plus the last run."""
    best = float("inf")
    outcome = None
    for _ in range(repeat):
        manager = make_manager()
        start = time.perf_counter()
        outcome = _run_pipeline(module, profile, machine, manager)
        best = min(best, time.perf_counter() - start)
        outcome = outcome + (manager,)
    return best, outcome


def run_pass_bench(
    benches: Optional[Sequence[str]] = None,
    repeat: int = 1,
    machine: Optional[MachineConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> PassBenchReport:
    """Time both analysis managers on ``benches`` and differential-check.

    Raises :class:`AssertionError` if the two sides ever disagree on the
    chosen loops or the transformed IR -- the benchmark doubles as an
    end-to-end equivalence check of the caching layer.
    """
    machine = machine or MachineConfig(cores=6)
    names = list(benches) if benches is not None else list(DEFAULT_BENCHES)
    report = PassBenchReport(repeat=repeat)
    for name in names:
        if progress:
            progress(name)
        ref = compile_benchmark(name, "ref")
        train = compile_benchmark(name, "train")
        profile = profile_module(train, machine)
        uncached_s, uncached = _time_manager(
            ref, profile, machine, UncachedAnalysisManager, repeat
        )
        cached_s, cached = _time_manager(
            ref, profile, machine, AnalysisManager, repeat
        )
        if uncached[0].chosen != cached[0].chosen:  # pragma: no cover
            raise AssertionError(
                f"manager divergence on {name!r}: chosen loops "
                f"{uncached[0].chosen} != {cached[0].chosen}"
            )
        if module_to_str(uncached[1]) != module_to_str(cached[1]):
            raise AssertionError(  # pragma: no cover
                f"manager divergence on {name!r}: transformed IR differs"
            )
        report.programs.append(
            PipelineTiming(
                name=name,
                chosen_loops=len(cached[0].chosen),
                uncached_seconds=uncached_s,
                cached_seconds=cached_s,
                analyses=cached[3].stats_dict(),
            )
        )
    return report
