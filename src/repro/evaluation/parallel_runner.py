"""Process-parallel evaluation of the benchmark suite.

The per-benchmark pipelines are independent until the figures aggregate
them, so the suite fans out over a :class:`ProcessPoolExecutor`: each
worker runs one benchmark's compile -> profile -> select -> transform ->
execute chain against a *shared* :class:`EvaluationCache` directory and
persists every interpretation artifact there.  The parent then replays
the same stage requests through its own :class:`EvaluationRunner`; they
all hit the freshly written disk entries, which merges the workers'
results into the parent's in-memory caches without pickling live
modules or executors across processes.

Cold superblock codegen shards the same way for free: each worker's
interpreters content-address their generated code (kind ``"codegen"``)
into the shared store as they compile their own benchmark's functions,
so the parent and every later run -- warm suite re-runs, ``repro
serve`` jobs on the same cache -- instantiate the stored source or
bytecode instead of re-deriving it (the ``interp.codegen.cache.*``
counters in the report's ``interp`` block account for this, worker
deltas included).

Determinism: all stage artifacts are exact (recorded traces, not
timings), so ``--jobs N`` produces byte-identical figure output to a
sequential run -- only the wall-clock differs.  Workers that share one
machine also share the cache directory safely (atomic writes; at worst
two workers duplicate one computation).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.evaluation import figures
from repro.evaluation.cache import EvaluationCache, code_version
from repro.evaluation.runner import EvaluationRunner, StageStats
from repro.obs import REGISTRY, get_tracer, metrics_delta, tracing
from repro.runtime.machine import MachineConfig
from repro.service.jobs import NULL_OBSERVER, EvaluationObserver


def suite_environment() -> Dict[str, object]:
    """Provenance of one suite run: enough to tell two report files from
    different hosts or checkouts apart without leaking anything
    host-private beyond coarse platform facts."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "code_version": code_version(),
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else "",
    }


@dataclass
class BenchOutcome:
    """One worker's (or inline run's) per-benchmark accounting."""

    bench: str
    wall_seconds: float
    output_matches: bool
    stages: Dict[str, dict]

    def as_dict(self) -> dict:
        return {
            "bench": self.bench,
            "wall_seconds": self.wall_seconds,
            "output_matches": self.output_matches,
            "stages": self.stages,
        }


@dataclass
class SuiteReport:
    """Machine-readable record of one suite evaluation.

    ``to_json`` is what ``python -m repro suite --report PATH`` writes;
    the bench trajectory tracks these files across PRs.
    """

    jobs: int
    cores: int
    cache_dir: Optional[str]
    code_version: str
    wall_seconds: float = 0.0
    #: True when the run was interrupted (SIGINT/SIGTERM) and this
    #: report covers only the benchmarks that completed before that.
    interrupted: bool = False
    #: bench -> core count (as str, JSON keys) -> speedup.
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    geomeans: Dict[str, float] = field(default_factory=dict)
    benches: List[BenchOutcome] = field(default_factory=list)
    #: Aggregated stage counters: parent runner + all workers.
    stages: Dict[str, dict] = field(default_factory=dict)
    #: Per-analysis counters (the ``analysis:``-prefixed stage rows with
    #: the prefix stripped): hit/miss/invalidation accounting of the
    #: versioned :class:`~repro.analysis.manager.AnalysisManager`.
    analyses: Dict[str, dict] = field(default_factory=dict)
    #: Disk traffic of the parent's cache, per artifact kind.
    cache_traffic: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Where and on what the suite ran (:func:`suite_environment`).
    environment: Dict[str, object] = field(default_factory=dict)
    #: Per-benchmark simulated-time accounting: bench -> per-core
    #: busy/stall/signal/transfer cycle totals on the baseline machine
    #: (:func:`repro.obs.timeline.timeline_block`).
    timeline: Dict[str, dict] = field(default_factory=dict)
    #: Interpreter counters accumulated over this suite run (parent +
    #: all workers): ``interp.backend.*`` selections plus the
    #: ``interp.superblock.*`` / ``interp.codegen.*`` formation and
    #: specialization statistics from :mod:`repro.runtime.codegen`.
    interp: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "cores": self.cores,
            "cache_dir": self.cache_dir,
            "code_version": self.code_version,
            "wall_seconds": self.wall_seconds,
            "interrupted": self.interrupted,
            "environment": self.environment,
            "speedups": self.speedups,
            "geomeans": self.geomeans,
            "benches": [b.as_dict() for b in self.benches],
            "stages": self.stages,
            "analyses": self.analyses,
            "cache_traffic": self.cache_traffic,
            "timeline": self.timeline,
            "interp": self.interp,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def _run_bench(
    bench: str, machine: MachineConfig, cache_root: str, trace: bool = False
) -> dict:
    """Worker entry point: one benchmark, results persisted to the
    shared cache.  Returns accounting only (artifacts travel by disk).

    With ``trace`` set the worker records its spans under a local tracer
    and ships them home serialized; they keep this process's pid, so the
    merged trace shows one track per worker."""
    start = time.perf_counter()
    spans: List[dict] = []
    metrics_before = REGISTRY.snapshot()
    runner = EvaluationRunner(machine, cache=EvaluationCache(cache_root))
    if trace:
        with tracing() as tracer:
            run = runner.helix_run(bench)
        spans = [event.as_dict() for event in tracer.finished()]
    else:
        run = runner.helix_run(bench)
    payload = BenchOutcome(
        bench=bench,
        wall_seconds=time.perf_counter() - start,
        output_matches=run.output_matches,
        stages=runner.stats.as_dict(),
    ).as_dict()
    payload["spans"] = spans
    # Ship only the delta this benchmark caused, so a reused worker
    # process never double-reports counts from an earlier benchmark.
    payload["metrics"] = metrics_delta(metrics_before, REGISTRY.snapshot())
    return payload


class SuiteInterrupted(Exception):
    """A suite run was interrupted (SIGINT/SIGTERM) mid-flight.

    Carries the partial :class:`SuiteReport` (completed benchmarks +
    merged stage counters, ``interrupted=True``) so callers can still
    persist what finished -- the CLI writes it to ``--report`` before
    exiting 130.
    """

    def __init__(self, report: "SuiteReport") -> None:
        super().__init__("suite run interrupted")
        self.report = report


def run_suite(
    machine: Optional[MachineConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    benches: Optional[Sequence[str]] = None,
    observer: Optional[EvaluationObserver] = None,
):
    """Evaluate the suite, optionally in parallel and/or disk-cached.

    Returns ``(figure9, report, runner)``: the rendered-figure result,
    the :class:`SuiteReport`, and the warm parent runner (reusable for
    further figures against the same caches).

    ``observer`` receives the parent runner's stage/artifact events
    plus one ``stage="bench"`` completion per worker benchmark -- CLI
    progress printing and the service daemon's event streams are both
    just observers here.

    On KeyboardInterrupt the worker pool is torn down cleanly (pending
    futures cancelled, running workers joined, nothing orphaned) and
    :class:`SuiteInterrupted` is raised carrying the partial report.
    """
    machine = machine or MachineConfig(cores=6)
    observer = observer or NULL_OBSERVER
    start = time.perf_counter()
    metrics_start = REGISTRY.snapshot()

    scratch = None
    cache_root = cache_dir
    if jobs > 1 and cache_root is None:
        # Workers hand artifacts to the parent through the cache, so
        # parallel mode always needs one; default to a scratch directory
        # that vanishes with the run.
        scratch = tempfile.TemporaryDirectory(prefix="repro-eval-cache-")
        cache_root = scratch.name

    try:
        cache = EvaluationCache(cache_root) if cache_root else None
        runner = EvaluationRunner(machine, cache=cache, observer=observer)
        if benches is not None:
            bench_list = list(benches)
            runner.benches = lambda: bench_list  # type: ignore[method-assign]
        report = SuiteReport(
            jobs=jobs,
            cores=machine.cores,
            cache_dir=cache_dir,
            code_version=code_version(),
            environment=suite_environment(),
        )

        tracer = get_tracer()
        if jobs > 1:
            pool = ProcessPoolExecutor(max_workers=jobs)
            futures = [
                pool.submit(
                    _run_bench, bench, machine, cache_root,
                    tracer.enabled,
                )
                for bench in runner.benches()
            ]

            def consume(payload: dict) -> None:
                spans = payload.pop("spans", [])
                metrics = payload.pop("metrics", None)
                if spans:
                    tracer.absorb(spans)
                if metrics:
                    REGISTRY.merge(metrics)
                outcome = BenchOutcome(**payload)
                report.benches.append(outcome)
                observer.stage_completed(
                    None, outcome.bench, "bench", "compute",
                    outcome.wall_seconds,
                )

            consumed = 0
            try:
                # Completion order is racy; report in suite order.
                for future in futures:
                    consume(future.result())
                    consumed += 1
                pool.shutdown()
            except BaseException:
                # Clean teardown on interrupt (or any worker failure):
                # cancel everything still pending, then wait so no
                # worker process outlives this call.  Results that did
                # complete are harvested into the partial report.
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=True, cancel_futures=True)
                for future in futures[consumed:]:
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        consume(future.result())
                raise

        fig9 = figures.figure9(runner)

        stats = StageStats()
        for outcome in report.benches:
            stats.merge(outcome.stages)
        stats.merge(runner.stats.as_dict())
        report.stages = stats.as_dict()
        prefix = "analysis:"
        report.analyses = {
            stage[len(prefix):]: data
            for stage, data in report.stages.items()
            if stage.startswith(prefix)
        }
        report.speedups = {
            bench: {str(cores): speedup for cores, speedup in row.items()}
            for bench, row in fig9.speedups.items()
        }
        report.geomeans = {
            str(cores): fig9.geomean(cores) for cores in fig9.core_counts
        }
        if cache is not None:
            report.cache_traffic = cache.traffic()
        # Simulated-time accounting: every figure-9 pipeline is warm in
        # the parent's memo by now, so this only walks stored traces.
        from repro.obs.timeline import timeline_block

        for bench in runner.benches():
            run = runner.helix_run(bench)
            report.timeline[bench] = timeline_block(run.executor)
        # Interpreter counters this run accumulated (worker deltas were
        # merged into the parent registry above, so one delta covers
        # both inline and parallel execution).
        interp_delta = metrics_delta(metrics_start, REGISTRY.snapshot())
        report.interp = {
            name: value
            for name, value in interp_delta["counters"].items()
            if name.startswith("interp.")
        }
        report.wall_seconds = time.perf_counter() - start
        return fig9, report, runner
    except KeyboardInterrupt:
        # Partial accounting still gets written: merge the stage
        # counters of whatever completed and hand the report back on
        # the exception (the CLI persists it before exiting 130).
        stats = StageStats()
        for outcome in report.benches:
            stats.merge(outcome.stages)
        stats.merge(runner.stats.as_dict())
        report.stages = stats.as_dict()
        report.interrupted = True
        report.wall_seconds = time.perf_counter() - start
        raise SuiteInterrupted(report) from None
    finally:
        if scratch is not None:
            scratch.cleanup()


def effective_jobs(requested: int) -> int:
    """Clamp a ``--jobs`` request to something sane for this host."""
    if requested < 1:
        return max(1, os.cpu_count() or 1)
    return requested
