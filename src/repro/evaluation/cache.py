"""Persistent, content-addressed cache for evaluation stage artifacts.

Every figure of the paper re-runs the same compile -> profile -> select ->
transform -> execute pipeline, and the expensive parts (the three
interpretation stages) are fully deterministic functions of

* the benchmark source text (per input scale),
* the :class:`~repro.core.loopinfo.HelixOptions` of the transformation,
* the :class:`~repro.runtime.machine.MachineConfig` (cost model included),
* the version of this package's own source code.

This module hashes exactly those inputs into cache keys and stores the
stage outputs as JSON files, one directory per artifact kind::

    <root>/module/<key>.json       {"ir": <printed IR>}
    <root>/profile/<key>.json      ProfileData.to_dict()
    <root>/sequential/<key>.json   ExecutionResult.to_dict()
    <root>/pipeline/<key>.json     {result, loop_stats, traces}

Any change to a hashed input -- editing a benchmark, flipping an option,
retuning the cost model, or touching any ``repro`` source file -- changes
the key, so stale entries are never read; they are simply left behind
(the cache is append-only and safe to delete wholesale).

Writes go through a temporary file followed by :func:`os.replace`, so
concurrent writers (the process-parallel suite runner) can share one
cache directory without readers ever observing a half-written entry.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.analysis.loopnest import LoopId
from repro.core.loopinfo import HelixOptions
from repro.obs.metrics import REGISTRY
from repro.runtime.machine import MachineConfig, PrefetchMode

#: Cache payload schema generation, folded into :func:`code_version`.
#: Bump on incompatible payload-shape changes that a pure source hash
#: would not capture (e.g. readers in other processes interpreting the
#: same bytes differently).  2: pipeline traces are serialized in the
#: versioned compact format and carry the run's ``load_count``.
CACHE_SCHEMA_VERSION = 2

_code_version: Optional[str] = None


def code_version() -> str:
    """Fingerprint of the ``repro`` package sources (and the cache
    payload schema generation).

    Hashed into every cache key: any edit to the simulator, the
    transformation, or the benchmarks' build machinery invalidates all
    previously cached artifacts.
    """
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        digest.update(f"schema:{CACHE_SCHEMA_VERSION}".encode())
        digest.update(b"\0")
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version = digest.hexdigest()[:16]
    return _code_version


def _jsonable(obj: Any) -> Any:
    """Canonical JSON-compatible form of key components (deterministic)."""
    if isinstance(obj, enum.Enum):
        return obj.value
    if is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(asdict(obj))
    if isinstance(obj, dict):
        return {str(_jsonable(k)): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"unhashable cache-key component: {obj!r}")


def fingerprint(components: Any) -> str:
    """Stable content hash of an arbitrary nest of key components."""
    canon = json.dumps(_jsonable(components), sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()[:32]


def machine_fingerprint(machine: MachineConfig) -> str:
    """Hash of everything timing-relevant in a machine description."""
    return fingerprint(machine)


def options_fingerprint(options: HelixOptions) -> str:
    """Hash covering *all* transformation options (not a curated subset,
    so new knobs can never silently alias cache entries)."""
    return fingerprint(options)


def pipeline_fingerprint(
    options: HelixOptions,
    prefetch: PrefetchMode,
    signal_cost: Optional[float],
    unoptimized_signals: bool,
    loop_ids: Optional[Sequence[LoopId]],
) -> str:
    """Canonical identity of one pipeline configuration request.

    Used both as the in-memory memo key (alongside the user's string
    ``cache_key``, which only namespaces it) and inside disk keys.
    """
    return json.dumps(
        _jsonable(
            {
                "options": asdict(options),
                "prefetch": prefetch,
                "signal_cost": signal_cost,
                "unoptimized_signals": unoptimized_signals,
                "loop_ids": (
                    None if loop_ids is None else [list(l) for l in loop_ids]
                ),
            }
        ),
        sort_keys=True,
    )


class EvaluationCache:
    """Disk-backed artifact store shared by evaluation runners.

    The cache never interprets keys -- callers build them with
    :func:`fingerprint` from the content listed in the module docstring.
    ``hits``/``misses``/``stores`` tally disk traffic per artifact kind.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.stores: Dict[str, int] = {}

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.json"

    def load(self, kind: str, key: str) -> Optional[dict]:
        """The stored payload, or ``None`` on a miss (including corrupt
        or half-written files, which are treated as absent)."""
        path = self._path(kind, key)
        try:
            text = path.read_text()
        except OSError:
            self._miss(kind)
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._miss(kind)
            return None
        self.hits[kind] = self.hits.get(kind, 0) + 1
        REGISTRY.inc(f"evalcache.hits.{kind}")
        return payload

    def _miss(self, kind: str) -> None:
        self.misses[kind] = self.misses.get(kind, 0) + 1
        REGISTRY.inc(f"evalcache.misses.{kind}")

    def store(self, kind: str, key: str, payload: dict) -> None:
        """Atomically persist one artifact (last writer wins)."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores[kind] = self.stores.get(kind, 0) + 1
        REGISTRY.inc(f"evalcache.stores.{kind}")

    def traffic(self) -> Dict[str, Dict[str, int]]:
        """Per-kind disk traffic counters (for the JSON report)."""
        kinds = set(self.hits) | set(self.misses) | set(self.stores)
        return {
            kind: {
                "hits": self.hits.get(kind, 0),
                "misses": self.misses.get(kind, 0),
                "stores": self.stores.get(kind, 0),
            }
            for kind in sorted(kinds)
        }
