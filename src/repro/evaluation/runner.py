"""Cached benchmark pipelines for the evaluation.

Running one benchmark end-to-end means: compile train+ref, profile the
train build, select loops, transform the ref build, execute it on the
simulated machine.  Several figures share most of that work, so the runner
memoizes each stage; timing for different core counts or prefetch modes is
recomputed from recorded traces (:meth:`ParallelExecutor.replay`) without
re-interpreting the program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.loopnest import LoopId
from repro.bench import benchmark_names, compile_benchmark
from repro.core.loopinfo import HelixOptions, ParallelizedLoop
from repro.core.parallelizer import parallelize_module
from repro.core.selection import (
    LoopSelection,
    SelectionConfig,
    choose_loops,
    fixed_level_selection,
)
from repro.ir import Module
from repro.runtime.interpreter import ExecutionResult, run_module
from repro.runtime.machine import MachineConfig, PrefetchMode
from repro.runtime.parallel import ParallelExecutor, ParallelRunResult
from repro.runtime.profiler import ProfileData, profile_module


@dataclass
class PipelineRun:
    """A transformed benchmark plus its executed results."""

    bench: str
    selection: Optional[LoopSelection]
    chosen: List[LoopId]
    transformed: Module
    infos: List[ParallelizedLoop]
    executor: ParallelExecutor
    parallel: ParallelRunResult
    sequential: ExecutionResult

    @property
    def speedup(self) -> float:
        if self.parallel.cycles <= 0:
            return 1.0
        return self.sequential.cycles / self.parallel.cycles

    @property
    def output_matches(self) -> bool:
        return self.sequential.output == self.parallel.result.output

    def speedup_at(self, machine: MachineConfig) -> float:
        """Speedup under another machine, from recorded traces."""
        replayed = self.executor.replay(machine)
        if replayed.cycles <= 0:
            return 1.0
        return self.sequential.cycles / replayed.cycles

    def replay(self, machine: MachineConfig) -> ParallelRunResult:
        return self.executor.replay(machine)


class EvaluationRunner:
    """Memoizing driver for all experiments."""

    def __init__(self, machine: Optional[MachineConfig] = None) -> None:
        self.machine = machine or MachineConfig(cores=6)
        self._modules: Dict[Tuple[str, str], Module] = {}
        self._profiles: Dict[str, ProfileData] = {}
        self._sequential: Dict[str, ExecutionResult] = {}
        self._selections: Dict[Tuple, LoopSelection] = {}
        self._pipelines: Dict[Tuple, PipelineRun] = {}

    # -- stages ----------------------------------------------------------------

    def module(self, bench: str, scale: str) -> Module:
        key = (bench, scale)
        if key not in self._modules:
            self._modules[key] = compile_benchmark(bench, scale)
        return self._modules[key]

    def profile(self, bench: str) -> ProfileData:
        """Training-input profile (fresh module so the ref build stays
        untouched)."""
        if bench not in self._profiles:
            train = compile_benchmark(bench, "train")
            self._profiles[bench] = profile_module(train, self.machine)
        return self._profiles[bench]

    def sequential(self, bench: str) -> ExecutionResult:
        if bench not in self._sequential:
            self._sequential[bench] = run_module(
                self.module(bench, "ref"), self.machine
            )
        return self._sequential[bench]

    def selection(
        self,
        bench: str,
        signal_cost: Optional[float] = None,
        unoptimized_signals: bool = False,
        cores: Optional[int] = None,
    ) -> LoopSelection:
        key = (bench, signal_cost, unoptimized_signals, cores)
        if key not in self._selections:
            config = SelectionConfig(
                machine=self.machine,
                cores=cores or self.machine.cores,
                signal_cost=signal_cost,
                unoptimized_signals=unoptimized_signals,
            )
            self._selections[key] = choose_loops(
                self.module(bench, "ref"), self.profile(bench), config
            )
        return self._selections[key]

    def fixed_level(self, bench: str, level: int) -> List[LoopId]:
        return fixed_level_selection(
            self.module(bench, "ref"), self.profile(bench), level
        )

    def pipeline(
        self,
        bench: str,
        options: Optional[HelixOptions] = None,
        prefetch: PrefetchMode = PrefetchMode.HELIX,
        signal_cost: Optional[float] = None,
        unoptimized_signals: bool = False,
        loop_ids: Optional[Sequence[LoopId]] = None,
        cache_key: Optional[str] = None,
    ) -> PipelineRun:
        """Transform + execute one configuration of one benchmark."""
        options = options or HelixOptions()
        key = (
            bench,
            cache_key
            or (
                options.enable_signal_optimization,
                options.enable_helper_threads,
                options.enable_prefetch_balancing,
                options.enable_inlining,
                prefetch,
                signal_cost,
                unoptimized_signals,
                tuple(loop_ids) if loop_ids is not None else None,
            ),
        )
        if key in self._pipelines:
            return self._pipelines[key]

        selection = None
        if loop_ids is None:
            selection = self.selection(
                bench,
                signal_cost=signal_cost,
                unoptimized_signals=unoptimized_signals,
            )
            loop_ids = selection.chosen
        machine = self.machine.with_prefetch(prefetch)
        transformed, infos = parallelize_module(
            self.module(bench, "ref"), loop_ids, machine, options
        )
        executor = ParallelExecutor(transformed, infos, machine)
        parallel = executor.execute()
        run = PipelineRun(
            bench=bench,
            selection=selection,
            chosen=list(loop_ids),
            transformed=transformed,
            infos=infos,
            executor=executor,
            parallel=parallel,
            sequential=self.sequential(bench),
        )
        self._pipelines[key] = run
        return run

    def helix_run(self, bench: str) -> PipelineRun:
        """The default full-HELIX configuration of one benchmark."""
        return self.pipeline(bench, cache_key="helix")

    def benches(self) -> List[str]:
        return benchmark_names()


_default: Optional[EvaluationRunner] = None


def default_runner() -> EvaluationRunner:
    """Process-wide shared runner (pytest benchmarks reuse its caches)."""
    global _default
    if _default is None:
        _default = EvaluationRunner()
    return _default
