"""Cached benchmark pipelines for the evaluation.

Running one benchmark end-to-end means: compile train+ref, profile the
train build, select loops, transform the ref build, execute it on the
simulated machine.  Several figures share most of that work, so the runner
memoizes each stage in memory; timing for different core counts or
prefetch modes is recomputed from recorded traces
(:meth:`ParallelExecutor.replay`) without re-interpreting the program.

With a :class:`~repro.evaluation.cache.EvaluationCache` attached, the
three interpretation stages (profile, sequential run, parallel execution)
and the compiled modules also persist across processes: a warm cache
turns a multi-minute suite run into seconds of JSON loading plus the
cheap pure-compute stages (selection, transformation), which are always
re-derived rather than stored.

Every stage records per-stage wall-clock and hit counters in
:attr:`EvaluationRunner.stats`; ``python -m repro suite --stats`` renders
them and the JSON report embeds them.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.loopnest import LoopId
from repro.analysis.manager import AnalysisManager
from repro.artifacts import ArtifactStore
from repro.bench import benchmark_names, compile_benchmark
from repro.core.loopinfo import HelixOptions, ParallelizedLoop
from repro.core.parallelizer import parallelize_module
from repro.core.selection import (
    LoopSelection,
    SelectionConfig,
    choose_loops,
    fixed_level_selection,
)
from repro.evaluation.cache import (
    EvaluationCache,
    pipeline_fingerprint,
)
from repro.ir import Module
from repro.ir.parser import parse_module
from repro.obs import REGISTRY, get_tracer
from repro.ir.printer import module_to_str
from repro.runtime.interpreter import ExecutionResult, run_module
from repro.runtime.machine import MachineConfig, PrefetchMode
from repro.runtime.parallel import (
    LoopRunStats,
    ParallelExecutor,
    ParallelRunResult,
)
from repro.runtime.trace import TRACE_FORMAT_VERSION, CompactInvocationTrace
from repro.runtime.profiler import ProfileData, profile_module
from repro.service.jobs import NULL_OBSERVER, EvaluationObserver

#: Pipeline stages, in execution order (keys of :class:`StageStats`).
STAGES = (
    "compile",
    "profile",
    "sequential",
    "selection",
    "transform",
    "execute",
)


@dataclass
class StageTally:
    """Observability counters of one pipeline stage."""

    #: Full recomputations (cold: the stage actually ran).
    computes: int = 0
    #: Served from this runner's in-memory memo.
    memory_hits: int = 0
    #: Reconstructed from the disk cache (no interpretation).
    disk_hits: int = 0
    #: Wall-clock spent in this stage (computes + disk loads; memory
    #: hits are effectively free and charged as zero).
    wall_seconds: float = 0.0
    #: Cached results discarded because their subject changed (only
    #: analysis stages report these; pipeline stages stay at zero).
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.computes + self.memory_hits + self.disk_hits

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "computes": self.computes,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "wall_seconds": self.wall_seconds,
            "invalidations": self.invalidations,
        }


class StageStats:
    """Per-stage counters collected by an :class:`EvaluationRunner`."""

    def __init__(self) -> None:
        self.stages: Dict[str, StageTally] = {}

    def tally(self, stage: str) -> StageTally:
        tally = self.stages.get(stage)
        if tally is None:
            tally = StageTally()
            self.stages[stage] = tally
        return tally

    def record(self, stage: str, outcome: str, seconds: float = 0.0) -> None:
        """Count one stage request: ``outcome`` is ``compute``,
        ``memory`` or ``disk``."""
        tally = self.tally(stage)
        if outcome == "compute":
            tally.computes += 1
            counter = "computes"
        elif outcome == "memory":
            tally.memory_hits += 1
            counter = "memory_hits"
        elif outcome == "disk":
            tally.disk_hits += 1
            counter = "disk_hits"
        else:  # pragma: no cover - caller bug
            raise ValueError(f"unknown stage outcome {outcome!r}")
        tally.wall_seconds += seconds
        # ``analysis:<name>`` rows already reach the registry from the
        # AnalysisManager itself; mirroring them again would double-count.
        if not stage.startswith("analysis:"):
            REGISTRY.inc(f"stage.{stage}.{counter}")

    def invalidate(self, stage: str) -> None:
        """Count one cache invalidation (a stale cached result dropped
        because the IR it described was mutated)."""
        self.tally(stage).invalidations += 1

    def merge(self, stages: Dict[str, dict]) -> None:
        """Fold another runner's :meth:`as_dict` in (cross-process
        aggregation for the parallel suite runner).

        Every field defaults to zero so snapshots serialized by older
        code versions -- which may lack fields added since -- merge
        cleanly instead of raising ``KeyError``.
        """
        for stage, data in stages.items():
            tally = self.tally(stage)
            tally.computes += data.get("computes", 0)
            tally.memory_hits += data.get("memory_hits", 0)
            tally.disk_hits += data.get("disk_hits", 0)
            tally.wall_seconds += data.get("wall_seconds", 0.0)
            tally.invalidations += data.get("invalidations", 0)

    def as_dict(self) -> Dict[str, dict]:
        order = [s for s in STAGES if s in self.stages]
        order += [s for s in sorted(self.stages) if s not in STAGES]
        return {stage: self.stages[stage].as_dict() for stage in order}


@dataclass
class PipelineRun:
    """A transformed benchmark plus its executed results."""

    bench: str
    selection: Optional[LoopSelection]
    chosen: List[LoopId]
    transformed: Module
    infos: List[ParallelizedLoop]
    executor: ParallelExecutor
    parallel: ParallelRunResult
    sequential: ExecutionResult

    @property
    def speedup(self) -> float:
        if self.parallel.cycles <= 0:
            return 1.0
        return self.sequential.cycles / self.parallel.cycles

    @property
    def output_matches(self) -> bool:
        return self.sequential.output == self.parallel.result.output

    def speedup_at(self, machine: MachineConfig) -> float:
        """Speedup under another machine, from recorded traces."""
        return self.speedups_at([machine])[0]

    def speedups_at(
        self,
        machines: Sequence[MachineConfig],
        jobs: Optional[int] = None,
    ) -> List[float]:
        """Speedups under several machines in one batched replay.

        The figure sweeps (core counts, prefetch modes, latencies) go
        through here so every stored trace is scheduled once per sweep,
        not twice per swept machine; ``jobs`` shards the scheduling
        pass across a process pool for big grids."""
        return [
            1.0 if replayed.cycles <= 0
            else self.sequential.cycles / replayed.cycles
            for replayed in self.executor.replay_many(machines, jobs=jobs)
        ]

    def replay(self, machine: MachineConfig) -> ParallelRunResult:
        return self.executor.replay(machine)

    def replay_many(
        self,
        machines: Sequence[MachineConfig],
        jobs: Optional[int] = None,
    ) -> List[ParallelRunResult]:
        return self.executor.replay_many(machines, jobs=jobs)


class EvaluationRunner:
    """Memoizing driver for all experiments.

    ``cache`` (optional) adds a persistent layer under the in-memory
    memos; see :mod:`repro.evaluation.cache` for the key contents.
    """

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        cache: Optional[EvaluationCache] = None,
        interp_backend: str = "auto",
        artifacts: Optional[ArtifactStore] = None,
        observer: Optional[EvaluationObserver] = None,
    ) -> None:
        self.machine = machine or MachineConfig(cores=6)
        #: Unified artifact store: stage artifacts (optionally disk-
        #: persisted) plus schedule-column memos.  ``cache`` is kept as
        #: a convenience alias of ``artifacts.cache``.
        self.artifacts = artifacts if artifacts is not None else ArtifactStore(cache)
        self.cache = self.artifacts.cache
        #: Progress sink (the domain protocol): stage completions and
        #: artifact traffic stream through it.  Rebindable -- the
        #: orchestrator points it at a job-bound observer per attempt.
        self.observer: EvaluationObserver = observer or NULL_OBSERVER
        #: Interpreter backend for every interpretation stage ("auto",
        #: "decoded" or "tree"); cache keys are backend-independent
        #: because both backends produce identical results.
        self.interp_backend = interp_backend
        self.stats = StageStats()
        #: Versioned analysis cache shared by every selection and
        #: transformation this runner performs; its per-analysis
        #: hit/miss/invalidation counters mirror into ``stats`` under
        #: ``analysis:<name>`` keys.
        self.analysis = AnalysisManager(stats=self.stats)
        self._modules: Dict[Tuple[str, str], Module] = {}
        self._profiles: Dict[str, ProfileData] = {}
        self._sequential: Dict[str, ExecutionResult] = {}
        self._selections: Dict[Tuple, LoopSelection] = {}
        self._pipelines: Dict[Tuple, PipelineRun] = {}

    # -- cache plumbing --------------------------------------------------------

    def _load(self, bench: str, kind: str, key: str) -> Optional[dict]:
        payload = self.artifacts.load(kind, key)
        if payload is not None:
            self.observer.artifact_stored(None, kind, key, "hit")
        return payload

    def _store(self, bench: str, kind: str, key: str, payload: dict) -> None:
        if self.artifacts.store(kind, key, payload):
            self.observer.artifact_stored(None, kind, key, "store")

    def _record(
        self, bench: str, stage: str, outcome: str, seconds: float = 0.0
    ) -> None:
        """Tally one stage request and stream it to the observer."""
        self.stats.record(stage, outcome, seconds)
        self.observer.stage_completed(None, bench, stage, outcome, seconds)

    # -- stages ----------------------------------------------------------------

    def module(self, bench: str, scale: str) -> Module:
        key = (bench, scale)
        if key in self._modules:
            self._record(bench, "compile", "memory")
            return self._modules[key]
        start = time.perf_counter()
        with get_tracer().span(
            "stage.compile", cat="stage", bench=bench, scale=scale
        ) as sp:
            disk_key = self.artifacts.stage_key(
                bench, (scale,), {"kind": "module"}
            )
            payload = self._load(bench, "module", disk_key)
            if payload is not None:
                module = parse_module(payload["ir"])
                outcome = "disk"
            else:
                module = compile_benchmark(bench, scale)
                self._store(
                    bench, "module", disk_key, {"ir": module_to_str(module)}
                )
                outcome = "compute"
            sp.set(outcome=outcome)
        self._modules[key] = module
        self._record(bench, "compile", outcome, time.perf_counter() - start)
        return module

    def profile(self, bench: str) -> ProfileData:
        """Training-input profile (on the train build, so the ref build
        stays the untouched sequential baseline)."""
        if bench in self._profiles:
            self._record(bench, "profile", "memory")
            return self._profiles[bench]
        train = self.module(bench, "train")
        start = time.perf_counter()
        with get_tracer().span("stage.profile", cat="stage", bench=bench) as sp:
            disk_key = self.artifacts.stage_key(
                bench, ("train",), {"kind": "profile", "machine": self.machine}
            )
            payload = self._load(bench, "profile", disk_key)
            if payload is not None:
                data = ProfileData.from_dict(payload, train)
                outcome = "disk"
            else:
                data = profile_module(
                    train,
                    self.machine,
                    backend=self.interp_backend,
                    codegen_cache=self.artifacts,
                )
                self._store(bench, "profile", disk_key, data.to_dict())
                outcome = "compute"
            sp.set(outcome=outcome)
        self._profiles[bench] = data
        self._record(bench, "profile", outcome, time.perf_counter() - start)
        return data

    def sequential(self, bench: str) -> ExecutionResult:
        if bench in self._sequential:
            self._record(bench, "sequential", "memory")
            return self._sequential[bench]
        ref = self.module(bench, "ref")
        start = time.perf_counter()
        with get_tracer().span(
            "stage.sequential", cat="stage", bench=bench
        ) as sp:
            disk_key = self.artifacts.stage_key(
                bench, ("ref",), {"kind": "sequential", "machine": self.machine}
            )
            payload = self._load(bench, "sequential", disk_key)
            if payload is not None:
                result = ExecutionResult.from_dict(payload)
                outcome = "disk"
            else:
                # Opportunistic hot-path hint: when the profile stage
                # already ran, its block-entry counts steer superblock
                # formation towards the hot CBR arms.  Never *forces*
                # profiling, and never affects results -- the backend
                # is bit-identical either way.
                profile = self._profiles.get(bench)
                result = run_module(
                    ref,
                    self.machine,
                    backend=self.interp_backend,
                    block_profile=profile.block_counts if profile else None,
                    codegen_cache=self.artifacts,
                )
                self._store(bench, "sequential", disk_key, result.to_dict())
                outcome = "compute"
            sp.set(outcome=outcome)
        self._sequential[bench] = result
        self._record(bench, "sequential", outcome, time.perf_counter() - start)
        return result

    def selection(
        self,
        bench: str,
        signal_cost: Optional[float] = None,
        unoptimized_signals: bool = False,
        cores: Optional[int] = None,
    ) -> LoopSelection:
        key = (bench, signal_cost, unoptimized_signals, cores)
        if key in self._selections:
            self._record(bench, "selection", "memory")
            return self._selections[key]
        module = self.module(bench, "ref")
        profile = self.profile(bench)
        start = time.perf_counter()
        with get_tracer().span("stage.selection", cat="stage", bench=bench):
            config = SelectionConfig(
                machine=self.machine,
                cores=cores or self.machine.cores,
                signal_cost=signal_cost,
                unoptimized_signals=unoptimized_signals,
            )
            selection = choose_loops(
                module, profile, config, manager=self.analysis
            )
        self._selections[key] = selection
        self._record(bench, "selection", "compute", time.perf_counter() - start)
        return selection

    def fixed_level(self, bench: str, level: int) -> List[LoopId]:
        return fixed_level_selection(
            self.module(bench, "ref"),
            self.profile(bench),
            level,
            manager=self.analysis,
        )

    def pipeline(
        self,
        bench: str,
        options: Optional[HelixOptions] = None,
        prefetch: PrefetchMode = PrefetchMode.HELIX,
        signal_cost: Optional[float] = None,
        unoptimized_signals: bool = False,
        loop_ids: Optional[Sequence[LoopId]] = None,
        cache_key: Optional[str] = None,
    ) -> PipelineRun:
        """Transform + execute one configuration of one benchmark."""
        options = options or HelixOptions()
        # The configuration fingerprint is always part of the key: a
        # string ``cache_key`` only namespaces it, so two calls sharing
        # a label but differing in options/prefetch/selection knobs can
        # never collide.
        config_fp = pipeline_fingerprint(
            options, prefetch, signal_cost, unoptimized_signals, loop_ids
        )
        key = (bench, config_fp, cache_key)
        if key in self._pipelines:
            self._record(bench, "execute", "memory")
            return self._pipelines[key]

        selection = None
        if loop_ids is None:
            selection = self.selection(
                bench,
                signal_cost=signal_cost,
                unoptimized_signals=unoptimized_signals,
            )
            loop_ids = selection.chosen
        machine = self.machine.with_prefetch(prefetch)
        module = self.module(bench, "ref")
        sequential = self.sequential(bench)

        start = time.perf_counter()
        with get_tracer().span("stage.transform", cat="stage", bench=bench):
            transformed, infos = parallelize_module(
                module, loop_ids, machine, options, manager=self.analysis
            )
        self._record(bench, "transform", "compute", time.perf_counter() - start)

        # Same opportunistic hot-path hint the sequential stage uses:
        # an already-collected profile steers superblock chain formation
        # in the parallel-execute interpreter too (the transformed
        # module keeps the original block names outside the HELIX
        # stubs, so train-build counts still mark the hot arms).
        profile = self._profiles.get(bench)
        executor = ParallelExecutor(
            transformed, infos, machine, backend=self.interp_backend,
            schedule_memo=self.artifacts.schedule_memo(),
            block_profile=profile.block_counts if profile else None,
            codegen_cache=self.artifacts,
        )
        start = time.perf_counter()
        with get_tracer().span(
            "stage.execute", cat="stage", bench=bench
        ) as sp:
            disk_key = self.artifacts.stage_key(
                bench,
                ("train", "ref"),
                {
                    "kind": "pipeline",
                    "machine": self.machine,
                    "config": config_fp,
                    "loops": [list(l) for l in loop_ids],
                },
            )
            payload = self._load(bench, "pipeline", disk_key)
            if payload is not None:
                # ``from_dict`` reads both the versioned compact format
                # and the legacy per-iteration dicts of older caches;
                # legacy payloads also predate the stored ``load_count``.
                parallel = executor.restore_run(
                    ExecutionResult.from_dict(payload["result"]),
                    [
                        CompactInvocationTrace.from_dict(t)
                        for t in payload["traces"]
                    ],
                    {
                        stats.loop_id: stats
                        for stats in (
                            LoopRunStats.from_dict(s)
                            for s in payload["loop_stats"]
                        )
                    },
                    load_count=payload.get("load_count"),
                )
                outcome = "disk"
            else:
                parallel = executor.execute()
                self._store(
                    bench,
                    "pipeline",
                    disk_key,
                    {
                        "result": parallel.result.to_dict(),
                        "loop_stats": [
                            s.to_dict()
                            for _, s in sorted(parallel.loop_stats.items())
                        ],
                        "trace_format": TRACE_FORMAT_VERSION,
                        "traces": [t.to_dict() for t in parallel.traces],
                        "load_count": executor.load_count,
                    },
                )
                outcome = "compute"
            sp.set(outcome=outcome)
        self._record(bench, "execute", outcome, time.perf_counter() - start)

        run = PipelineRun(
            bench=bench,
            selection=selection,
            chosen=list(loop_ids),
            transformed=transformed,
            infos=infos,
            executor=executor,
            parallel=parallel,
            sequential=sequential,
        )
        self._pipelines[key] = run
        return run

    def helix_run(self, bench: str) -> PipelineRun:
        """The default full-HELIX configuration of one benchmark."""
        return self.pipeline(bench, cache_key="helix")

    def benches(self) -> List[str]:
        return benchmark_names()


_default: Optional[EvaluationRunner] = None


def default_runner() -> EvaluationRunner:
    """Process-wide shared runner (pytest benchmarks reuse its caches).

    Set ``REPRO_EVAL_CACHE=<dir>`` to give it a persistent disk cache
    (CI keys one on the source hash via ``actions/cache``).
    """
    global _default
    if _default is None:
        root = os.environ.get("REPRO_EVAL_CACHE")
        cache = EvaluationCache(root) if root else None
        _default = EvaluationRunner(cache=cache)
    return _default
