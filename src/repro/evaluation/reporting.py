"""Rendering helpers for experiment results."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float, None]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's summary statistic for speedups)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _render(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> str:
    """Plain-text table, columns sized to content."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    for row in rendered:
        parts.append(line(row))
    return "\n".join(parts)


def format_series(name: str, mapping: Dict[str, float]) -> str:
    """One labelled series: ``name: k1=v1 k2=v2 ...``."""
    body = " ".join(f"{k}={v:.2f}" for k, v in mapping.items())
    return f"{name}: {body}"


def format_stage_stats(stages: Dict[str, Dict[str, Union[int, float]]]) -> str:
    """Observability table for ``--stats``: one row per pipeline stage.

    ``stages`` is :meth:`repro.evaluation.runner.StageStats.as_dict`
    output (possibly merged across worker processes).
    """
    rows: List[List[Cell]] = []
    for stage, data in stages.items():
        rows.append(
            [
                stage,
                int(data["requests"]),
                int(data["computes"]),
                int(data["memory_hits"]),
                int(data["disk_hits"]),
                int(data.get("invalidations", 0)),
                float(data["wall_seconds"]),
            ]
        )
    return format_table(
        [
            "stage",
            "requests",
            "computed",
            "memory-hit",
            "disk-hit",
            "invalidated",
            "seconds",
        ],
        rows,
        title="Pipeline stage statistics",
    )


def format_analysis_stats(
    analyses: Dict[str, Dict[str, Union[int, float]]]
) -> str:
    """Observability table for the analysis manager: one row per
    registered analysis.

    ``analyses`` maps analysis name to
    :meth:`repro.analysis.manager.AnalysisCounter.as_dict` output (or the
    equivalent ``analysis:``-prefix-stripped stage rows of a merged
    :class:`~repro.evaluation.runner.StageStats`).
    """
    rows: List[List[Cell]] = []
    for name in sorted(analyses):
        data = analyses[name]
        hits = int(data.get("hits", data.get("memory_hits", 0)))
        misses = int(data.get("misses", data.get("computes", 0)))
        rows.append(
            [
                name,
                hits + misses,
                hits,
                misses,
                int(data.get("invalidations", 0)),
                float(data["wall_seconds"]),
            ]
        )
    return format_table(
        ["analysis", "requests", "hits", "misses", "invalidated", "seconds"],
        rows,
        title="Analysis manager statistics",
    )


def format_interp_stats(counters: Dict[str, Union[int, float]]) -> str:
    """Observability table for the interpreter tiers: one row per
    ``interp.*`` counter.

    ``counters`` is the ``interp``-prefixed slice of a registry
    snapshot delta (see :attr:`SuiteReport.interp
    <repro.evaluation.parallel_runner.SuiteReport.interp>`): backend
    selections plus superblock formation / codegen specialization
    totals.
    """
    rows: List[List[Cell]] = [
        [name, int(counters[name])] for name in sorted(counters)
    ]
    return format_table(
        ["counter", "value"], rows, title="Interpreter statistics"
    )
