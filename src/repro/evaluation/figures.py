"""Experiment drivers: one function per paper table/figure.

Every driver takes an :class:`~repro.evaluation.runner.EvaluationRunner`
(sharing its caches) and returns a result object whose ``render()``
produces the same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.loopinfo import HelixOptions
from repro.evaluation.reporting import format_table, geomean
from repro.evaluation.runner import EvaluationRunner, default_runner
from repro.runtime.machine import PrefetchMode

#: Approximate per-benchmark 6-core speedups read off the paper's
#: Figure 9 bars (the text states the exact geomean 2.25x and max 4.12x).
PAPER_FIG9_6CORES: Dict[str, float] = {
    "gzip": 1.9,
    "vpr": 2.0,
    "mesa": 2.6,
    "art": 4.1,
    "mcf": 1.3,
    "equake": 2.9,
    "crafty": 1.35,
    "ammp": 2.2,
    "parser": 1.4,
    "gap": 1.8,
    "vortex": 1.6,
    "bzip2": 2.0,
    "twolf": 2.2,
}

PAPER_GEOMEAN_6CORES = 2.25
PAPER_MAX_6CORES = 4.12


# ---------------------------------------------------------------- Figure 9


@dataclass
class Figure9Result:
    """Whole-program speedups for 2/4/6 cores."""

    speedups: Dict[str, Dict[int, float]]
    core_counts: Tuple[int, ...] = (2, 4, 6)

    def geomean(self, cores: int) -> float:
        return geomean([row[cores] for row in self.speedups.values()])

    def render(self) -> str:
        rows = []
        for bench, row in self.speedups.items():
            rows.append(
                [bench]
                + [row[c] for c in self.core_counts]
                + [PAPER_FIG9_6CORES.get(bench)]
            )
        rows.append(
            ["geoMean"]
            + [self.geomean(c) for c in self.core_counts]
            + [PAPER_GEOMEAN_6CORES]
        )
        headers = ["benchmark"] + [f"{c} cores" for c in self.core_counts] + [
            "paper(6)"
        ]
        return format_table(
            headers, rows, title="Figure 9: speedups on the simulated CMP"
        )


def figure9(
    runner: Optional[EvaluationRunner] = None,
    jobs: Optional[int] = None,
) -> Figure9Result:
    runner = runner or default_runner()
    speedups: Dict[str, Dict[int, float]] = {}
    for bench in runner.benches():
        run = runner.helix_run(bench)
        assert run.output_matches, f"{bench}: parallel output diverged"
        swept = [c for c in (2, 4, 6) if c != runner.machine.cores]
        values = run.speedups_at(
            [runner.machine.with_cores(c) for c in swept], jobs=jobs
        )
        per_core = dict(zip(swept, values))
        if runner.machine.cores in (2, 4, 6):
            per_core[runner.machine.cores] = run.speedup
        speedups[bench] = per_core
    return Figure9Result(speedups=speedups)


# ---------------------------------------------------------------- Table 1


@dataclass
class Table1Row:
    bench: str
    parallelized_loops: int
    candidate_loops: int
    carried_dep_pct: float
    signals_removed_pct: float
    data_transfer_pct: float
    max_code_kb: float


@dataclass
class Table1Result:
    rows: List[Table1Row]

    def render(self) -> str:
        headers = [
            "benchmark",
            "parallelized",
            "candidates",
            "carried-deps%",
            "signals-removed%",
            "transfers%",
            "max-code-KB",
        ]
        data = [
            [
                r.bench,
                r.parallelized_loops,
                r.candidate_loops,
                r.carried_dep_pct,
                r.signals_removed_pct,
                r.data_transfer_pct,
                r.max_code_kb,
            ]
            for r in self.rows
        ]
        return format_table(
            headers, data, title="Table 1: characteristics of parallelized loops"
        )


def table1(runner: Optional[EvaluationRunner] = None) -> Table1Result:
    runner = runner or default_runner()
    rows: List[Table1Row] = []
    for bench in runner.benches():
        run = runner.helix_run(bench)
        selection = run.selection or runner.selection(bench)

        # Loop-carried dependence fraction over the chosen loops.
        module = runner.module(bench, "ref")
        analysis = runner.analysis.dependence(module)
        examined = carried = 0
        for func_name, header in run.chosen:
            func = module.functions[func_name]
            loop = runner.analysis.loops(func).by_header.get(header)
            if loop is None:
                continue
            ex, ca = analysis.loop_dependence_statistics(func, loop)
            examined += ex
            carried += ca

        naive = sum(i.naive_waits + i.naive_signals for i in run.infos)
        final = sum(i.final_waits + i.final_signals for i in run.infos)
        removed = 100.0 * (naive - final) / naive if naive else 0.0

        transfers = sum(
            s.transfer_words for s in run.parallel.loop_stats.values()
        )
        loads = sum(s.loads for s in run.parallel.loop_stats.values())
        transfer_pct = 100.0 * transfers / loads if loads else 0.0

        max_kb = max(
            (i.code_size_bytes() / 1024.0 for i in run.infos), default=0.0
        )
        rows.append(
            Table1Row(
                bench=bench,
                parallelized_loops=len(run.chosen),
                candidate_loops=selection.candidate_count,
                carried_dep_pct=100.0 * carried / examined if examined else 0.0,
                signals_removed_pct=removed,
                data_transfer_pct=transfer_pct,
                max_code_kb=max_kb,
            )
        )
    return Table1Result(rows=rows)


# ---------------------------------------------------------------- Figure 10


#: Ablation configurations: (label, options, prefetch, selection kwargs).
def _ablation_configs() -> List[Tuple[str, HelixOptions, PrefetchMode, Dict]]:
    return [
        (
            "neither",
            HelixOptions(
                enable_signal_optimization=False,
                enable_prefetch_balancing=False,
            ),
            PrefetchMode.NONE,
            {"signal_cost": 110.0, "unoptimized_signals": True},
        ),
        (
            "no-step8",
            HelixOptions(enable_prefetch_balancing=False),
            PrefetchMode.NONE,
            {"signal_cost": 110.0},
        ),
        (
            "no-step6",
            HelixOptions(
                enable_signal_optimization=False,
                enable_prefetch_balancing=False,
            ),
            PrefetchMode.HELIX,
            {"unoptimized_signals": True},
        ),
        (
            "helix-nobalance",
            HelixOptions(enable_prefetch_balancing=False),
            PrefetchMode.HELIX,
            {},
        ),
    ]


@dataclass
class Figure10Result:
    """Speedups at 6 cores with Steps 6/8 selectively disabled.

    Per the paper's caption, the Figure 6 balancing scheduler is disabled
    in all four configurations; the full-HELIX bar of Figure 9 shows the
    balancing contribution on top of ``helix-nobalance``.
    """

    speedups: Dict[str, Dict[str, float]]
    labels: Tuple[str, ...] = (
        "neither",
        "no-step8",
        "no-step6",
        "helix-nobalance",
    )

    def geomean(self, label: str) -> float:
        return geomean([row[label] for row in self.speedups.values()])

    def render(self) -> str:
        rows = [
            [bench] + [row[label] for label in self.labels]
            for bench, row in self.speedups.items()
        ]
        rows.append(["geoMean"] + [self.geomean(l) for l in self.labels])
        return format_table(
            ["benchmark"] + list(self.labels),
            rows,
            title="Figure 10: contribution of Steps 6 and 8 (6 cores)",
        )


def figure10(runner: Optional[EvaluationRunner] = None) -> Figure10Result:
    runner = runner or default_runner()
    speedups: Dict[str, Dict[str, float]] = {}
    for bench in runner.benches():
        row: Dict[str, float] = {}
        for label, options, prefetch, sel_kwargs in _ablation_configs():
            run = runner.pipeline(
                bench,
                options=options,
                prefetch=prefetch,
                cache_key=f"fig10:{label}",
                **sel_kwargs,
            )
            assert run.output_matches, f"{bench}/{label}: output diverged"
            row[label] = run.speedup
        speedups[bench] = row
    return Figure10Result(speedups=speedups)


# ---------------------------------------------------------------- Section 3.3


@dataclass
class PrefetchStudyResult:
    """HELIX vs matched vs ideal prefetching (Section 3.3)."""

    speedups: Dict[str, Dict[str, float]]
    modes: Tuple[str, ...] = ("none", "helix", "matched", "ideal")

    def geomean(self, mode: str) -> float:
        return geomean([row[mode] for row in self.speedups.values()])

    def render(self) -> str:
        rows = [
            [bench] + [row[m] for m in self.modes]
            for bench, row in self.speedups.items()
        ]
        rows.append(["geoMean"] + [self.geomean(m) for m in self.modes])
        table = format_table(
            ["benchmark"] + list(self.modes),
            rows,
            title="Section 3.3: signal prefetching study (6 cores)",
        )
        deltas = (
            f"\nmatched - helix geomean gap: "
            f"{self.geomean('matched') - self.geomean('helix'):+.2f} "
            f"(paper: ~0.1)\n"
            f"ideal - matched geomean gap: "
            f"{self.geomean('ideal') - self.geomean('matched'):+.2f} "
            f"(paper: ~0.4)"
        )
        return table + deltas


def prefetching_study(
    runner: Optional[EvaluationRunner] = None,
    jobs: Optional[int] = None,
) -> PrefetchStudyResult:
    runner = runner or default_runner()
    speedups: Dict[str, Dict[str, float]] = {}
    mode_map = {
        "none": PrefetchMode.NONE,
        "helix": PrefetchMode.HELIX,
        "matched": PrefetchMode.MATCHED,
        "ideal": PrefetchMode.IDEAL,
    }
    for bench in runner.benches():
        run = runner.helix_run(bench)
        values = run.speedups_at(
            [runner.machine.with_prefetch(mode) for mode in mode_map.values()],
            jobs=jobs,
        )
        speedups[bench] = dict(zip(mode_map, values))
    return PrefetchStudyResult(speedups=speedups)


# ---------------------------------------------------------------- Section 3.4


@dataclass
class ModelValidationResult:
    """Model-predicted vs measured speedups (Section 3.4)."""

    predicted: Dict[str, float]
    measured: Dict[str, float]

    def error_pct(self, bench: str) -> float:
        measured = self.measured[bench]
        if measured == 0:
            return 0.0
        return 100.0 * abs(self.predicted[bench] - measured) / measured

    @property
    def mean_error_pct(self) -> float:
        errors = [self.error_pct(b) for b in self.measured]
        return sum(errors) / len(errors) if errors else 0.0

    def render(self) -> str:
        rows = [
            [b, self.predicted[b], self.measured[b], self.error_pct(b)]
            for b in self.measured
        ]
        rows.append(["mean", None, None, self.mean_error_pct])
        return format_table(
            ["benchmark", "model", "measured", "error%"],
            rows,
            title=(
                "Section 3.4: speedup model validation "
                "(paper reports <4% error per benchmark)"
            ),
        )


def model_validation(
    runner: Optional[EvaluationRunner] = None,
) -> ModelValidationResult:
    runner = runner or default_runner()
    predicted: Dict[str, float] = {}
    measured: Dict[str, float] = {}
    for bench in runner.benches():
        run = runner.helix_run(bench)
        selection = run.selection or runner.selection(bench)
        profile = runner.profile(bench)
        saved = sum(
            selection.saved_time.get(lid, 0.0) for lid in run.chosen
        )
        total = float(profile.total_cycles)
        predicted[bench] = total / max(total - saved, 1.0)
        measured[bench] = run.speedup
    return ModelValidationResult(predicted=predicted, measured=measured)


# ---------------------------------------------------------------- Figure 11


@dataclass
class Figure11Result:
    """Time breakdown per selection strategy (levels 1..7 and HELIX)."""

    #: bench -> level label -> (parallel, seq_data, seq_control, outside)%.
    breakdown: Dict[str, Dict[str, Tuple[float, float, float, float]]]
    levels: Tuple[str, ...] = ("1", "2", "3", "4", "5", "6", "7", "H")

    def render(self) -> str:
        rows = []
        for bench, per_level in self.breakdown.items():
            for level in self.levels:
                par, sdata, sctl, outside = per_level[level]
                rows.append([bench, level, par, sdata, sctl, outside])
        return format_table(
            [
                "benchmark",
                "level",
                "parallel%",
                "seq-data%",
                "seq-control%",
                "outside%",
            ],
            rows,
            title="Figure 11: time breakdown by loop nesting level",
        )


def figure11(runner: Optional[EvaluationRunner] = None) -> Figure11Result:
    runner = runner or default_runner()
    breakdown: Dict[str, Dict[str, Tuple[float, float, float, float]]] = {}
    for bench in runner.benches():
        # Per the paper's caption, this analysis assumes an optimistic
        # 0-cycle communication latency -- HELIX then maximizes the
        # parallel-code fraction rather than net saved time.
        selection = runner.selection(bench, signal_cost=0.0)
        profile = runner.profile(bench)
        total = float(profile.total_cycles)
        per_level: Dict[str, Tuple[float, float, float, float]] = {}

        def classify(loop_ids) -> Tuple[float, float, float, float]:
            par = sdata = sctl = inside = 0.0
            for lid in loop_ids:
                inputs = selection.candidates.get(lid)
                if inputs is None:
                    continue
                par += inputs.parallel_cycles
                sdata += inputs.segment_cycles
                sctl += inputs.prologue_cycles
                inside += inputs.total_cycles
            outside = max(0.0, total - inside)
            scale = 100.0 / total
            return (par * scale, sdata * scale, sctl * scale, outside * scale)

        for level in range(1, 8):
            per_level[str(level)] = classify(runner.fixed_level(bench, level))
        per_level["H"] = classify(selection.chosen)
        breakdown[bench] = per_level
    return Figure11Result(breakdown=breakdown)


# ---------------------------------------------------------------- Figure 12


@dataclass
class Figure12Result:
    """Speedups when loop selection misestimates signal latency."""

    underestimated: Dict[str, float]
    overestimated: Dict[str, float]

    def render(self) -> str:
        rows = [
            [b, self.underestimated[b], self.overestimated[b]]
            for b in self.underestimated
        ]
        rows.append(
            [
                "geoMean",
                geomean(list(self.underestimated.values())),
                geomean(list(self.overestimated.values())),
            ]
        )
        return format_table(
            ["benchmark", "S=0 (under)", "S=110 (over)"],
            rows,
            title=(
                "Figure 12: impact of misestimated signal latency during "
                "loop selection (6 cores)"
            ),
        )


def figure12(runner: Optional[EvaluationRunner] = None) -> Figure12Result:
    runner = runner or default_runner()
    under: Dict[str, float] = {}
    over: Dict[str, float] = {}
    for bench in runner.benches():
        run_under = runner.pipeline(
            bench, signal_cost=0.0, cache_key="fig12:under"
        )
        assert run_under.output_matches
        under[bench] = run_under.speedup
        run_over = runner.pipeline(
            bench, signal_cost=110.0, cache_key="fig12:over"
        )
        assert run_over.output_matches
        over[bench] = run_over.speedup
    return Figure12Result(underestimated=under, overestimated=over)


# ---------------------------------------------------------------- Figure 13


@dataclass
class Figure13Result:
    """Nesting-level distribution of chosen loops per assumed latency."""

    #: latency label -> bench -> {level: % of chosen loops}.
    distributions: Dict[str, Dict[str, Dict[int, float]]]

    def render(self) -> str:
        rows = []
        for label, per_bench in self.distributions.items():
            for bench, dist in per_bench.items():
                for level in sorted(dist):
                    rows.append([label, bench, level, dist[level]])
        return format_table(
            ["signal-cost", "benchmark", "level", "% of chosen loops"],
            rows,
            title="Figure 13: nesting levels of chosen loops (6 cores)",
        )


# ------------------------------------------------- future work: fast signaling


@dataclass
class LatencySweepResult:
    """Speedup vs hardware signal latency (the conclusion's future work).

    The paper closes: "we expect our implementation to exploit fast
    hardware implementations of signaling to obtain better speedup."
    This sweep quantifies that headroom on the simulator: the recorded
    traces are replayed under progressively faster (and slower) signal
    hardware, with loop selection re-run per latency point.
    """

    #: latency (cycles) -> bench -> speedup at 6 cores.
    speedups: Dict[int, Dict[str, float]]

    def geomean(self, latency: int) -> float:
        return geomean(list(self.speedups[latency].values()))

    def render(self) -> str:
        latencies = sorted(self.speedups)
        benches = list(next(iter(self.speedups.values())))
        rows = []
        for bench in benches:
            rows.append([bench] + [self.speedups[l][bench] for l in latencies])
        rows.append(["geoMean"] + [self.geomean(l) for l in latencies])
        return format_table(
            ["benchmark"] + [f"L={l}" for l in latencies],
            rows,
            title=(
                "Future work: speedup vs hardware signal latency "
                "(6 cores; paper testbed is L=110)"
            ),
        )


def latency_sweep(
    runner: Optional[EvaluationRunner] = None,
    latencies: Sequence[int] = (4, 16, 32, 64, 110, 220),
    jobs: Optional[int] = None,
) -> LatencySweepResult:
    import dataclasses as _dc

    runner = runner or default_runner()
    machines = [
        _dc.replace(
            runner.machine,
            signal_latency=max(latency, 4),
            word_transfer_cycles=max(latency, 4),
            prefetched_signal_latency=min(
                4, max(latency, 1)
            ),
        )
        for latency in latencies
    ]
    speedups: Dict[int, Dict[str, float]] = {l: {} for l in latencies}
    for bench in runner.benches():
        run = runner.helix_run(bench)
        values = run.speedups_at(machines, jobs=jobs)
        for latency, value in zip(latencies, values):
            speedups[latency][bench] = value
    return LatencySweepResult(speedups=speedups)


def figure13(runner: Optional[EvaluationRunner] = None) -> Figure13Result:
    runner = runner or default_runner()
    distributions: Dict[str, Dict[str, Dict[int, float]]] = {}
    for label, signal_cost in (("4 (prefetched)", None), ("110", 110.0)):
        per_bench: Dict[str, Dict[int, float]] = {}
        for bench in runner.benches():
            selection = runner.selection(bench, signal_cost=signal_cost)
            counts: Dict[int, int] = {}
            for lid in selection.chosen:
                inputs = selection.candidates.get(lid)
                level = inputs.nesting_level if inputs else 1
                counts[level] = counts.get(level, 0) + 1
            chosen = sum(counts.values())
            per_bench[bench] = {
                level: 100.0 * n / chosen for level, n in counts.items()
            } if chosen else {}
        distributions[label] = per_bench
    return Figure13Result(distributions=distributions)
