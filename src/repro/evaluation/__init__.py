"""Evaluation harness: regenerates every table and figure of the paper.

* :mod:`repro.evaluation.runner` -- cached benchmark pipelines (compile,
  profile, select, transform, execute, replay) with per-stage
  observability counters.
* :mod:`repro.evaluation.cache` -- content-addressed disk cache that
  persists interpretation artifacts across processes and runs.
* :mod:`repro.evaluation.parallel_runner` -- fans independent benchmark
  pipelines out over worker processes and merges them back through the
  shared disk cache.  Interrupted runs raise
  :class:`~repro.evaluation.parallel_runner.SuiteInterrupted` carrying
  the partial report.
* :mod:`repro.evaluation.figures` -- one driver per experiment:
  Figure 9 (speedups), Table 1 (loop characteristics), Figure 10
  (Step 6/8 ablation), Section 3.3 (prefetching study), Section 3.4
  (model validation), Figure 11 (time breakdown by nesting level),
  Figure 12 (signal-latency misestimation), Figure 13 (nesting-level
  distribution).
* :mod:`repro.evaluation.reporting` -- ASCII tables and statistics.
"""

from repro.evaluation.cache import EvaluationCache, code_version
from repro.evaluation.runner import (
    EvaluationRunner,
    StageStats,
    default_runner,
)
from repro.evaluation.reporting import (
    format_stage_stats,
    format_table,
    geomean,
)
from repro.evaluation import figures

__all__ = [
    "EvaluationCache",
    "EvaluationRunner",
    "StageStats",
    "code_version",
    "default_runner",
    "figures",
    "format_stage_stats",
    "format_table",
    "geomean",
]
