"""Evaluation harness: regenerates every table and figure of the paper.

* :mod:`repro.evaluation.runner` -- cached benchmark pipelines (compile,
  profile, select, transform, execute, replay).
* :mod:`repro.evaluation.figures` -- one driver per experiment:
  Figure 9 (speedups), Table 1 (loop characteristics), Figure 10
  (Step 6/8 ablation), Section 3.3 (prefetching study), Section 3.4
  (model validation), Figure 11 (time breakdown by nesting level),
  Figure 12 (signal-latency misestimation), Figure 13 (nesting-level
  distribution).
* :mod:`repro.evaluation.reporting` -- ASCII tables and statistics.
"""

from repro.evaluation.runner import EvaluationRunner, default_runner
from repro.evaluation.reporting import format_table, geomean
from repro.evaluation import figures

__all__ = [
    "EvaluationRunner",
    "default_runner",
    "figures",
    "format_table",
    "geomean",
]
