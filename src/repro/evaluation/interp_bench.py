"""Interpreter backend microbenchmarks (``repro bench-interp``).

Times the interpreter tiers — the tree walker, the pre-decoded closure
backend and the superblock code-generated backend — on the same
compiled modules and reports per-program and aggregate speedups.  Every
timed group is also a differential check: the backends must produce
field-identical :class:`ExecutionResult`\\ s (output, cycles,
instructions, return value) or the run aborts.

Each compiled backend is timed in two lanes, like ``bench-sched``:

* **cold** -- a fresh :class:`Interpreter` per run, so the measurement
  includes decode and superblock code generation;
* **warm** -- repeated runs on one interpreter whose per-function
  caches are hot, measuring steady-state execution only.

A fourth group, the **hooked lane**, measures *instrumented* (profiled-
run) throughput: an interpreter with ``count_loads`` on and an
``on_block_entry`` override — the observation points the profiler and
:class:`~repro.runtime.parallel.ParallelExecutor` rely on — timed on
the decoded hooked variant versus the hooked superblock tier
(cold + warm).  ``hooked_speedup`` is warm hooked-superblock over
hooked-decoded; CI gates its geomean with ``--min-hooked-speedup``.
The two hooked runs must agree on result fields, ``load_count`` *and*
the number of hook invocations, or the run aborts.

Wall-clock is the minimum over ``repeat`` runs (minimum, not mean:
interpreter timing noise is one-sided).  Headline ``speedup`` is warm
superblock over tree; the cold lane quantifies compile overhead.  All
backends execute the exact same dynamic instruction stream, so the
throughput ratio equals the wall-clock speedup.

The JSON report (``BENCH_interp.json`` by convention) accumulates the
repo's perf trajectory across PRs: CI uploads one per commit and gates
on ``--min-geomean-speedup``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.bench import benchmark_names, compile_benchmark
from repro.ir import Module
from repro.runtime.interpreter import ExecutionResult, Interpreter
from repro.runtime.machine import MachineConfig
from repro.runtime.profiler import profile_module

#: Benchmarks used by ``--quick`` (CI smoke): a small mix of control-
#: and memory-heavy programs that decodes + runs in a few seconds.
QUICK_BENCHES = ("gzip", "mcf", "equake", "bzip2")


def _geomean(values: Sequence[float]) -> float:
    if not values:
        return 1.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def _ratio(numer: float, denom: float) -> float:
    return numer / denom if denom > 0 else float("inf")


@dataclass
class ProgramTiming:
    """Timed comparison of the three backends on one program.

    ``decoded_seconds`` and ``superblock_seconds`` are the warm lane;
    the ``*_cold_seconds`` twins include decode / code generation.
    """

    name: str
    instructions: int
    tree_seconds: float
    decoded_cold_seconds: float
    decoded_seconds: float
    superblock_cold_seconds: float
    superblock_seconds: float
    #: Hooked (instrumented) lane: decoded hooked variant warm, hooked
    #: superblock cold and warm.
    hooked_decoded_seconds: float = 0.0
    hooked_cold_seconds: float = 0.0
    hooked_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Headline ratio: warm superblock over the tree walker."""
        return _ratio(self.tree_seconds, self.superblock_seconds)

    @property
    def decoded_speedup(self) -> float:
        return _ratio(self.tree_seconds, self.decoded_seconds)

    @property
    def hooked_speedup(self) -> float:
        """Instrumented ratio: warm hooked superblock over hooked decoded."""
        return _ratio(self.hooked_decoded_seconds, self.hooked_seconds)

    @property
    def hooked_cold_speedup(self) -> float:
        return _ratio(self.hooked_decoded_seconds, self.hooked_cold_seconds)

    @property
    def cold_speedup(self) -> float:
        return _ratio(self.tree_seconds, self.superblock_cold_seconds)

    @property
    def codegen_overhead_seconds(self) -> float:
        """Cold-minus-warm superblock time: decode + codegen cost."""
        return max(0.0, self.superblock_cold_seconds - self.superblock_seconds)

    @property
    def tree_ips(self) -> float:
        return self.instructions / self.tree_seconds if self.tree_seconds else 0.0

    @property
    def superblock_ips(self) -> float:
        if self.superblock_seconds <= 0:
            return 0.0
        return self.instructions / self.superblock_seconds

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "instructions": self.instructions,
            "tree_seconds": self.tree_seconds,
            "decoded_cold_seconds": self.decoded_cold_seconds,
            "decoded_seconds": self.decoded_seconds,
            "superblock_cold_seconds": self.superblock_cold_seconds,
            "superblock_seconds": self.superblock_seconds,
            "hooked_decoded_seconds": self.hooked_decoded_seconds,
            "hooked_cold_seconds": self.hooked_cold_seconds,
            "hooked_seconds": self.hooked_seconds,
            "tree_instr_per_sec": self.tree_ips,
            "superblock_instr_per_sec": self.superblock_ips,
            "speedup": self.speedup,
            "decoded_speedup": self.decoded_speedup,
            "cold_speedup": self.cold_speedup,
            "hooked_speedup": self.hooked_speedup,
            "hooked_cold_speedup": self.hooked_cold_speedup,
            "codegen_overhead_seconds": self.codegen_overhead_seconds,
        }


@dataclass
class InterpBenchReport:
    """Everything one ``bench-interp`` invocation measured."""

    scale: str
    repeat: int
    programs: List[ProgramTiming] = field(default_factory=list)

    @property
    def geomean_speedup(self) -> float:
        return _geomean([t.speedup for t in self.programs])

    @property
    def decoded_geomean_speedup(self) -> float:
        return _geomean([t.decoded_speedup for t in self.programs])

    @property
    def cold_geomean_speedup(self) -> float:
        return _geomean([t.cold_speedup for t in self.programs])

    @property
    def hooked_geomean_speedup(self) -> float:
        return _geomean([t.hooked_speedup for t in self.programs])

    @property
    def hooked_cold_geomean_speedup(self) -> float:
        return _geomean([t.hooked_cold_speedup for t in self.programs])

    @property
    def min_hooked_speedup(self) -> float:
        if not self.programs:
            return 1.0
        return min(t.hooked_speedup for t in self.programs)

    @property
    def min_speedup(self) -> float:
        if not self.programs:
            return 1.0
        return min(t.speedup for t in self.programs)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.programs)

    @property
    def aggregate_speedup(self) -> float:
        """Total-time ratio: weights each program by its runtime."""
        tree = sum(t.tree_seconds for t in self.programs)
        superblock = sum(t.superblock_seconds for t in self.programs)
        return _ratio(tree, superblock)

    @property
    def codegen_overhead_seconds(self) -> float:
        return sum(t.codegen_overhead_seconds for t in self.programs)

    def as_dict(self) -> dict:
        return {
            "scale": self.scale,
            "repeat": self.repeat,
            "programs": [t.as_dict() for t in self.programs],
            "summary": {
                "total_instructions": self.total_instructions,
                "geomean_speedup": self.geomean_speedup,
                "decoded_geomean_speedup": self.decoded_geomean_speedup,
                "cold_geomean_speedup": self.cold_geomean_speedup,
                "hooked_geomean_speedup": self.hooked_geomean_speedup,
                "hooked_cold_geomean_speedup": self.hooked_cold_geomean_speedup,
                "aggregate_speedup": self.aggregate_speedup,
                "min_speedup": self.min_speedup,
                "min_hooked_speedup": self.min_hooked_speedup,
                "codegen_overhead_seconds": self.codegen_overhead_seconds,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    def render(self) -> str:
        lines = [
            f"{'program':<10} {'instructions':>13} {'tree s':>8} "
            f"{'decoded s':>9} {'sb cold':>8} {'sb warm':>8} {'speedup':>8} "
            f"{'hooked':>7}"
        ]
        for t in self.programs:
            lines.append(
                f"{t.name:<10} {t.instructions:>13,} {t.tree_seconds:>8.3f} "
                f"{t.decoded_seconds:>9.3f} {t.superblock_cold_seconds:>8.3f} "
                f"{t.superblock_seconds:>8.3f} {t.speedup:>7.2f}x "
                f"{t.hooked_speedup:>6.2f}x"
            )
        lines.append(
            f"{'geomean':<10} {self.total_instructions:>13,} "
            f"{sum(t.tree_seconds for t in self.programs):>8.3f} "
            f"{sum(t.decoded_seconds for t in self.programs):>9.3f} "
            f"{sum(t.superblock_cold_seconds for t in self.programs):>8.3f} "
            f"{sum(t.superblock_seconds for t in self.programs):>8.3f} "
            f"{self.geomean_speedup:>7.2f}x "
            f"{self.hooked_geomean_speedup:>6.2f}x"
        )
        lines.append(
            f"(vs decoded {self.decoded_geomean_speedup:.2f}x -> superblock "
            f"gain {_ratio(self.geomean_speedup, self.decoded_geomean_speedup):.2f}x; "
            f"cold {self.cold_geomean_speedup:.2f}x; hooked lane "
            f"{self.hooked_geomean_speedup:.2f}x over hooked decoded, "
            f"cold {self.hooked_cold_geomean_speedup:.2f}x)"
        )
        return "\n".join(lines)


def _time_tree(
    module: Module, machine: MachineConfig, repeat: int
) -> Tuple[float, ExecutionResult]:
    """Tree walker: no caches to warm, minimum over ``repeat`` runs."""
    interp = Interpreter(module, machine, backend="tree")
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = interp.run()
        best = min(best, time.perf_counter() - start)
    return best, result


def _time_cold(
    module: Module, machine: MachineConfig, backend: str, repeat: int
) -> Tuple[float, ExecutionResult]:
    """Fresh interpreter per run: includes decode / codegen time."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        interp = Interpreter(module, machine, backend=backend)
        start = time.perf_counter()
        result = interp.run()
        best = min(best, time.perf_counter() - start)
    return best, result


def _time_warm(
    module: Module,
    machine: MachineConfig,
    backend: str,
    repeat: int,
    block_profile=None,
) -> Tuple[float, ExecutionResult]:
    """One interpreter, caches pre-warmed by an untimed priming run.

    Warm lanes model the steady state of the evaluation pipeline, where
    the profile stage's block-entry counts are available: passing them
    as ``block_profile`` lets the superblock tiers form trace-guided
    chains exactly as :class:`~repro.evaluation.runner.EvaluationRunner`
    wires them into sequential and parallel execution.
    """
    interp = Interpreter(
        module, machine, backend=backend, block_profile=block_profile
    )
    result = interp.run()
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = interp.run()
        best = min(best, time.perf_counter() - start)
    return best, result


class _HookBearingInterpreter(Interpreter):
    """Minimal instrumented interpreter for the hooked lane.

    Counts block entries through ``on_block_entry`` and loads through
    ``count_loads`` -- the observation points the profiler and the
    parallel executor depend on -- with negligible Python work per
    event, so the measured ratio reflects tier overhead rather than
    harness weight.  ``backend="decoded"`` selects the decoded hooked
    variant; ``backend="superblock"`` the hooked superblock tier.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.count_loads = True
        self.blocks_entered = 0

    def on_block_entry(self, frame, prev, block) -> None:
        self.blocks_entered += 1


def _time_hooked_cold(
    module: Module, machine: MachineConfig, backend: str, repeat: int
) -> Tuple[float, ExecutionResult, int, int]:
    """Fresh instrumented interpreter per run (includes decode/codegen);
    returns ``(seconds, result, load_count, blocks_entered)``."""
    best = float("inf")
    result = None
    interp = None
    for _ in range(max(1, repeat)):
        interp = _HookBearingInterpreter(module, machine, backend=backend)
        start = time.perf_counter()
        result = interp.run()
        best = min(best, time.perf_counter() - start)
    return best, result, interp.load_count, interp.blocks_entered


def _time_hooked_pair(
    module: Module,
    machine: MachineConfig,
    repeat: int,
    block_profile=None,
) -> Tuple[
    Tuple[float, ExecutionResult, int, int],
    Tuple[float, ExecutionResult, int, int],
]:
    """Warm instrumented lanes, interleaved; returns ``(decoded, superblock)``
    tuples of ``(seconds, result, load_count, blocks_entered)``.

    The two lanes alternate timed runs instead of running back to back:
    the report's gated quantity is their *ratio*, and slow machine drift
    (frequency scaling, allocator state) between two sequential timing
    windows otherwise dominates it.  Interleaving puts both lanes in
    every drift regime, so min-of-N for each sees the same best-case
    machine state.

    ``block_profile`` mirrors the parallel execute/record path, which
    re-runs instrumented code with the profile stage's counts in hand
    (trace-guided chains); the decoded hooked baseline has no chains
    and ignores it.
    """
    hd = _HookBearingInterpreter(module, machine, backend="decoded")
    hs = _HookBearingInterpreter(
        module, machine, backend="superblock", block_profile=block_profile
    )
    # Prime both (decode + codegen happen here, outside the timers).
    hd.run()
    hs.run()
    hd_best = hs_best = float("inf")
    hd_r = hs_r = None
    for _ in range(max(1, repeat)):
        # Base-interpreter runs accumulate load_count across run() calls;
        # zero both counters so the differential check sees one run.
        hd.load_count = 0
        hd.blocks_entered = 0
        start = time.perf_counter()
        hd_r = hd.run()
        hd_best = min(hd_best, time.perf_counter() - start)
        hs.load_count = 0
        hs.blocks_entered = 0
        start = time.perf_counter()
        hs_r = hs.run()
        hs_best = min(hs_best, time.perf_counter() - start)
    return (
        (hd_best, hd_r, hd.load_count, hd.blocks_entered),
        (hs_best, hs_r, hs.load_count, hs.blocks_entered),
    )


def run_interp_bench(
    benches: Optional[Sequence[str]] = None,
    scale: str = "train",
    repeat: int = 1,
    machine: Optional[MachineConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> InterpBenchReport:
    """Time all three backends on ``benches`` and differential-check them.

    Raises :class:`AssertionError` if the backends ever disagree — the
    benchmark doubles as an end-to-end identity check.
    """
    machine = machine or MachineConfig()
    names = list(benches) if benches is not None else benchmark_names()
    report = InterpBenchReport(scale=scale, repeat=repeat)
    for name in names:
        if progress:
            progress(name)
        module = compile_benchmark(name, scale)
        # One profiled run per program supplies the block-entry counts
        # the warm superblock lanes use for trace-guided chains (the
        # steady state every pipeline re-run sees).
        counts = profile_module(module, machine).block_counts
        tree_s, tree_r = _time_tree(module, machine, repeat)
        decoded_cold_s, _ = _time_cold(module, machine, "decoded", repeat)
        decoded_s, decoded_r = _time_warm(module, machine, "decoded", repeat)
        super_cold_s, _ = _time_cold(module, machine, "superblock", repeat)
        super_s, super_r = _time_warm(
            module, machine, "superblock", repeat, block_profile=counts
        )
        hs_cold_s, _, _, _ = _time_hooked_cold(
            module, machine, "superblock", repeat
        )
        (
            (hd_s, hd_r, hd_loads, hd_blocks),
            (hs_s, hs_r, hs_loads, hs_blocks),
        ) = _time_hooked_pair(module, machine, repeat, block_profile=counts)
        oracle = tree_r.to_dict()
        for label, other in (
            ("decoded", decoded_r),
            ("superblock", super_r),
            ("hooked-decoded", hd_r),
            ("hooked-superblock", hs_r),
        ):
            if oracle != other.to_dict():  # pragma: no cover - identity gate
                raise AssertionError(
                    f"backend divergence on {name!r}: tree={oracle} "
                    f"{label}={other.to_dict()}"
                )
        if (hd_loads, hd_blocks) != (hs_loads, hs_blocks):
            # pragma: no cover - identity gate
            raise AssertionError(
                f"instrumentation divergence on {name!r}: decoded saw "
                f"{hd_loads} loads/{hd_blocks} blocks, superblock "
                f"{hs_loads}/{hs_blocks}"
            )
        report.programs.append(
            ProgramTiming(
                name=name,
                instructions=tree_r.instructions,
                tree_seconds=tree_s,
                decoded_cold_seconds=decoded_cold_s,
                decoded_seconds=decoded_s,
                superblock_cold_seconds=super_cold_s,
                superblock_seconds=super_s,
                hooked_decoded_seconds=hd_s,
                hooked_cold_seconds=hs_cold_s,
                hooked_seconds=hs_s,
            )
        )
    return report
