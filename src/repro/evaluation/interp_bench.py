"""Interpreter backend microbenchmarks (``repro bench-interp``).

Times the tree-walking and pre-decoded interpreter backends on the same
compiled modules and reports per-program and aggregate speedups.  Every
timed pair is also a differential check: the two backends must produce
identical :class:`ExecutionResult`\\ s or the run aborts.

The harness measures the *uninstrumented* sequential path — the oracle
path the tentpole optimisation targets — with wall-clock taken as the
minimum over ``repeat`` runs (minimum, not mean: interpreter timing
noise is one-sided).  Throughput is dynamic instructions per second;
both backends execute the exact same dynamic instruction stream, so the
throughput ratio equals the wall-clock speedup.

The JSON report (``BENCH_interp.json`` by convention) accumulates the
repo's perf trajectory across PRs: CI uploads one per commit.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench import benchmark_names, compile_benchmark
from repro.ir import Module
from repro.runtime.interpreter import run_module
from repro.runtime.machine import MachineConfig

#: Benchmarks used by ``--quick`` (CI smoke): a small mix of control-
#: and memory-heavy programs that decodes + runs in a few seconds.
QUICK_BENCHES = ("gzip", "mcf", "equake", "bzip2")


@dataclass
class ProgramTiming:
    """Timed comparison of both backends on one program."""

    name: str
    instructions: int
    tree_seconds: float
    decoded_seconds: float

    @property
    def speedup(self) -> float:
        if self.decoded_seconds <= 0:
            return float("inf")
        return self.tree_seconds / self.decoded_seconds

    @property
    def tree_ips(self) -> float:
        return self.instructions / self.tree_seconds if self.tree_seconds else 0.0

    @property
    def decoded_ips(self) -> float:
        if self.decoded_seconds <= 0:
            return 0.0
        return self.instructions / self.decoded_seconds

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "instructions": self.instructions,
            "tree_seconds": self.tree_seconds,
            "decoded_seconds": self.decoded_seconds,
            "tree_instr_per_sec": self.tree_ips,
            "decoded_instr_per_sec": self.decoded_ips,
            "speedup": self.speedup,
        }


@dataclass
class InterpBenchReport:
    """Everything one ``bench-interp`` invocation measured."""

    scale: str
    repeat: int
    programs: List[ProgramTiming] = field(default_factory=list)

    @property
    def geomean_speedup(self) -> float:
        if not self.programs:
            return 1.0
        product = 1.0
        for timing in self.programs:
            product *= timing.speedup
        return product ** (1.0 / len(self.programs))

    @property
    def min_speedup(self) -> float:
        if not self.programs:
            return 1.0
        return min(t.speedup for t in self.programs)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.programs)

    @property
    def aggregate_speedup(self) -> float:
        """Total-time ratio: weights each program by its runtime."""
        tree = sum(t.tree_seconds for t in self.programs)
        decoded = sum(t.decoded_seconds for t in self.programs)
        if decoded <= 0:
            return float("inf")
        return tree / decoded

    def as_dict(self) -> dict:
        return {
            "scale": self.scale,
            "repeat": self.repeat,
            "programs": [t.as_dict() for t in self.programs],
            "summary": {
                "total_instructions": self.total_instructions,
                "geomean_speedup": self.geomean_speedup,
                "aggregate_speedup": self.aggregate_speedup,
                "min_speedup": self.min_speedup,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    def render(self) -> str:
        lines = [
            f"{'program':<10} {'instructions':>13} {'tree s':>8} "
            f"{'decoded s':>9} {'speedup':>8}"
        ]
        for t in self.programs:
            lines.append(
                f"{t.name:<10} {t.instructions:>13,} {t.tree_seconds:>8.3f} "
                f"{t.decoded_seconds:>9.3f} {t.speedup:>7.2f}x"
            )
        lines.append(
            f"{'geomean':<10} {self.total_instructions:>13,} "
            f"{sum(t.tree_seconds for t in self.programs):>8.3f} "
            f"{sum(t.decoded_seconds for t in self.programs):>9.3f} "
            f"{self.geomean_speedup:>7.2f}x"
        )
        return "\n".join(lines)


def _time_backend(
    module: Module, machine: MachineConfig, backend: str, repeat: int
):
    """Minimum wall-clock over ``repeat`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = run_module(module, machine, backend=backend)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_interp_bench(
    benches: Optional[Sequence[str]] = None,
    scale: str = "train",
    repeat: int = 1,
    machine: Optional[MachineConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> InterpBenchReport:
    """Time both backends on ``benches`` and differential-check them.

    Raises :class:`AssertionError` if the backends ever disagree — the
    benchmark doubles as an end-to-end identity check.
    """
    machine = machine or MachineConfig()
    names = list(benches) if benches is not None else benchmark_names()
    report = InterpBenchReport(scale=scale, repeat=repeat)
    for name in names:
        if progress:
            progress(name)
        module = compile_benchmark(name, scale)
        tree_s, tree_r = _time_backend(module, machine, "tree", repeat)
        decoded_s, decoded_r = _time_backend(module, machine, "decoded", repeat)
        if tree_r.to_dict() != decoded_r.to_dict():  # pragma: no cover
            raise AssertionError(
                f"backend divergence on {name!r}: "
                f"tree={tree_r.to_dict()} decoded={decoded_r.to_dict()}"
            )
        report.programs.append(
            ProgramTiming(
                name=name,
                instructions=tree_r.instructions,
                tree_seconds=tree_s,
                decoded_seconds=decoded_s,
            )
        )
    return report
