"""Metadata describing one HELIX-parallelized loop.

The transformation produces real IR (guard block, cloned parallel version,
``wait``/``signal``/``next_iter`` pseudo-ops, forwarding marks) *plus* a
:class:`ParallelizedLoop` record; the parallel executor drives its timing
reconstruction off this record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.dependence import DataDependence
from repro.analysis.loopnest import LoopId
from repro.ir import Instruction


@dataclass
class HelixOptions:
    """Configuration of the transformation (the Figure 10 ablation knobs)."""

    #: Step 5: inline calls that are dependence endpoints.
    enable_inlining: bool = True
    #: Step 6: signal minimization.
    enable_signal_optimization: bool = True
    #: Step 8: helper threads (signal prefetching).  Execution-time knob;
    #: recorded here so results are self-describing.
    enable_helper_threads: bool = True
    #: The Figure 6 code-balancing scheduler feeding Step 8.
    enable_prefetch_balancing: bool = True
    #: Step 5 scheduling (shrinking segments within blocks).
    enable_segment_scheduling: bool = True
    max_inline_instructions: int = 400
    max_inline_rounds: int = 4


@dataclass
class DepSync:
    """Synchronization state of one dependence of the loop."""

    dep: DataDependence
    #: Block-level guarded region R(d) in the parallel version.
    region: FrozenSet[str]
    #: Whether this dependence keeps its own wait/signal pair
    #: (a member of N_to-synch after Theorem 1).
    synchronized: bool = True
    #: Index of the dependence whose synchronization covers this one.
    covered_by: Optional[int] = None
    #: Dependences merged into this one (identical regions).
    merged: List[int] = field(default_factory=list)
    wait_instrs: List[Instruction] = field(default_factory=list)
    signal_instrs: List[Instruction] = field(default_factory=list)

    @property
    def index(self) -> int:
        return self.dep.index


@dataclass
class ParallelizedLoop:
    """Everything the runtime needs to know about one parallelized loop."""

    loop_id: LoopId
    func_name: str
    #: Sequential version header (the original loop's header).
    seq_header: str
    #: Guard block: tests ``__helix_active`` and picks a version (Step 9).
    guard_block: str
    #: Parallel-version preheader (sets the active flag).
    par_preheader: str
    par_header: str
    par_latch: str
    par_blocks: Set[str] = field(default_factory=set)
    prologue_blocks: Set[str] = field(default_factory=set)
    body_blocks: Set[str] = field(default_factory=set)
    #: Exit stub block -> successor outside the loop (Step 9 exit paths).
    exit_stubs: Dict[str, str] = field(default_factory=dict)
    deps: List[DepSync] = field(default_factory=list)
    #: Counted loop (Step 3): the prologue is pure bookkeeping over
    #: induction/invariant values, so each core derives its own iteration
    #: numbers locally and no control signal chain is needed.
    counted: bool = False
    #: Helper-thread wait sequence: dependence indices in availability
    #: order (Step 8).
    helper_order: List[int] = field(default_factory=list)
    options: HelixOptions = field(default_factory=HelixOptions)

    # -- static statistics (Table 1 inputs) ---------------------------------

    #: Wait/signal instruction counts before Step 6 ran.
    naive_waits: int = 0
    naive_signals: int = 0
    final_waits: int = 0
    final_signals: int = 0
    inlined_calls: int = 0
    #: Instruction count of the parallel version (code size proxy).
    par_instruction_count: int = 0

    @property
    def synchronized_deps(self) -> List[DepSync]:
        return [d for d in self.deps if d.synchronized]

    @property
    def segments_per_iteration(self) -> int:
        """Number of sequential segments (synchronized dependences)."""
        return len(self.synchronized_deps)

    def dep_by_index(self, index: int) -> DepSync:
        for sync in self.deps:
            if sync.dep.index == index:
                return sync
        raise KeyError(index)

    def code_size_bytes(self, bytes_per_instruction: int = 4) -> int:
        """Rough machine-code footprint of one iteration thread."""
        return self.par_instruction_count * bytes_per_instruction
