"""Step 4: computing sequential segments and inserting wait/signal.

For every dependence ``d = (a, b)`` in ``D_data``:

* ``wait(d)`` is inserted immediately before each occurrence of an
  endpoint, and before every ``signal(d)`` (so the next iteration is
  unblocked only after *all* previous iterations got past the endpoints --
  the paper's handling of dependences spanning non-adjacent iterations).
* ``signal(d)`` is inserted at the earliest point along every path through
  the iteration at which neither endpoint can be reached any more: the
  entries of blocks outside the guarded region whose predecessor is inside
  it, and the end of the latch when the region extends to it.

The *guarded region* R(d) is the set of loop blocks from which an endpoint
block is still reachable without crossing the loop's back edge.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set, Tuple

from repro.analysis.cfg import CFGView, reachable_within
from repro.analysis.dependence import DataDependence
from repro.analysis.loops import Loop
from repro.core.loopinfo import DepSync
from repro.ir import Function, Instruction, Opcode


def compute_region(
    cfg: CFGView, loop: Loop, dep: DataDependence, func: Function
) -> FrozenSet[str]:
    """R(d): loop blocks that can still reach an endpoint this iteration."""
    endpoint_blocks: Set[str] = set()
    endpoint_uids = {i.uid for i in dep.endpoints()}
    for name in loop.blocks:
        block = func.blocks[name]
        if any(instr.uid in endpoint_uids for instr in block.instructions):
            endpoint_blocks.add(name)
    blocked = {(latch, loop.header) for latch in loop.latches}
    region = reachable_within(
        cfg, endpoint_blocks, frozenset(loop.blocks), blocked
    )
    return frozenset(region)


def signal_sites(
    cfg: CFGView,
    loop: Loop,
    region: FrozenSet[str],
    inblock_signalled: FrozenSet[str] = frozenset(),
) -> Tuple[List[str], bool]:
    """Where signal(d) goes: (entry blocks outside R, signal-at-latch?).

    ``inblock_signalled`` are region blocks that already signal right
    after their last endpoint; paths through them need no entry signal.
    """
    back_edges = {(latch, loop.header) for latch in loop.latches}
    entries: List[str] = []
    for name in sorted(loop.blocks):
        if name in region:
            continue
        preds_in_region = [
            p
            for p in cfg.preds[name]
            if p in region
            and (p, name) not in back_edges
            and p not in inblock_signalled
        ]
        if preds_in_region:
            entries.append(name)
    at_latch = any(
        latch in region and latch not in inblock_signalled
        for latch in loop.latches
    )
    return entries, at_latch


def inblock_signal_blocks(
    cfg: CFGView,
    loop: Loop,
    region: FrozenSet[str],
    endpoint_blocks: FrozenSet[str],
) -> FrozenSet[str]:
    """Endpoint blocks where the signal can go right after the last
    endpoint: no endpoint is reachable afterwards because every
    in-iteration successor lies outside the region.  This realizes the
    paper's "earliest point at which neither a nor b can be reached" at
    instruction granularity.
    """
    back_edges = {(latch, loop.header) for latch in loop.latches}
    result = set()
    for name in endpoint_blocks:
        successors = [
            s
            for s in cfg.succs[name]
            if s in loop.blocks and (name, s) not in back_edges
        ]
        if all(s not in region for s in successors):
            result.add(name)
    return frozenset(result)


def insert_synchronization(
    func: Function,
    loop: Loop,
    deps: Sequence[DataDependence],
    cfg: CFGView = None,
) -> List[DepSync]:
    """Insert wait/signal for every dependence; returns their DepSyncs."""
    cfg = cfg or CFGView(func)
    syncs: List[DepSync] = []
    for dep in deps:
        region = compute_region(cfg, loop, dep, func)
        sync = DepSync(dep=dep, region=region)
        if not region:
            # Endpoints vanished (e.g. all disambiguated away upstream).
            sync.synchronized = False
            syncs.append(sync)
            continue
        endpoint_uids = {i.uid for i in dep.endpoints()}
        endpoint_blocks = frozenset(
            name
            for name in region
            if any(
                i.uid in endpoint_uids
                for i in func.blocks[name].instructions
            )
        )
        signal_in_block = inblock_signal_blocks(
            cfg, loop, region, endpoint_blocks
        )

        # wait(d) before each endpoint occurrence; in blocks where the
        # signal is legal right after the last endpoint, place it there.
        for name in sorted(region):
            block = func.blocks[name]
            offset = 0
            last_endpoint_at = None
            for index, instr in enumerate(list(block.instructions)):
                if instr.uid in endpoint_uids:
                    wait = Instruction(Opcode.WAIT, dep_id=dep.index)
                    block.insert(index + offset, wait)
                    offset += 1
                    sync.wait_instrs.append(wait)
                    last_endpoint_at = index + offset
            if name in signal_in_block and last_endpoint_at is not None:
                signal = Instruction(Opcode.SIGNAL, dep_id=dep.index)
                block.insert(last_endpoint_at + 1, signal)
                sync.signal_instrs.append(signal)

        # signal(d) at remaining region exits, preceded by wait(d).
        entries, at_latch = signal_sites(cfg, loop, region, signal_in_block)
        for name in entries:
            block = func.blocks[name]
            wait = Instruction(Opcode.WAIT, dep_id=dep.index)
            signal = Instruction(Opcode.SIGNAL, dep_id=dep.index)
            block.insert(0, wait)
            block.insert(1, signal)
            sync.wait_instrs.append(wait)
            sync.signal_instrs.append(signal)
        if at_latch:
            latch = func.blocks[next(iter(loop.latches))]
            wait = Instruction(Opcode.WAIT, dep_id=dep.index)
            signal = Instruction(Opcode.SIGNAL, dep_id=dep.index)
            latch.insert_before_terminator(wait)
            latch.insert_before_terminator(signal)
            sync.wait_instrs.append(wait)
            sync.signal_instrs.append(signal)
        syncs.append(sync)
    if any(s.wait_instrs or s.signal_instrs for s in syncs):
        func.bump_version()
    return syncs


def segment_span_blocks(
    cfg: CFGView,
    loop: Loop,
    dep: DataDependence,
    region: FrozenSet[str],
    func: Function,
) -> FrozenSet[str]:
    """Blocks dynamically inside the segment: from the first endpoint to
    the signal.

    The segment starts at the first executed ``wait`` (just before an
    endpoint) and ends at the ``signal`` (region exit), so it covers every
    region block reachable *from* an endpoint block within the iteration.
    Loop selection prices these whole blocks as sequential time -- the
    intra-block slice alone badly underestimates segments whose endpoints
    sit at opposite ends of the iteration (the pointer-chasing pattern).
    """
    endpoint_uids = {i.uid for i in dep.endpoints()}
    endpoint_blocks = {
        name
        for name in region
        if any(
            instr.uid in endpoint_uids
            for instr in func.blocks[name].instructions
        )
    }
    back_edges = {(latch, loop.header) for latch in loop.latches}
    reached: Set[str] = set(endpoint_blocks)
    work = list(endpoint_blocks)
    while work:
        node = work.pop()
        for succ in cfg.succs[node]:
            if (
                succ in loop.blocks
                and succ not in reached
                and (node, succ) not in back_edges
            ):
                reached.add(succ)
                work.append(succ)
    return frozenset(reached & region)


def estimate_segment_instructions(
    func: Function, loop: Loop, dep: DataDependence, region: FrozenSet[str]
) -> Set[int]:
    """Approximate post-scheduling segment contents (for the model's P_i).

    Within each region block: the endpoints plus their intra-block backward
    operand slices (the instructions Step 5 cannot move out of the
    segment).  Used by loop selection, which runs before any IR mutation.
    """
    endpoint_uids = {i.uid for i in dep.endpoints()}
    result: Set[int] = set()
    for name in region:
        block = func.blocks[name]
        needed: Set[int] = set()
        reg_needed: Set[int] = set()
        for instr in reversed(block.instructions):
            is_endpoint = instr.uid in endpoint_uids
            feeds = (
                instr.dest is not None and instr.dest.uid in reg_needed
            )
            if is_endpoint or feeds:
                needed.add(instr.uid)
                if instr.dest is not None:
                    reg_needed.discard(instr.dest.uid)
                for reg in instr.uses():
                    reg_needed.add(reg.uid)
        result |= needed
    return result
