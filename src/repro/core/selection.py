"""Loop selection (Section 2.2).

The algorithm runs entirely on analysis results and profile data -- no IR
is mutated -- and proceeds in three stages:

1. **Candidate characterization.**  Every loop observed in the dynamic
   loop nesting graph is analyzed: its would-be sequential segments
   (Steps 2/4/6 evaluated analytically), prologue, and transfer volume are
   priced with profile weights, yielding :class:`LoopModelInputs`.
2. **maxT propagation.**  Each node gets ``T`` (time saved if this loop is
   parallelized, from the speedup model) and ``maxT`` (best achievable by
   it or any combination of its subloops); ``maxT`` flows from inner to
   outer loops until a fixed point.
3. **Top-down search.**  From the outermost loops downward, descend while
   a combination of subloops beats the current loop (``maxT > T``); stop
   and select when ``maxT == T > 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.cfg import CFGView
from repro.analysis.dependence import DependenceAnalysis
from repro.analysis.induction import analyze_induction
from repro.analysis.loopnest import DynamicLoopNestGraph, LoopId
from repro.analysis.loops import Loop, find_loops
from repro.analysis.manager import AnalysisManager
from repro.core.model import LoopModelInputs, SpeedupModel
from repro.core.segments import (
    compute_region,
    segment_span_blocks,
)
from repro.ir import Function, Module, Opcode
from repro.obs import get_tracer
from repro.runtime.machine import MachineConfig
from repro.runtime.profiler import ProfileData


@dataclass
class SelectionConfig:
    """Knobs of the selection heuristic."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    cores: int = 6
    #: Believed per-signal cost S.  ``None`` = workload-aware effective
    #: latency (the paper's "4 cycles = fully prefetched" assumption,
    #: validated by profiling the optimized form of each loop); a number
    #: fixes S blindly -- 0 and 110 are the Figure 12 corner cases.
    signal_cost: "float | None" = None
    #: Ignore loops with almost no profiled time (noise).
    min_total_cycles: int = 50
    #: Price every dependence's signals instead of the Step 6-minimized
    #: set (used when evaluating the Figure 10 "no Step 6" ablation, whose
    #: loops are selected from profiles of that configuration).
    unoptimized_signals: bool = False


@dataclass
class LoopSelection:
    """Result of the selection algorithm."""

    chosen: List[LoopId]
    candidates: Dict[LoopId, LoopModelInputs]
    saved_time: Dict[LoopId, float]
    max_saved_time: Dict[LoopId, float]
    dynamic_graph: DynamicLoopNestGraph
    config: SelectionConfig

    @property
    def candidate_count(self) -> int:
        return len(self.candidates)

    def predicted_speedup(self, cores: Optional[int] = None) -> float:
        """Model-predicted whole-program speedup of the chosen set."""
        cores = cores or self.config.cores
        total = sum(
            inputs.total_cycles for inputs in self.candidates.values()
        )
        model = SpeedupModel(
            self.config.machine,
            program_cycles=self._program_cycles,
            signal_cost=self.config.signal_cost,
        )
        loops = [self.candidates[lid] for lid in self.chosen]
        return model.program_speedup(loops, cores)

    _program_cycles: float = 0.0


# -- candidate characterization ---------------------------------------------------


def _classify_prologue(
    func: Function, loop: Loop, cfg: CFGView
) -> Set[str]:
    """Blocks that can leave the loop without passing a latch (Step 1's
    prologue, computed without mutating the IR)."""
    can_escape: Set[str] = set()
    work: List[str] = []
    for name in loop.blocks:
        if name in loop.latches:
            continue
        for succ in cfg.succs[name]:
            if succ not in loop.blocks:
                can_escape.add(name)
                work.append(name)
                break
    while work:
        node = work.pop()
        for pred in cfg.preds[node]:
            if (
                pred in loop.blocks
                and pred not in loop.latches
                and pred not in can_escape
            ):
                can_escape.add(pred)
                work.append(pred)
    if not can_escape:
        can_escape = {loop.header}
    return can_escape


def characterize_loop(
    module: Module,
    func: Function,
    loop: Loop,
    profile: ProfileData,
    analysis: DependenceAnalysis,
    machine: MachineConfig,
    nesting_level: int = 1,
    unoptimized_signals: bool = False,
    manager: Optional[AnalysisManager] = None,
) -> LoopModelInputs:
    """Build the model inputs of one candidate loop."""
    if manager is not None:
        cfg = manager.cfg(func)
        induction = manager.induction(func, loop)
    else:
        cfg = CFGView(func)
        induction = analyze_induction(
            func, loop, cfg, readonly_symbols=analysis.readonly_globals
        )
    loop_profile = profile.loop(loop.id)
    deps = analysis.loop_dependences(func, loop, induction=induction)

    # Analytic Step 6: distinct regions, maximal under containment.
    regions = []
    for dep in deps:
        region = compute_region(cfg, loop, dep, func)
        if region:
            regions.append((dep, region))
    kept = []
    for i, (dep_i, region_i) in enumerate(regions):
        covered = False
        for j, (dep_j, region_j) in enumerate(regions):
            if i == j:
                continue
            if region_i < region_j or (region_i == region_j and j < i):
                covered = True
                break
        if not covered:
            kept.append((dep_i, region_i))

    # Segment time: the dynamic wait..signal span, profile-weighted.
    # Three contributions:
    #   * interior span blocks (strictly between an endpoint block and the
    #     signal) count in full -- Step 5 cannot move code across blocks;
    #   * a subloop containing an endpoint counts in full: the segment
    #     stays open across every one of its iterations;
    #   * in plain endpoint blocks only the endpoints themselves count
    #     (plus the wait/signal/forwarding ops Step 7 adds), because the
    #     scheduler sinks the wait below the endpoints' feeders and moves
    #     independent code past the signal.
    instr_block: Dict[int, str] = {}
    for name in loop.blocks:
        for instr in func.blocks[name].instructions:
            instr_block[instr.uid] = name
    forest = (
        manager.loops(func) if manager is not None else find_loops(func, cfg)
    )

    full_blocks: Set[str] = set()
    endpoint_cost = 0.0
    sync_deps = 0
    for dep, region in regions:
        span = segment_span_blocks(cfg, loop, dep, region, func)
        dep_endpoint_blocks = set()
        for endpoint in dep.endpoints():
            name = instr_block.get(endpoint.uid)
            if name is None:
                continue
            dep_endpoint_blocks.add(name)
            inner = forest.loop_of(name)
            if inner is not None and inner.header != loop.header:
                # Endpoint inside a subloop: the whole subloop (up to the
                # candidate's direct child) sits inside the segment.
                while (
                    inner.parent is not None
                    and inner.parent.header != loop.header
                ):
                    inner = inner.parent
                full_blocks |= inner.blocks
            count = profile.block_count(func.name, name)
            endpoint_cost += count * profile.instruction_cost(
                machine, func.name, endpoint
            )
        full_blocks |= span - dep_endpoint_blocks
        sync_deps += 1

    def block_cycles(name: str) -> float:
        count = profile.block_count(func.name, name)
        if count == 0:
            return 0.0
        return count * sum(
            profile.instruction_cost(machine, func.name, instr)
            for instr in func.blocks[name].instructions
        )

    # Wait/signal/slot/xfer overhead per synchronized dep per iteration.
    sync_overhead = 6.0 * len(kept) * max(1, loop_profile.iterations)
    segment_cycles = (
        sum(block_cycles(name) for name in full_blocks)
        + endpoint_cost
        + sync_overhead
    )

    # Prologue time (Sequential-Control): header-side blocks not already
    # counted as segment time.
    prologue_blocks = _classify_prologue(func, loop, cfg)
    prologue_cycles = sum(
        block_cycles(name) for name in prologue_blocks - full_blocks
    )

    # Clamp into a proper decomposition: prologue + segment + parallel
    # partition the loop's profiled time.
    total = float(loop_profile.total_cycles)
    prologue_cycles = min(prologue_cycles, total)
    segment_cycles = min(segment_cycles, total - prologue_cycles)
    parallel = max(0.0, total - segment_cycles - prologue_cycles)

    # Transfer volume: one word per data-carrying dependence, weighted by
    # how often a producer actually runs (block count / iterations).
    iterations = max(1, loop_profile.iterations)
    words = 0.0
    for dep in deps:
        if dep.transfer_words <= 0:
            continue
        freq = 0.0
        for source in dep.sources:
            name = instr_block.get(source.uid)
            if name is None:
                continue
            freq = max(
                freq,
                profile.block_count(func.name, name) / iterations,
            )
        words += dep.transfer_words * min(1.0, freq)

    # Counted-loop test (Step 3): no side effects and no dependence
    # endpoints in the prologue.
    endpoint_blocks: Set[str] = set()
    for dep, _region in regions:
        for endpoint in dep.endpoints():
            name = instr_block.get(endpoint.uid)
            if name is not None:
                endpoint_blocks.add(name)
    counted = not (prologue_blocks & endpoint_blocks)
    if counted:
        for name in prologue_blocks:
            for instr in func.blocks[name].instructions:
                if instr.opcode in (
                    Opcode.CALL,
                    Opcode.PRINT,
                    Opcode.STOREG,
                    Opcode.STOREP,
                ):
                    counted = False
                    break
            if not counted:
                break

    return LoopModelInputs(
        loop_id=loop.id,
        invocations=loop_profile.invocations,
        iterations=loop_profile.iterations,
        total_cycles=total,
        parallel_cycles=parallel,
        segment_cycles=segment_cycles,
        prologue_cycles=prologue_cycles,
        segments_per_iteration=(
            len(regions) if unoptimized_signals else len(kept)
        ),
        transfer_words_per_iteration=words,
        nesting_level=nesting_level,
        counted=counted,
    )


def _dynamic_levels(graph: DynamicLoopNestGraph) -> Dict[LoopId, int]:
    """1-based minimum distance from a root of the dynamic graph."""
    levels: Dict[LoopId, int] = {}
    frontier = graph.roots()
    level = 1
    seen: Set[LoopId] = set()
    while frontier:
        next_frontier: List[LoopId] = []
        for node in frontier:
            if node in seen:
                continue
            seen.add(node)
            levels[node] = level
            next_frontier.extend(graph.children(node))
        frontier = [n for n in next_frontier if n not in seen]
        level += 1
    return levels


def analyze_candidates(
    module: Module,
    profile: ProfileData,
    config: SelectionConfig,
    manager: Optional[AnalysisManager] = None,
) -> Dict[LoopId, LoopModelInputs]:
    """Characterize every profiled loop."""
    with get_tracer().span(
        "select.analyze_candidates", cat="selection"
    ) as span:
        result = _analyze_candidates(module, profile, config, manager)
        span.set(candidates=len(result))
    return result


def _analyze_candidates(
    module: Module,
    profile: ProfileData,
    config: SelectionConfig,
    manager: Optional[AnalysisManager] = None,
) -> Dict[LoopId, LoopModelInputs]:
    if manager is not None:
        analysis = manager.dependence(module)
        forests = {
            name: manager.loops(f) for name, f in module.functions.items()
        }
    else:
        analysis = DependenceAnalysis(module)
        forests = {
            name: find_loops(f) for name, f in module.functions.items()
        }
    levels = _dynamic_levels(profile.dynamic_nesting)
    result: Dict[LoopId, LoopModelInputs] = {}
    for loop_id in profile.dynamic_nesting.nodes():
        func_name, header = loop_id
        func = module.functions.get(func_name)
        if func is None:
            continue
        loop = forests[func_name].by_header.get(header)
        if loop is None:
            continue
        result[loop_id] = characterize_loop(
            module,
            func,
            loop,
            profile,
            analysis,
            config.machine,
            nesting_level=levels.get(loop_id, 1),
            unoptimized_signals=config.unoptimized_signals,
            manager=manager,
        )
    return result


# -- the selection algorithm -----------------------------------------------------


def _filter_statically_nested(
    module: Module,
    chosen: Sequence[LoopId],
    manager: Optional[AnalysisManager] = None,
) -> List[LoopId]:
    """Drop loops statically nested inside another chosen loop of the same
    function (the runtime flag would serialize them anyway)."""
    if manager is not None:
        forests = {
            name: manager.loops(f) for name, f in module.functions.items()
        }
    else:
        forests = {
            name: find_loops(f) for name, f in module.functions.items()
        }
    result: List[LoopId] = []
    for loop_id in chosen:
        func_name, header = loop_id
        loop = forests[func_name].by_header.get(header)
        nested = False
        if loop is not None:
            for other_id in chosen:
                if other_id == loop_id or other_id[0] != func_name:
                    continue
                other = forests[func_name].by_header.get(other_id[1])
                if other is not None and loop.blocks < other.blocks:
                    nested = True
                    break
        if not nested:
            result.append(loop_id)
    return result


def choose_loops(
    module: Module,
    profile: ProfileData,
    config: Optional[SelectionConfig] = None,
    manager: Optional[AnalysisManager] = None,
) -> LoopSelection:
    """Run the full Section 2.2 selection."""
    config = config or SelectionConfig()
    with get_tracer().span("select.choose_loops", cat="selection") as span:
        selection = _choose_loops(module, profile, config, manager)
        span.set(
            candidates=len(selection.candidates),
            chosen=len(selection.chosen),
        )
    return selection


def _choose_loops(
    module: Module,
    profile: ProfileData,
    config: SelectionConfig,
    manager: Optional[AnalysisManager] = None,
) -> LoopSelection:
    candidates = analyze_candidates(module, profile, config, manager=manager)
    model = SpeedupModel(
        config.machine,
        program_cycles=float(profile.total_cycles),
        signal_cost=config.signal_cost,
    )

    graph = profile.dynamic_nesting
    saved: Dict[LoopId, float] = {}
    for loop_id, inputs in candidates.items():
        if inputs.total_cycles < config.min_total_cycles:
            saved[loop_id] = 0.0
        else:
            saved[loop_id] = model.saved_cycles(inputs, config.cores)

    # Phase 1: propagate maxT inner -> outer to a fixed point.
    max_saved: Dict[LoopId, float] = dict(saved)
    for _ in range(len(candidates) + 2):
        changed = False
        for loop_id in candidates:
            child_sum = sum(
                max_saved.get(child, 0.0) for child in graph.children(loop_id)
            )
            best = max(saved[loop_id], child_sum)
            if best > max_saved[loop_id] + 1e-9:
                max_saved[loop_id] = best
                changed = True
        if not changed:
            break

    # Phase 2: top-down search.
    chosen: List[LoopId] = []
    visited: Set[LoopId] = set()
    work = [root for root in graph.roots() if root in candidates]
    while work:
        node = work.pop()
        if node in visited:
            continue
        visited.add(node)
        t = saved.get(node, 0.0)
        max_t = max_saved.get(node, 0.0)
        if max_t <= 0.0:
            continue
        if max_t <= t + 1e-9:
            chosen.append(node)
        else:
            work.extend(
                child for child in graph.children(node) if child in candidates
            )

    chosen = _filter_statically_nested(
        module, sorted(set(chosen)), manager=manager
    )
    selection = LoopSelection(
        chosen=sorted(chosen),
        candidates=candidates,
        saved_time=saved,
        max_saved_time=max_saved,
        dynamic_graph=graph,
        config=config,
    )
    selection._program_cycles = float(profile.total_cycles)
    return selection


def fixed_level_selection(
    module: Module,
    profile: ProfileData,
    level: int,
    config: Optional[SelectionConfig] = None,
    manager: Optional[AnalysisManager] = None,
) -> List[LoopId]:
    """All profiled loops at one nesting level (the Figure 11/13 baseline)."""
    with get_tracer().span(
        "select.fixed_level", cat="selection", level=level
    ):
        return _fixed_level_selection(module, profile, level, config, manager)


def _fixed_level_selection(
    module: Module,
    profile: ProfileData,
    level: int,
    config: Optional[SelectionConfig] = None,
    manager: Optional[AnalysisManager] = None,
) -> List[LoopId]:
    config = config or SelectionConfig()
    graph = profile.dynamic_nesting
    levels = _dynamic_levels(graph)
    chosen = [loop_id for loop_id, lvl in levels.items() if lvl == level]
    # Drop loops dynamically nested under another chosen loop (a node can
    # sit at the same minimum level as an ancestor through a second
    # parent); counting both would double-book their time.
    import networkx as nx

    chosen_set = set(chosen)
    deduped = []
    for loop_id in sorted(chosen_set):
        ancestors = nx.ancestors(graph.graph, loop_id)
        if not (ancestors & chosen_set):
            deduped.append(loop_id)
    return _filter_statically_nested(module, deduped, manager=manager)
