"""The HELIX speedup model (Section 2.2, Equation 1).

Amdahl's law extended with parallelization overhead::

    Speedup(P, N, O) = 1 / (1 - P + P/N + O)

where ``P`` is the fraction of program time spent in parallelized-loop
code *outside* sequential segments, ``N`` the core count, and ``O`` the
overhead fraction.  Per loop ``i``::

    O_i = Conf_i + Sig_i * S + ceil(Bytes_i / CPU_word) * M
    Sig_i = C-Sig_i + D-Sig_i + (N - 1) * 2 * Invoc_i

with ``S`` the per-signal cost, ``M`` the per-word inter-core transfer
cost, ``C-Sig`` one control signal per iteration, and ``D-Sig`` one data
signal per sequential segment per iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.loopnest import LoopId
from repro.runtime.machine import MachineConfig


@dataclass
class LoopModelInputs:
    """Per-loop quantities feeding Equation 1 (absolute cycles)."""

    loop_id: LoopId
    invocations: int
    iterations: int
    #: Inclusive loop time in the sequential profile.
    total_cycles: float
    #: Time outside sequential segments and outside the prologue (P_i).
    parallel_cycles: float
    #: Time inside sequential segments (data-ordered code).
    segment_cycles: float
    #: Time in the prologue (control-ordered code).
    prologue_cycles: float
    #: Sequential segments per iteration (D-Sig per iteration).
    segments_per_iteration: int
    #: Estimated words actually forwarded between iterations, per
    #: iteration (profile-weighted producer frequency).
    transfer_words_per_iteration: float = 0.0
    #: Nesting level in the dynamic loop nesting graph (1 = outermost).
    nesting_level: int = 1
    #: Counted loop: no per-iteration control signal (Step 3).
    counted: bool = False

    @property
    def bytes_transferred(self) -> float:
        return self.transfer_words_per_iteration * self.iterations * 8


@dataclass
class SpeedupModel:
    """Evaluates Equation 1 against a machine and a profiled program.

    ``signal_cost`` is the believed per-signal cost ``S``:

    * ``None`` (the default) models what the paper obtains by profiling
      the HELIX-optimized form of each loop: the *effective* latency of a
      signal depends on whether the helper thread has enough slack to
      prefetch it -- fully prefetched (4 cycles, an L1 hit) when the
      inter-segment spacing per core exceeds the pull latency, up to the
      full 110-cycle pull otherwise (the Section 3.3 computation).
    * A number fixes ``S`` blindly -- the Figure 12 corner cases
      (0 = underestimated, 110 = overestimated).
    """

    machine: MachineConfig
    program_cycles: float
    signal_cost: Optional[float] = None

    def effective_signal_cost(self, loop: LoopModelInputs, cores: int) -> float:
        """Per-signal cost, workload-aware unless fixed by configuration.

        The helper thread can only hide the pull latency when the consumer
        reaches its wait *after* the prefetch completes.  Consecutive
        iterations' segment entries are spaced ``per_iter / N`` apart, of
        which the segment itself plus the data transfer are already spoken
        for; only the remaining *gap* counts as prefetch slack.  When the
        chain is the critical path the gap is zero and every signal costs
        the full pull latency -- the self-consistent steady state of the
        executor's schedule.
        """
        if self.signal_cost is not None:
            return self.signal_cost
        latency = float(self.machine.signal_latency)
        fast = float(self.machine.prefetched_signal_latency)
        iterations = max(1, loop.iterations)
        per_iter = loop.total_cycles / iterations
        seg = loop.segment_cycles / iterations
        xfer = (
            loop.transfer_words_per_iteration
            * self.machine.word_transfer_cycles
        )
        gap = per_iter / max(1, cores) - seg - xfer
        # Binary regime, matching the executor's steady state: the wait
        # must trail the predecessor's signal by at least the pull time
        # for the prefetch to be complete; otherwise the line is still in
        # flight and the full pull latency lands on the chain.
        if gap >= latency - fast:
            return fast
        return latency

    def believed_transfer_cycles(self) -> float:
        """The per-word inter-core cost the selection believes in.

        Misestimating signal latency (Figure 12) misestimates inter-core
        communication as a whole -- the cache-to-cache transfer behind a
        data forward is the same mechanism as a signal pull -- so a fixed
        ``signal_cost`` scales the believed ``M`` proportionally.
        """
        machine_m = float(self.machine.word_transfer_cycles)
        if self.signal_cost is None:
            return machine_m
        scale = self.signal_cost / max(1.0, float(self.machine.signal_latency))
        return machine_m * scale

    def signals(self, loop: LoopModelInputs, cores: int) -> float:
        """Sig_i: control + data + thread start/stop signals."""
        c_sig = 0 if loop.counted else loop.iterations
        d_sig = loop.iterations * loop.segments_per_iteration
        startstop = (cores - 1) * 2 * loop.invocations
        return c_sig + d_sig + startstop

    def overhead_cycles(self, loop: LoopModelInputs, cores: int) -> float:
        """O_i in absolute cycles (Equation 1's numerator terms)."""
        conf = (
            self.machine.config_cycles_per_thread
            * max(cores - 1, 1)
            * loop.invocations
        )
        sig = self.signals(loop, cores) * self.effective_signal_cost(loop, cores)
        words = math.ceil(
            loop.transfer_words_per_iteration * loop.iterations
        )
        data = words * self.believed_transfer_cycles()
        return conf + sig + data

    def refined_parallel_cycles(self, loop: LoopModelInputs, cores: int) -> float:
        """Estimated parallel execution time of the loop.

        Each iteration advances the ring by at least the *chain step*
        (sequential segments + signal latency + data transfers, plus the
        prologue hand-off for non-counted loops); cores otherwise share
        the per-iteration work.  Thread configuration and stop signals
        are charged per invocation.
        """
        iterations = max(1, loop.iterations)
        per_iter = loop.total_cycles / iterations
        s_eff = self.effective_signal_cost(loop, cores)

        chain = loop.segment_cycles / iterations
        if loop.segments_per_iteration > 0:
            chain += s_eff
        if not loop.counted:
            chain += loop.prologue_cycles / iterations + s_eff
        chain += (
            loop.transfer_words_per_iteration
            * self.believed_transfer_cycles()
        )

        steady = max(per_iter / cores, chain)
        # Per-invocation costs: thread configuration and stop signals,
        # plus the pipeline drain -- the last iteration still runs its
        # full duration even though the ring advances one `steady` step
        # per iteration.
        believed_latency = (
            self.signal_cost
            if self.signal_cost is not None
            else float(self.machine.signal_latency)
        )
        fixed = (
            self.machine.config_cycles_per_thread * max(cores - 1, 1)
            + believed_latency
            + cores
            - 1
            + max(0.0, per_iter - steady)
        )
        return steady * iterations + fixed * max(1, loop.invocations)

    def saved_cycles(self, loop: LoopModelInputs, cores: int) -> float:
        """T: sequential minus parallelized time of this loop (>= 0)."""
        if cores <= 1:
            return 0.0
        saved = loop.total_cycles - self.refined_parallel_cycles(loop, cores)
        return max(0.0, saved)

    def loop_speedup(self, loop: LoopModelInputs, cores: int) -> float:
        """Whole-program speedup if only this loop is parallelized."""
        return self.program_speedup([loop], cores)

    def program_speedup(
        self, loops: Sequence[LoopModelInputs], cores: int
    ) -> float:
        """Equation 1 for a set of (non-nested) parallelized loops."""
        if self.program_cycles <= 0:
            return 1.0
        p_fraction = sum(l.parallel_cycles for l in loops) / self.program_cycles
        p_fraction = min(p_fraction, 1.0)
        o_fraction = sum(
            self.overhead_cycles(l, cores) for l in loops
        ) / self.program_cycles
        denom = 1.0 - p_fraction + p_fraction / cores + o_fraction
        if denom <= 0:
            return float(cores)
        return 1.0 / denom


def speedup_from_fractions(
    p_fraction: float, cores: int, overhead_fraction: float = 0.0
) -> float:
    """Bare Equation 1 (used in tests and docs)."""
    denom = 1.0 - p_fraction + p_fraction / cores + overhead_fraction
    return 1.0 / denom
