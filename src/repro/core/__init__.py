"""The HELIX algorithm (paper Section 2).

* :mod:`repro.core.loopinfo` -- metadata describing a parallelized loop.
* :mod:`repro.core.segments` -- Step 4: sequential-segment regions and
  ``wait``/``signal`` insertion.
* :mod:`repro.core.signals` -- Step 6: signal minimization (redundant-wait
  elimination, segment merging, the dependence redundance graph and
  Theorem 1).
* :mod:`repro.core.communication` -- Step 7: thread memory buffers and
  loop-boundary live-variable forwarding.
* :mod:`repro.core.scheduling` -- Step 5: segment shrinking, and Step 8's
  code-balancing scheduler (Figure 6) plus helper-thread wait sequences.
* :mod:`repro.core.parallelizer` -- the per-loop pipeline (Steps 1-9) and
  whole-module driver.
* :mod:`repro.core.model` -- the speedup model (Equation 1).
* :mod:`repro.core.selection` -- Section 2.2's loop-selection algorithm
  over the dynamic loop nesting graph.
"""

from repro.core.loopinfo import DepSync, HelixOptions, ParallelizedLoop
from repro.core.parallelizer import HelixParallelizer, parallelize_module
from repro.core.model import SpeedupModel, speedup_from_fractions
from repro.core.selection import (
    LoopSelection,
    SelectionConfig,
    choose_loops,
    fixed_level_selection,
)

__all__ = [
    "HelixOptions",
    "ParallelizedLoop",
    "DepSync",
    "HelixParallelizer",
    "parallelize_module",
    "SpeedupModel",
    "speedup_from_fractions",
    "choose_loops",
    "fixed_level_selection",
    "LoopSelection",
    "SelectionConfig",
]
