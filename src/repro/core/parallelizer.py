"""The HELIX per-loop pipeline and whole-module driver (Steps 1-9).

For each chosen loop:

1. *Normalize* (Step 1): unique preheader and latch; partition into
   prologue (blocks that can still leave the loop) and body.
2. *Inline* (Step 5's first half): calls that are dependence endpoints and
   do not sit in a subloop are inlined, shrinking future segments.
3. *Version* (Step 9): the loop is cloned; a guard block tests the global
   ``__helix_active`` flag and runs the sequential original whenever
   another parallelized loop is already running; exit stubs clear the flag
   and record which exit path was taken.
4. *Dependences* (Step 2) are computed on the parallel version.
5. *Synchronize* (Step 4), *minimize signals* (Step 6), *insert
   communication* (Step 7).
6. *Start next iterations* (Step 3): ``next_iter`` on every
   prologue->body crossing edge.
7. *Schedule* (Step 5) and *balance for prefetching* (Step 8, Figure 6);
   compute the helper threads' wait order.

The driver mutates a **clone** of the input module, so the caller keeps
the original for sequential baselines.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.loopnest import LoopId
from repro.analysis.manager import AnalysisManager
from repro.core.communication import insert_communication
from repro.core.loopinfo import HelixOptions, ParallelizedLoop
from repro.core.scheduling import (
    balance_loop,
    helper_wait_order,
    schedule_loop,
)
from repro.core.segments import insert_synchronization
from repro.core.signals import optimize_signals
from repro.ir import (
    BasicBlock,
    Function,
    Instruction,
    Module,
    Opcode,
    verify_module,
)
from repro.ir.module import clone_module
from repro.ir.operands import Const
from repro.ir.types import Type
from repro.obs import get_tracer
from repro.runtime.machine import MachineConfig
from repro.transform.inline import can_inline, inline_call
from repro.transform.normalize import NormalizedLoop, normalize_loop

#: Name of the "a parallel loop is running" global (Step 9).
ACTIVE_FLAG = "__helix_active"


class HelixError(Exception):
    """The requested loop cannot be parallelized."""


#: Opcodes whose presence in the prologue makes a loop non-counted: side
#: effects, or synchronization (i.e. a dependence endpoint sits there).
_NON_COUNTED_OPCODES = frozenset(
    {
        Opcode.CALL,
        Opcode.PRINT,
        Opcode.STOREG,
        Opcode.STOREP,
        Opcode.WAIT,
        Opcode.SIGNAL,
        Opcode.XFER,
    }
)


def is_counted_loop(func: Function, prologue_blocks) -> bool:
    """Step 3's counted-loop test: the prologue is pure bookkeeping.

    When the decision to run the next iteration depends only on values a
    core can compute locally (induction variables, loop invariants), HELIX
    emits a prologue that needs neither signals nor data from previous
    iterations.  After Steps 4/6 have run, any loop-carried influence on
    the exit test manifests as a ``wait`` (or other synchronization op) in
    the prologue, so the test reduces to: no side-effecting or
    synchronization instruction in any prologue block.
    """
    for name in prologue_blocks:
        for instr in func.blocks[name].instructions:
            if instr.opcode in _NON_COUNTED_OPCODES:
                return False
    return True


class HelixParallelizer:
    """Applies the HELIX transformation to loops of one module."""

    def __init__(
        self,
        module: Module,
        machine: Optional[MachineConfig] = None,
        options: Optional[HelixOptions] = None,
        manager: Optional[AnalysisManager] = None,
    ) -> None:
        self.module = module
        self.machine = machine or MachineConfig()
        self.options = options or HelixOptions()
        #: Shared analysis cache; every analysis request of Steps 1-9 goes
        #: through it, so analyses recompute once per mutation, not once
        #: per call site.
        self.am = manager or AnalysisManager()
        #: Per-instance loop-versioning tags (P1, P2, ...): each
        #: parallelizer starts from 1, so transformed modules get the
        #: same block names no matter how many ran earlier in the
        #: process (byte-identical, reproducible output).
        self._version_counter = itertools.count(1)
        if ACTIVE_FLAG not in module.globals:
            module.add_global(ACTIVE_FLAG, Type.INT, 1, synthetic=True)

    # -- Step 5 (first half): dependence-driven inlining ---------------------

    def _inlinable_calls(self, func: Function, loop, forest) -> bool:
        """Whether ``loop`` directly contains any call that could be
        inlined at all (necessary condition for the dependence scan)."""
        callgraph = self.am.callgraph(self.module)
        for name in sorted(loop.blocks):
            if forest.loop_of(name) is not loop:
                continue
            for instr in func.blocks[name].instructions:
                if instr.opcode is Opcode.CALL and can_inline(
                    self.module,
                    instr,
                    self.options.max_inline_instructions,
                    callgraph=callgraph,
                ):
                    return True
        return False

    def _inline_endpoint_calls(self, func: Function, header: str) -> int:
        inlined = 0
        for _round in range(self.options.max_inline_rounds):
            forest = self.am.loops(func)
            loop = forest.by_header.get(header)
            if loop is None:
                raise HelixError(f"loop {header!r} vanished during inlining")
            # A round can only inline a call that exists directly in the
            # loop and passes the feasibility check; when none does (the
            # common case: loops without calls, and the round after the
            # last successful inline), stop before paying for a dependence
            # query at all.
            if not self._inlinable_calls(func, loop, forest):
                break
            analysis = self.am.dependence(self.module)
            deps = analysis.loop_dependences(func, loop)
            callgraph = self.am.callgraph(self.module)
            call_endpoint = None
            for dep in deps:
                for endpoint in dep.endpoints():
                    if endpoint.opcode is not Opcode.CALL:
                        continue
                    block = func.find_block_of(endpoint)
                    if block is None or block.name not in loop.blocks:
                        continue
                    # Not contained in a subloop of this loop.
                    if forest.loop_of(block.name) is not loop:
                        continue
                    if can_inline(
                        self.module,
                        endpoint,
                        self.options.max_inline_instructions,
                        callgraph=callgraph,
                    ):
                        call_endpoint = endpoint
                        break
                if call_endpoint is not None:
                    break
            if call_endpoint is None:
                break
            inline_call(self.module, func, call_endpoint)
            inlined += 1
        return inlined

    # -- Step 9: loop versioning -----------------------------------------------

    def _version_loop(
        self, func: Function, norm: NormalizedLoop
    ) -> Tuple[Dict[str, str], str, str, Dict[str, str]]:
        """Clone the loop; build guard/flag blocks and exit stubs.

        Returns (block name map, guard name, parallel preheader name,
        exit stub -> outside successor).
        """
        tag = f"P{next(self._version_counter)}"
        flag = self.module.globals[ACTIVE_FLAG]
        name_map = {name: f"{tag}_{name}" for name in norm.blocks}

        stub_map: Dict[str, str] = {}
        stubs: Dict[str, str] = {}

        def stub_for(outside: str) -> str:
            if outside not in stub_map:
                stub = BasicBlock(f"{tag}_exit_{outside}")
                stub.append(
                    Instruction(
                        Opcode.STOREG, args=(flag, Const.int(0), Const.int(0))
                    )
                )
                stub.append(Instruction(Opcode.BR, targets=(outside,)))
                func.add_block(stub)
                stub_map[outside] = stub.name
                stubs[stub.name] = outside
            return stub_map[outside]

        for name in sorted(norm.blocks):
            source = func.blocks[name]
            clone = BasicBlock(name_map[name])
            for instr in source.instructions:
                new_targets = []
                for target in instr.targets:
                    if target in name_map:
                        new_targets.append(name_map[target])
                    else:
                        new_targets.append(stub_for(target))
                clone.append(instr.clone(targets=tuple(new_targets)))
            func.add_block(clone)

        par_pre = BasicBlock(f"{tag}_pre")
        par_pre.append(
            Instruction(Opcode.STOREG, args=(flag, Const.int(1), Const.int(1)))
        )
        par_pre.append(
            Instruction(Opcode.BR, targets=(name_map[norm.header],))
        )
        # Flag lives at index 0; fix args: (symbol, index, value).
        par_pre.instructions[0].args = (flag, Const.int(0), Const.int(1))
        func.add_block(par_pre)

        guard = BasicBlock(f"{tag}_guard")
        active = func.new_vreg(Type.INT, "helix_active")
        guard.append(
            Instruction(Opcode.LOADG, dest=active, args=(flag, Const.int(0)))
        )
        guard.append(
            Instruction(
                Opcode.CBR,
                args=(active,),
                targets=(norm.header, par_pre.name),
            )
        )
        func.add_block(guard)
        func.blocks[norm.preheader].retarget(norm.header, guard.name)
        return name_map, guard.name, par_pre.name, stubs

    # -- Step 3: next_iter insertion ----------------------------------------------

    def _insert_next_iter(
        self,
        func: Function,
        info: ParallelizedLoop,
        crossing_edges: Sequence[Tuple[str, str]],
    ) -> None:
        for i, (src, dst) in enumerate(sorted(crossing_edges)):
            nx_block = BasicBlock(f"{info.par_header}_nx{i}")
            nx_block.append(Instruction(Opcode.NEXT_ITER))
            nx_block.append(Instruction(Opcode.BR, targets=(dst,)))
            func.add_block(nx_block)
            func.blocks[src].retarget(dst, nx_block.name)
            info.par_blocks.add(nx_block.name)
            info.body_blocks.add(nx_block.name)

    # -- the pipeline -------------------------------------------------------------

    def parallelize_loop(self, loop_id: LoopId) -> ParallelizedLoop:
        """Run Steps 1-9 on one loop; returns its metadata record."""
        with get_tracer().span(
            "helix.loop", cat="helix", loop=f"{loop_id[0]}:{loop_id[1]}"
        ):
            return self._parallelize_loop(loop_id)

    def _parallelize_loop(self, loop_id: LoopId) -> ParallelizedLoop:
        tracer = get_tracer()
        func_name, header = loop_id
        func = self.module.functions.get(func_name)
        if func is None:
            raise HelixError(f"no function {func_name!r}")

        inlined = 0
        if self.options.enable_inlining:
            with tracer.span("helix.step5.inline", cat="helix") as span:
                inlined = self._inline_endpoint_calls(func, header)
                span.set(inlined=inlined)

        forest = self.am.loops(func)
        loop = forest.by_header.get(header)
        if loop is None:
            raise HelixError(f"no loop with header {header!r} in {func_name}")

        # Step 1: normalization (on the original; structure is mirrored by
        # the clone block-for-block).
        with tracer.span("helix.step1.normalize", cat="helix"):
            norm = normalize_loop(func, loop)

        # Step 9: versioning.
        with tracer.span("helix.step9.version", cat="helix"):
            name_map, guard_name, par_pre, stubs = self._version_loop(
                func, norm
            )

        info = ParallelizedLoop(
            loop_id=loop_id,
            func_name=func_name,
            seq_header=header,
            guard_block=guard_name,
            par_preheader=par_pre,
            par_header=name_map[norm.header],
            par_latch=name_map[norm.latch],
            par_blocks={name_map[b] for b in norm.blocks},
            prologue_blocks={name_map[b] for b in norm.prologue_blocks},
            body_blocks={name_map[b] for b in norm.body_blocks},
            exit_stubs=stubs,
            options=self.options,
            inlined_calls=inlined,
        )

        # Locate the parallel version as a natural loop.
        forest = self.am.loops(func)
        par_loop = forest.by_header.get(info.par_header)
        if par_loop is None:
            raise HelixError("parallel version is not a natural loop")

        # Step 2: dependences to synchronize.
        with tracer.span("helix.step2.dependence", cat="helix") as span:
            analysis = self.am.dependence(self.module)
            deps = analysis.loop_dependences(func, par_loop)
            span.set(dependences=len(deps))

        # Step 4: sequential segments.
        with tracer.span("helix.step4.synchronize", cat="helix"):
            syncs = insert_synchronization(
                func, par_loop, deps, cfg=self.am.cfg(func)
            )
        info.deps = syncs
        info.naive_waits = sum(len(s.wait_instrs) for s in syncs)
        info.naive_signals = sum(len(s.signal_instrs) for s in syncs)

        # Step 6: signal minimization.
        if self.options.enable_signal_optimization:
            with tracer.span("helix.step6.signals", cat="helix"):
                optimize_signals(func, par_loop, syncs, cfg=self.am.cfg(func))

        # Step 7: communication.
        with tracer.span("helix.step7.communication", cat="helix"):
            insert_communication(self.module, func, par_loop, syncs)

        # Step 3: counted-loop analysis (after synchronization exists, so
        # carried influence on the exit test is visible as a prologue
        # wait), then start next iterations.
        with tracer.span("helix.step3.next_iter", cat="helix") as span:
            info.counted = is_counted_loop(func, info.prologue_blocks)
            span.set(counted=info.counted)
            crossing = [
                (name_map[a], name_map[b]) for a, b in norm.crossing_edges
            ]
            self._insert_next_iter(func, info, crossing)

        # Steps 5 and 8 operate on the final block set.
        forest = self.am.loops(func)
        par_loop = forest.by_header[info.par_header]
        if self.options.enable_segment_scheduling:
            with tracer.span("helix.step5.schedule", cat="helix"):
                schedule_loop(func, par_loop, analysis.points_to, syncs)
        with tracer.span("helix.step8.balance", cat="helix"):
            if (
                self.options.enable_helper_threads
                and self.options.enable_prefetch_balancing
            ):
                balance_loop(
                    func, par_loop, analysis.points_to, syncs, self.machine
                )
            info.helper_order = helper_wait_order(
                func, par_loop, syncs, cfg=self.am.cfg(func)
            )

        info.final_waits = sum(len(s.wait_instrs) for s in syncs)
        info.final_signals = sum(len(s.signal_instrs) for s in syncs)
        info.par_instruction_count = sum(
            len(func.blocks[name].instructions) for name in info.par_blocks
        )
        return info


def parallelize_module(
    module: Module,
    loop_ids: Sequence[LoopId],
    machine: Optional[MachineConfig] = None,
    options: Optional[HelixOptions] = None,
    manager: Optional[AnalysisManager] = None,
) -> Tuple[Module, List[ParallelizedLoop]]:
    """Parallelize ``loop_ids`` on a clone of ``module``.

    Returns the transformed module plus per-loop metadata.  The input
    module is left untouched (it remains the sequential baseline).
    ``manager`` shares one analysis cache with the caller (selection,
    the evaluation runner); omitted, the parallelizer creates its own.
    """
    with get_tracer().span(
        "helix.parallelize_module", cat="helix", loops=len(loop_ids)
    ):
        transformed = clone_module(module)
        parallelizer = HelixParallelizer(transformed, machine, options, manager)
        infos: List[ParallelizedLoop] = []
        for loop_id in loop_ids:
            infos.append(parallelizer.parallelize_loop(loop_id))
        verify_module(transformed)
        return transformed, infos
