"""Step 6: minimizing signals.

Three cooperating optimizations, run after Step 4's naive insertion:

1. **Dependence redundance graph + Theorem 1.**  ``d_i`` is redundant due
   to ``d_j`` when ``wait(d_j)`` is available (in the dataflow sense) at
   every occurrence of ``wait(d_i)`` *and* the guarded region of ``d_i``
   is contained in that of ``d_j`` (so ``signal(d_j)`` cannot fire before
   ``d_i``'s producers are done).  Per Theorem 1 it suffices to
   synchronize every node without incoming edges plus one node per cycle
   of the graph; we apply it through the SCC condensation -- one
   representative per source component.  Identical regions form cycles, so
   the paper's "segment merging" is the cycle case of the same machinery.
2. **Redundant wait elimination**: a ``wait(d)`` preceded on all paths by
   another ``wait(d)`` is removed.
3. **Redundant signal elimination**: same, for ``signal(d)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import networkx as nx

from repro.analysis.cfg import CFGView
from repro.analysis.loops import Loop
from repro.core.loopinfo import DepSync
from repro.ir import Function, Instruction, Opcode

Fact = FrozenSet[int]


def _availability(
    func: Function,
    loop: Loop,
    cfg: CFGView,
    opcode: Opcode,
) -> Dict[str, Fact]:
    """Must-availability of per-dep WAIT (or SIGNAL) ops at block entry.

    Forward intersection analysis over the loop subgraph with back edges
    cut: a dep index is available at a point if on *every* path from the
    start of the iteration an instruction of ``opcode`` with that dep_id
    has executed.
    """
    gen: Dict[str, Set[int]] = {}
    universe: Set[int] = set()
    for name in loop.blocks:
        ids = {
            i.dep_id
            for i in func.blocks[name].instructions
            if i.opcode is opcode and i.dep_id is not None
        }
        gen[name] = ids
        universe |= ids
    back_edges = {(latch, loop.header) for latch in loop.latches}

    avail_in: Dict[str, Fact] = {name: frozenset(universe) for name in loop.blocks}
    avail_in[loop.header] = frozenset()
    changed = True
    while changed:
        changed = False
        for name in loop.blocks:
            if name == loop.header:
                in_fact: FrozenSet[int] = frozenset()
            else:
                preds = [
                    p
                    for p in cfg.preds[name]
                    if p in loop.blocks and (p, name) not in back_edges
                ]
                if preds:
                    merged = set(avail_in[preds[0]] | gen[preds[0]])
                    for p in preds[1:]:
                        merged &= avail_in[p] | gen[p]
                    in_fact = frozenset(merged)
                else:
                    in_fact = frozenset(universe)
            if in_fact != avail_in[name]:
                avail_in[name] = in_fact
                changed = True
    return avail_in


def _available_before(
    func: Function,
    avail_in: Dict[str, Fact],
    block_name: str,
    target: Instruction,
    opcode: Opcode,
) -> Set[int]:
    """Dep ids with an ``opcode`` op executed before ``target`` in its block
    (plus everything available at block entry)."""
    result = set(avail_in.get(block_name, frozenset()))
    for instr in func.blocks[block_name].instructions:
        if instr is target:
            break
        if instr.opcode is opcode and instr.dep_id is not None:
            result.add(instr.dep_id)
    return result


def _instr_block(func: Function, loop: Loop, instr: Instruction) -> str:
    for name in loop.blocks:
        for existing in func.blocks[name].instructions:
            if existing is instr:
                return name
    raise ValueError(f"instruction {instr} not found in loop")


def build_redundance_graph(
    func: Function, loop: Loop, cfg: CFGView, syncs: Sequence[DepSync]
) -> "nx.DiGraph":
    """Edges ``d_j -> d_i`` meaning ``d_i`` is redundant due to ``d_j``."""
    graph = nx.DiGraph()
    active = [s for s in syncs if s.synchronized]
    for sync in active:
        graph.add_node(sync.dep.index)
    avail_in = _availability(func, loop, cfg, Opcode.WAIT)

    # Where each dependence's endpoints live (the occurrences of a and b;
    # the auxiliary pre-signal waits disappear with the dependence, so
    # coverage is checked at the endpoints themselves).
    endpoint_sites: Dict[int, List[Tuple[str, Instruction]]] = {}
    for sync in active:
        sites = []
        endpoint_uids = {e.uid for e in sync.dep.endpoints()}
        for name in loop.blocks:
            for instr in func.blocks[name].instructions:
                if instr.uid in endpoint_uids:
                    sites.append((name, instr))
        endpoint_sites[sync.dep.index] = sites

    for si in active:
        for sj in active:
            if si is sj:
                continue
            if not si.region <= sj.region:
                continue
            covered = True
            for block_name, endpoint in endpoint_sites[si.dep.index]:
                before = _available_before(
                    func, avail_in, block_name, endpoint, Opcode.WAIT
                )
                if sj.dep.index not in before:
                    covered = False
                    break
            if covered:
                graph.add_edge(sj.dep.index, si.dep.index)
    return graph


def apply_theorem1(graph: "nx.DiGraph") -> Set[int]:
    """N_to-synch: one representative per source SCC of the graph."""
    condensation = nx.condensation(graph)
    keep: Set[int] = set()
    for scc_id in condensation.nodes:
        if condensation.in_degree(scc_id) == 0:
            members = sorted(condensation.nodes[scc_id]["members"])
            keep.add(members[0])
    return keep


def _remove_instrs(func: Function, loop: Loop, instrs: Sequence[Instruction]) -> int:
    uids = {i.uid for i in instrs}
    removed = 0
    for name in loop.blocks:
        block = func.blocks[name]
        before = len(block.instructions)
        block.instructions = [i for i in block.instructions if i.uid not in uids]
        removed += before - len(block.instructions)
    return removed


def eliminate_redundant_waits(
    func: Function, loop: Loop, cfg: CFGView, syncs: Sequence[DepSync]
) -> int:
    """Remove waits already covered by an earlier wait of the same dep."""
    avail_in = _availability(func, loop, cfg, Opcode.WAIT)
    removed = 0
    for sync in syncs:
        if not sync.synchronized:
            continue
        survivors: List[Instruction] = []
        for wait in sync.wait_instrs:
            block_name = _instr_block(func, loop, wait)
            before = _available_before(
                func, avail_in, block_name, wait, Opcode.WAIT
            )
            if sync.dep.index in before:
                func.blocks[block_name].remove(wait)
                removed += 1
            else:
                survivors.append(wait)
        sync.wait_instrs = survivors
    return removed


def eliminate_redundant_signals(
    func: Function, loop: Loop, cfg: CFGView, syncs: Sequence[DepSync]
) -> int:
    """Remove signals already covered by an earlier signal of the same dep."""
    avail_in = _availability(func, loop, cfg, Opcode.SIGNAL)
    removed = 0
    for sync in syncs:
        if not sync.synchronized:
            continue
        survivors: List[Instruction] = []
        for signal in sync.signal_instrs:
            block_name = _instr_block(func, loop, signal)
            before = _available_before(
                func, avail_in, block_name, signal, Opcode.SIGNAL
            )
            if sync.dep.index in before:
                func.blocks[block_name].remove(signal)
                removed += 1
            else:
                survivors.append(signal)
        sync.signal_instrs = survivors
    return removed


def optimize_signals(
    func: Function,
    loop: Loop,
    syncs: Sequence[DepSync],
    cfg: CFGView = None,
) -> Dict[str, int]:
    """Run all of Step 6; returns statistics of what was removed.

    ``cfg`` may be supplied by the caller (the analysis manager's current
    snapshot): this pass only removes straight-line wait/signal
    instructions, never branch targets, so one CFG view stays valid
    throughout.
    """
    cfg = cfg or CFGView(func)
    graph = build_redundance_graph(func, loop, cfg, syncs)
    keep = apply_theorem1(graph)

    dropped_waits = 0
    dropped_signals = 0
    for sync in syncs:
        if not sync.synchronized:
            continue
        if sync.dep.index not in keep:
            # Covered: record which kept dependence covers it.
            for pred in graph.predecessors(sync.dep.index):
                if pred in keep:
                    sync.covered_by = pred
                    break
            else:
                ancestors = nx.ancestors(graph, sync.dep.index) & keep
                sync.covered_by = min(ancestors) if ancestors else None
            sync.synchronized = False
            dropped_waits += _remove_instrs(func, loop, sync.wait_instrs)
            dropped_signals += _remove_instrs(func, loop, sync.signal_instrs)
            sync.wait_instrs = []
            sync.signal_instrs = []

    dropped_waits += eliminate_redundant_waits(func, loop, cfg, syncs)
    dropped_signals += eliminate_redundant_signals(func, loop, cfg, syncs)
    if dropped_waits or dropped_signals:
        func.bump_version()
    return {
        "removed_waits": dropped_waits,
        "removed_signals": dropped_signals,
        "kept_deps": len(keep),
    }
