"""Step 7: inter-thread communication.

Synchronization itself is carried by the ``wait``/``signal`` pseudo-ops
(implemented as loads/stores of per-thread memory buffers; the machine
model prices them).  This module adds the *data forwarding* machinery:

* For every cross-iteration **register** dependence, a synthetic global
  slot (the paper's loop-boundary live-variable location in the main
  thread's frame) is created; each producer is followed by a store to the
  slot, and each consumer block gets a load from it inside the guarded
  region.  In the simulator the consumed value still flows through the
  (shared) frame -- iteration threads replay a sequential trace -- so the
  load targets a scratch register: it contributes exactly the memory
  traffic and cycles of the real scheme without perturbing semantics.
* **Transfer marks** (``xfer`` pseudo-ops) are placed after every producer
  and before the first consumer of each data-carrying dependence.  At run
  time the executor charges the inter-core word-transfer latency ``M``
  only when the *previous* iteration actually executed a producer -- the
  paper's observation that an actual data transfer happens far less often
  than synchronization (Figure 2's 6.25% example).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.dependence import DependenceKind
from repro.analysis.loops import Loop
from repro.core.loopinfo import DepSync
from repro.ir import Function, Instruction, Module, Opcode
from repro.ir.operands import Const, Symbol, VReg
from repro.ir.types import Type

#: arg layout of an XFER mark: (word count, 1 if producer mark else 0).
XFER_WORDS = 0
XFER_IS_SOURCE = 1


def is_producer_mark(instr: Instruction) -> bool:
    return instr.opcode is Opcode.XFER and instr.args[XFER_IS_SOURCE].value == 1


def xfer_words(instr: Instruction) -> int:
    return int(instr.args[XFER_WORDS].value)


def _slot_symbol(
    module: Module, loop: Loop, dep_index: int, reg_type: Type
) -> Symbol:
    name = f"__helix_slot_{loop.func.name}_{loop.header}_{dep_index}"
    if name in module.globals:
        return module.globals[name]
    elem = Type.FLOAT if reg_type is Type.FLOAT else Type.INT
    return module.add_global(name, elem, 1, synthetic=True)


def insert_communication(
    module: Module,
    func: Function,
    loop: Loop,
    syncs: Sequence[DepSync],
) -> int:
    """Insert forwarding slots and transfer marks; returns ops added."""
    added = 0
    for sync in syncs:
        dep = sync.dep
        if dep.transfer_words <= 0:
            continue
        source_uids = {i.uid for i in dep.sources}
        sink_uids = {i.uid for i in dep.sinks}
        words = Const.int(dep.transfer_words)

        slot = None
        scratch = None
        if dep.kind is DependenceKind.REGISTER and dep.register_uid is not None:
            reg = next(
                (r for r in _loop_regs(func, loop) if r.uid == dep.register_uid),
                None,
            )
            if reg is not None and reg.type is not Type.PTR:
                slot = _slot_symbol(module, loop, dep.index, reg.type)
                scratch = func.new_vreg(reg.type, f"xs{dep.index}")

        for name in sorted(loop.blocks):
            block = func.blocks[name]
            rebuilt: List[Instruction] = []
            consumed_marked = False
            produced_reg: VReg = None
            for instr in block.instructions:
                if instr.uid in sink_uids and not consumed_marked:
                    if slot is not None:
                        rebuilt.append(
                            Instruction(
                                Opcode.LOADG,
                                dest=scratch,
                                args=(slot, Const.int(0)),
                            )
                        )
                        added += 1
                    rebuilt.append(
                        Instruction(
                            Opcode.XFER,
                            args=(words, Const.int(0)),
                            dep_id=dep.index,
                        )
                    )
                    added += 1
                    consumed_marked = True
                rebuilt.append(instr)
                if instr.uid in source_uids:
                    if slot is not None and instr.dest is not None:
                        rebuilt.append(
                            Instruction(
                                Opcode.STOREG,
                                args=(slot, Const.int(0), instr.dest),
                            )
                        )
                        added += 1
                    rebuilt.append(
                        Instruction(
                            Opcode.XFER,
                            args=(words, Const.int(1)),
                            dep_id=dep.index,
                        )
                    )
                    added += 1
            block.instructions = rebuilt
    if added:
        func.bump_version()
    return added


def _loop_regs(func: Function, loop: Loop) -> List[VReg]:
    regs: Dict[int, VReg] = {}
    for instr in loop.instructions():
        if instr.dest is not None:
            regs[instr.dest.uid] = instr.dest
        for reg in instr.uses():
            regs[reg.uid] = reg
    return list(regs.values())
