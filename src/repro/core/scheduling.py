"""Steps 5 and 8: code scheduling around sequential segments.

**Step 5 (shrinking segments).**  Within every block of the loop, a
dependence DAG is built (register RAW/WAR/WAW, may-alias memory order,
call/print side-effect order, pinned synchronization structure) and the
block is re-scheduled so that:

* ``signal(d)`` is hoisted as early as its producers allow;
* ``wait(d)`` is sunk as late as its consumers allow;
* instructions not needed by any dependence endpoint (the "parallel code")
  sink *after* the signals, out of the sequential segments.

This is the intra-block realization of the paper's percolation; the
inter-block placement of segments is already as early as Step 4's
region-exit signals permit.

**Step 8 (balancing, Figure 6).**  Helper threads prefetch one signal at a
time, so signals should be spaced evenly.  The balancing pass repeatedly
finds the two *closest* consecutive segments in a block and moves untagged
parallel code between them -- by at least one instruction, by at most what
would make them wider than the next-closest pair -- until every pair is at
least ``delta`` (the unprefetched-minus-prefetched latency) apart or no
movable code remains, exactly the loop of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import CFGView, reverse_postorder
from repro.analysis.loops import Loop
from repro.analysis.pointer import PointsToResult
from repro.core.loopinfo import DepSync
from repro.ir import BasicBlock, Function, Instruction, Opcode
from repro.ir.types import Type
from repro.runtime.machine import MachineConfig

_SYNC_OPS = (Opcode.WAIT, Opcode.SIGNAL, Opcode.NEXT_ITER, Opcode.XFER)


def _is_pinned(instr: Instruction) -> bool:
    """Ops kept in mutual order: sync ops, marks and synthetic-slot I/O."""
    if instr.opcode in _SYNC_OPS:
        return True
    if instr.opcode in (Opcode.LOADG, Opcode.STOREG):
        symbol = instr.symbol_operand()
        return symbol is not None and symbol.synthetic
    return False


@dataclass
class _Node:
    index: int
    instr: Instruction
    preds: Set[int]
    succs: Set[int]


def _memory_conflict(
    a: Instruction, b: Instruction, func_name: str, points_to: PointsToResult
) -> bool:
    a_mem = a.reads_memory or a.writes_memory or a.opcode is Opcode.CALL
    b_mem = b.reads_memory or b.writes_memory or b.opcode is Opcode.CALL
    if not (a_mem and b_mem):
        return False
    if a.opcode is Opcode.CALL or b.opcode is Opcode.CALL:
        return True
    if not (a.writes_memory or b.writes_memory):
        return False
    return points_to.may_alias(func_name, a, func_name, b)


def build_block_dag(
    block: BasicBlock,
    func_name: str,
    points_to: PointsToResult,
    syncs: Sequence[DepSync],
) -> List[_Node]:
    """Dependence DAG over the block's instructions (indices)."""
    instrs = block.instructions
    nodes = [_Node(i, instr, set(), set()) for i, instr in enumerate(instrs)]

    def add_edge(src: int, dst: int) -> None:
        if src != dst:
            nodes[dst].preds.add(src)
            nodes[src].succs.add(dst)

    last_def: Dict[int, int] = {}
    uses_since_def: Dict[int, List[int]] = {}
    last_pinned: Optional[int] = None
    last_effect: Optional[int] = None
    mem_indices: List[int] = []

    endpoint_of: Dict[int, List[DepSync]] = {}
    for sync in syncs:
        for endpoint in sync.dep.endpoints():
            endpoint_of.setdefault(endpoint.uid, []).append(sync)
    wait_index: Dict[int, List[int]] = {}
    signal_index: Dict[int, List[int]] = {}

    for i, instr in enumerate(instrs):
        # Register dependences.
        for reg in instr.uses():
            if reg.uid in last_def:
                add_edge(last_def[reg.uid], i)  # RAW
        if instr.dest is not None:
            uid = instr.dest.uid
            if uid in last_def:
                add_edge(last_def[uid], i)  # WAW
            for use_idx in uses_since_def.get(uid, ()):
                add_edge(use_idx, i)  # WAR
            last_def[uid] = i
            uses_since_def[uid] = []
        for reg in instr.uses():
            uses_since_def.setdefault(reg.uid, []).append(i)

        # Memory order.
        if instr.reads_memory or instr.writes_memory or instr.opcode is Opcode.CALL:
            for j in mem_indices:
                if _memory_conflict(instrs[j], instr, func_name, points_to):
                    add_edge(j, i)
            mem_indices.append(i)

        # Side-effect order (calls and prints stay ordered).
        if instr.opcode in (Opcode.CALL, Opcode.PRINT):
            if last_effect is not None:
                add_edge(last_effect, i)
            last_effect = i

        # Pinned chain: sync ops / marks / slot I/O keep relative order.
        if _is_pinned(instr):
            if last_pinned is not None:
                add_edge(last_pinned, i)
            last_pinned = i

        if instr.opcode is Opcode.WAIT and instr.dep_id is not None:
            wait_index.setdefault(instr.dep_id, []).append(i)
        if instr.opcode is Opcode.SIGNAL and instr.dep_id is not None:
            signal_index.setdefault(instr.dep_id, []).append(i)

        # Terminator after everything.
        if instr.is_terminator:
            for j in range(i):
                add_edge(j, i)

    # Segment structure: wait(d) -> endpoints(d) -> signal(d).
    for i, instr in enumerate(instrs):
        for sync in endpoint_of.get(instr.uid, ()):  # instr is an endpoint
            for w in wait_index.get(sync.dep.index, ()):
                if w < i:
                    add_edge(w, i)
            for s in signal_index.get(sync.dep.index, ()):
                if s > i:
                    add_edge(i, s)
    return nodes


def _essential_uids(
    block: BasicBlock, syncs: Sequence[DepSync]
) -> Set[int]:
    """Endpoints plus their intra-block backward operand slices."""
    endpoint_uids: Set[int] = set()
    for sync in syncs:
        for endpoint in sync.dep.endpoints():
            endpoint_uids.add(endpoint.uid)
    essential: Set[int] = set()
    reg_needed: Set[int] = set()
    for instr in reversed(block.instructions):
        take = instr.uid in endpoint_uids or (
            instr.dest is not None and instr.dest.uid in reg_needed
        )
        if take:
            essential.add(instr.uid)
            if instr.dest is not None:
                reg_needed.discard(instr.dest.uid)
            for reg in instr.uses():
                reg_needed.add(reg.uid)
    return essential


def schedule_block(
    block: BasicBlock,
    func_name: str,
    points_to: PointsToResult,
    syncs: Sequence[DepSync],
) -> List[Instruction]:
    """Step 5 list scheduling; returns the new instruction order."""
    if len(block.instructions) <= 2:
        return block.instructions
    nodes = build_block_dag(block, func_name, points_to, syncs)
    essential = _essential_uids(block, syncs)

    indegree = {n.index: len(n.preds) for n in nodes}
    ready = sorted(i for i, d in indegree.items() if d == 0)
    scheduled: List[int] = []
    remaining_protected = sum(
        1
        for n in nodes
        if n.instr.opcode is Opcode.SIGNAL or n.instr.uid in essential
    )

    # In a block that waits but never signals, everything after the wait
    # sits inside a segment that only closes in a later block -- so
    # movable code must come *before* the waits.  In blocks that do
    # signal, movables go after the signals (the paper's Figure 5
    # percolation) and waits sink just above their endpoints.
    has_signal = any(n.instr.opcode is Opcode.SIGNAL for n in nodes)
    wait_only_block = not has_signal

    def category(i: int) -> int:
        instr = nodes[i].instr
        if instr.opcode is Opcode.SIGNAL:
            return 0
        if instr.opcode is Opcode.WAIT:
            return 3 if wait_only_block else 2
        if instr.uid in essential or _is_pinned(instr):
            return 1
        return 2 if wait_only_block else 3

    while ready:
        ready.sort(key=lambda i: (category(i), i))
        best = ready[0]
        if category(best) == 2 and remaining_protected == 0:
            # No segment work left: emit movable code before bare waits.
            movables = [i for i in ready if category(i) == 3]
            if movables:
                best = movables[0]
        ready.remove(best)
        scheduled.append(best)
        instr = nodes[best].instr
        if instr.opcode is Opcode.SIGNAL or instr.uid in essential:
            remaining_protected -= 1
        for succ in sorted(nodes[best].succs):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)

    assert len(scheduled) == len(nodes), "scheduling lost instructions"
    block.instructions = [nodes[i].instr for i in scheduled]
    return block.instructions


def schedule_loop(
    func: Function,
    loop: Loop,
    points_to: PointsToResult,
    syncs: Sequence[DepSync],
) -> None:
    """Apply Step 5 scheduling to every block of the loop."""
    for name in sorted(loop.blocks):
        schedule_block(func.blocks[name], func.name, points_to, syncs)
    # Blocks were rebuilt in place (possibly reordered).
    func.bump_version()


# -- Step 8: Figure 6 balancing -------------------------------------------------


def _instr_cost(instr: Instruction, machine: MachineConfig) -> int:
    is_float = instr.dest is not None and instr.dest.type is Type.FLOAT
    return machine.cost_model.cycles(instr.opcode, is_float)


def balance_block(
    block: BasicBlock,
    func_name: str,
    points_to: PointsToResult,
    syncs: Sequence[DepSync],
    machine: MachineConfig,
) -> int:
    """Figure 6 over one block; returns the number of instructions moved.

    "Segments" here are the wait positions of synchronized dependences in
    the block; the pool of untagged parallel code is whatever Step 5
    pushed after the last signal.
    """
    delta = machine.signal_latency - machine.prefetched_signal_latency
    moved_total = 0

    for _round in range(256):
        instrs = block.instructions
        wait_positions = [
            i for i, ins in enumerate(instrs) if ins.opcode is Opcode.WAIT
        ]
        if len(wait_positions) < 2:
            return moved_total
        signal_positions = [
            i for i, ins in enumerate(instrs) if ins.opcode is Opcode.SIGNAL
        ]
        if not signal_positions:
            return moved_total
        last_signal = max(signal_positions)

        # Untagged parallel code: movable instructions after the last signal.
        nodes = build_block_dag(block, func_name, points_to, syncs)
        essential = _essential_uids(block, syncs)
        pool = [
            i
            for i in range(last_signal + 1, len(instrs))
            if not instrs[i].is_terminator
            and not _is_pinned(instrs[i])
            and instrs[i].uid not in essential
            and instrs[i].opcode not in _SYNC_OPS
        ]
        if not pool:
            return moved_total

        # Distances between consecutive segments (cycles between a signal
        # and the next wait).
        def distances() -> List[Tuple[int, int, int]]:
            result = []
            waits = [
                i for i, ins in enumerate(block.instructions)
                if ins.opcode is Opcode.WAIT
            ]
            for a, b in zip(waits, waits[1:]):
                gap = sum(
                    _instr_cost(ins, machine)
                    for ins in block.instructions[a + 1: b]
                    if ins.opcode is not Opcode.SIGNAL
                )
                result.append((gap, a, b))
            return result

        dists = distances()
        if all(gap >= delta for gap, _a, _b in dists):
            return moved_total
        dists.sort()
        gap_j, a_j, b_j = dists[0]
        limit = dists[1][0] if len(dists) > 1 else delta

        # Move one legal pool instruction just before wait b_j.
        moved = False
        for idx in pool:
            node = nodes[idx]
            if any(p > last_signal and p not in pool for p in node.preds):
                continue
            if any(p >= b_j for p in node.preds if p <= last_signal):
                continue
            if any(p in pool for p in node.preds):
                continue  # keep dependent movables together, move roots first
            instr = block.instructions[idx]
            del block.instructions[idx]
            insert_at = b_j if idx > b_j else b_j - 1
            block.instructions.insert(insert_at, instr)
            moved = True
            moved_total += 1
            break
        if not moved:
            return moved_total
        new_gap = distances()
        # Figure 6's bound: do not grow the pair past the next closest.
        if moved_total and new_gap and min(g for g, _a, _b in new_gap) > max(
            limit, delta
        ):
            return moved_total
    return moved_total


def balance_loop(
    func: Function,
    loop: Loop,
    points_to: PointsToResult,
    syncs: Sequence[DepSync],
    machine: MachineConfig,
) -> int:
    """Apply the Figure 6 balancing pass to every block of the loop."""
    moved = 0
    for name in sorted(loop.blocks):
        moved += balance_block(
            func.blocks[name], func.name, points_to, syncs, machine
        )
    if moved:
        func.bump_version()
    return moved


# -- Step 8: helper-thread wait order ------------------------------------------


def helper_wait_order(
    func: Function,
    loop: Loop,
    syncs: Sequence[DepSync],
    cfg: CFGView = None,
) -> List[int]:
    """The straight-line wait sequence executed by helper threads.

    One wait per synchronized dependence, ordered by the position of the
    dependence's first wait in a reverse-postorder walk of the loop
    (``wait(d_i)`` comes after ``wait(d_j)`` when ``wait(d_j)`` is
    available just before it -- Step 8).
    """
    cfg = cfg or CFGView(func)
    order = reverse_postorder(cfg)
    position: Dict[str, int] = {name: i for i, name in enumerate(order)}

    def first_wait_pos(sync: DepSync) -> Tuple[int, int]:
        best = (1 << 30, 1 << 30)
        for name in loop.blocks:
            block = func.blocks[name]
            for idx, instr in enumerate(block.instructions):
                if (
                    instr.opcode is Opcode.WAIT
                    and instr.dep_id == sync.dep.index
                ):
                    pos = (position.get(name, 1 << 29), idx)
                    best = min(best, pos)
                    break
        return best

    active = [s for s in syncs if s.synchronized]
    active.sort(key=first_wait_pos)
    return [s.dep.index for s in active]
