"""Hand-written lexer for MiniC."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Union

from repro.frontend.errors import MiniCError


class TokenKind(enum.Enum):
    """Lexical categories."""

    IDENT = "ident"
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "int",
        "float",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
    }
)

#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "++",
    "--",
    "<<",
    ">>",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
]


@dataclass(frozen=True)
class Token:
    """A single token with source position (1-based line/column)."""

    kind: TokenKind
    text: str
    value: Union[int, float, None]
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`MiniCError` on bad input.

    Supports ``//`` line comments and ``/* */`` block comments.
    """
    tokens: List[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)

    def column() -> int:
        return i - line_start + 1

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise MiniCError("unterminated block comment", line, column())
            line += source.count("\n", i, end)
            last_newline = source.rfind("\n", i, end)
            if last_newline >= 0:
                line_start = last_newline + 1
            i = end + 2
            continue
        start_col = column()
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and (source[j].isdigit() or source[j] == "."):
                if source[j] == ".":
                    if is_float:
                        raise MiniCError("malformed number", line, start_col)
                    is_float = True
                j += 1
            if j < n and source[j] in "eE":
                is_float = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                if j >= n or not source[j].isdigit():
                    raise MiniCError("malformed exponent", line, start_col)
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            if is_float:
                tokens.append(
                    Token(TokenKind.FLOAT_LIT, text, float(text), line, start_col)
                )
            else:
                tokens.append(
                    Token(TokenKind.INT_LIT, text, int(text), line, start_col)
                )
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, None, line, start_col))
            i = j
            continue
        for punct in _PUNCTS:
            if source.startswith(punct, i):
                tokens.append(Token(TokenKind.PUNCT, punct, None, line, start_col))
                i += len(punct)
                break
        else:
            raise MiniCError(f"unexpected character {ch!r}", line, start_col)
    tokens.append(Token(TokenKind.EOF, "", None, line, column()))
    return tokens
