"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


@dataclass
class Node:
    """Base AST node with source position."""

    line: int
    column: int


# -- types ---------------------------------------------------------------------


@dataclass
class TypeSpec(Node):
    """A declared type: base name ('int'/'float'/'void') + pointer flag."""

    base: str
    is_pointer: bool = False

    def __str__(self) -> str:
        return self.base + ("*" if self.is_pointer else "")


# -- expressions -----------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class of expressions."""


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class Name(Expr):
    """A variable reference."""

    ident: str


@dataclass
class Unary(Expr):
    """Unary operator: '-', '!', '*' (deref) or '&' (address-of)."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Binary operator (arithmetic, bitwise, comparison, '&&'/'||')."""

    op: str
    left: Expr
    right: Expr


@dataclass
class Index(Expr):
    """Subscript: ``base[index]`` where base is an array or pointer."""

    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    """Direct function call (``print`` is a builtin)."""

    callee: str
    args: List[Expr]


# -- statements ------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class of statements."""


@dataclass
class VarDecl(Stmt):
    """Local declaration: scalar (optional initializer) or array."""

    type: TypeSpec
    name: str
    array_size: Optional[int] = None
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """Assignment ``target op= value`` (op is '' for plain '=')."""

    target: Expr
    op: str
    value: Expr


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: "Block"
    orelse: Optional["Block"] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: "Block"


@dataclass
class For(Stmt):
    """C-style for; init/step are statements (Assign/ExprStmt) or None."""

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: "Block"


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


# -- top level -------------------------------------------------------------------


@dataclass
class Param(Node):
    type: TypeSpec
    name: str


@dataclass
class FuncDef(Node):
    return_type: TypeSpec
    name: str
    params: List[Param]
    body: Block


@dataclass
class GlobalDecl(Node):
    """Global scalar or array with optional constant initializer list."""

    type: TypeSpec
    name: str
    array_size: Optional[int] = None
    init: Optional[List[Union[int, float]]] = None


@dataclass
class Program(Node):
    items: List[Union[GlobalDecl, FuncDef]] = field(default_factory=list)
