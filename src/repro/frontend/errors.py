"""Diagnostics for the MiniC frontend."""

from __future__ import annotations


class MiniCError(Exception):
    """A lexical, syntactic or semantic error in a MiniC program."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")
