"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Union

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import MiniCError
from repro.frontend.lexer import Token, TokenKind, tokenize

#: Binary operator precedence tiers, low to high. '&&'/'||' are handled by
#: the same table but lowered with short-circuit control flow later.
_PRECEDENCE: List[List[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_ASSIGN_OPS = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}


class Parser:
    """Token-stream parser producing a :class:`~repro.frontend.ast_nodes.Program`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def check(self, text: str) -> bool:
        return self.current.text == text and self.current.kind in (
            TokenKind.PUNCT,
            TokenKind.KEYWORD,
        )

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise MiniCError(
                f"expected {text!r}, found {self.current.text!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise MiniCError(
                f"expected identifier, found {self.current.text!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def error(self, message: str) -> MiniCError:
        return MiniCError(message, self.current.line, self.current.column)

    # -- types ---------------------------------------------------------------

    def at_type(self) -> bool:
        return self.current.kind is TokenKind.KEYWORD and self.current.text in (
            "int",
            "float",
            "void",
        )

    def parse_type(self) -> ast.TypeSpec:
        token = self.advance()
        spec = ast.TypeSpec(token.line, token.column, token.text)
        if self.accept("*"):
            spec.is_pointer = True
        return spec

    # -- program -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        first = self.current
        program = ast.Program(first.line, first.column, [])
        while self.current.kind is not TokenKind.EOF:
            if not self.at_type():
                raise self.error(
                    f"expected declaration, found {self.current.text!r}"
                )
            type_spec = self.parse_type()
            name = self.expect_ident()
            if self.check("("):
                program.items.append(self.parse_func_rest(type_spec, name))
            else:
                program.items.append(self.parse_global_rest(type_spec, name))
        return program

    def parse_func_rest(self, return_type: ast.TypeSpec, name: Token) -> ast.FuncDef:
        self.expect("(")
        params: List[ast.Param] = []
        if not self.check(")"):
            while True:
                if not self.at_type():
                    raise self.error("expected parameter type")
                ptype = self.parse_type()
                if ptype.base == "void" and not ptype.is_pointer:
                    raise self.error("parameters cannot be void")
                pname = self.expect_ident()
                params.append(ast.Param(pname.line, pname.column, ptype, pname.text))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return ast.FuncDef(name.line, name.column, return_type, name.text, params, body)

    def parse_global_rest(
        self, type_spec: ast.TypeSpec, name: Token
    ) -> ast.GlobalDecl:
        if type_spec.base == "void":
            raise self.error("globals cannot be void")
        decl = ast.GlobalDecl(name.line, name.column, type_spec, name.text)
        if self.accept("["):
            size = self.advance()
            if size.kind is not TokenKind.INT_LIT:
                raise self.error("array size must be an integer literal")
            decl.array_size = int(size.value)  # type: ignore[arg-type]
            self.expect("]")
        if self.accept("="):
            decl.init = self.parse_const_init()
        self.expect(";")
        return decl

    def parse_const_init(self) -> List[Union[int, float]]:
        values: List[Union[int, float]] = []
        if self.accept("{"):
            if not self.check("}"):
                while True:
                    values.append(self.parse_const_scalar())
                    if not self.accept(","):
                        break
            self.expect("}")
        else:
            values.append(self.parse_const_scalar())
        return values

    def parse_const_scalar(self) -> Union[int, float]:
        negate = self.accept("-")
        token = self.advance()
        if token.kind not in (TokenKind.INT_LIT, TokenKind.FLOAT_LIT):
            raise MiniCError(
                "global initializers must be numeric literals",
                token.line,
                token.column,
            )
        value = token.value
        assert value is not None
        return -value if negate else value

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_tok = self.expect("{")
        block = ast.Block(open_tok.line, open_tok.column, [])
        while not self.check("}"):
            if self.current.kind is TokenKind.EOF:
                raise self.error("unterminated block")
            block.statements.append(self.parse_statement())
        self.expect("}")
        return block

    def as_block(self, stmt: ast.Stmt) -> ast.Block:
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(stmt.line, stmt.column, [stmt])

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if self.check("{"):
            return self.parse_block()
        if self.accept(";"):
            return ast.Block(token.line, token.column, [])
        if self.at_type():
            return self.parse_var_decl()
        if self.check("if"):
            return self.parse_if()
        if self.check("while"):
            return self.parse_while()
        if self.check("for"):
            return self.parse_for()
        if self.accept("return"):
            value = None if self.check(";") else self.parse_expression()
            self.expect(";")
            return ast.Return(token.line, token.column, value)
        if self.accept("break"):
            self.expect(";")
            return ast.Break(token.line, token.column)
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue(token.line, token.column)
        stmt = self.parse_simple_statement()
        self.expect(";")
        return stmt

    def parse_var_decl(self) -> ast.Stmt:
        type_spec = self.parse_type()
        if type_spec.base == "void" and not type_spec.is_pointer:
            raise self.error("variables cannot be void")
        name = self.expect_ident()
        decl = ast.VarDecl(name.line, name.column, type_spec, name.text)
        if self.accept("["):
            size = self.advance()
            if size.kind is not TokenKind.INT_LIT:
                raise self.error("array size must be an integer literal")
            decl.array_size = int(size.value)  # type: ignore[arg-type]
            self.expect("]")
        elif self.accept("="):
            decl.init = self.parse_expression()
        self.expect(";")
        return decl

    def parse_if(self) -> ast.If:
        token = self.expect("if")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self.as_block(self.parse_statement())
        orelse = None
        if self.accept("else"):
            orelse = self.as_block(self.parse_statement())
        return ast.If(token.line, token.column, cond, then, orelse)

    def parse_while(self) -> ast.While:
        token = self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self.as_block(self.parse_statement())
        return ast.While(token.line, token.column, cond, body)

    def parse_for(self) -> ast.For:
        token = self.expect("for")
        self.expect("(")
        init = None if self.check(";") else self.parse_simple_statement()
        self.expect(";")
        cond = None if self.check(";") else self.parse_expression()
        self.expect(";")
        step = None if self.check(")") else self.parse_simple_statement()
        self.expect(")")
        body = self.as_block(self.parse_statement())
        return ast.For(token.line, token.column, init, cond, step, body)

    def parse_simple_statement(self) -> ast.Stmt:
        """An assignment, ++/--, or bare expression (no trailing ';')."""
        token = self.current
        expr = self.parse_expression()
        for text, op in _ASSIGN_OPS.items():
            if self.check(text):
                self.advance()
                value = self.parse_expression()
                return ast.Assign(token.line, token.column, expr, op, value)
        if self.check("++") or self.check("--"):
            op = "+" if self.advance().text == "++" else "-"
            one = ast.IntLit(token.line, token.column, 1)
            return ast.Assign(token.line, token.column, expr, op, one)
        return ast.ExprStmt(token.line, token.column, expr)

    # -- expressions ----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_binary(0)

    def parse_binary(self, tier: int) -> ast.Expr:
        if tier >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_binary(tier + 1)
        while self.current.kind is TokenKind.PUNCT and self.current.text in _PRECEDENCE[tier]:
            op = self.advance()
            right = self.parse_binary(tier + 1)
            left = ast.Binary(op.line, op.column, op.text, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if self.current.kind is TokenKind.PUNCT and self.current.text in (
            "-",
            "!",
            "*",
            "&",
        ):
            op = self.advance().text
            operand = self.parse_unary()
            return ast.Unary(token.line, token.column, op, operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("["):
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(expr.line, expr.column, expr, index)
            elif self.check("(") and isinstance(expr, ast.Name):
                self.advance()
                args: List[ast.Expr] = []
                if not self.check(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                expr = ast.Call(expr.line, expr.column, expr.ident, args)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INT_LIT:
            self.advance()
            return ast.IntLit(token.line, token.column, int(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.FLOAT_LIT:
            self.advance()
            return ast.FloatLit(token.line, token.column, float(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.IDENT:
            self.advance()
            return ast.Name(token.line, token.column, token.text)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise self.error(f"unexpected token {token.text!r} in expression")


def parse(source: str) -> ast.Program:
    """Parse MiniC ``source`` text into an AST."""
    return Parser(tokenize(source)).parse_program()
